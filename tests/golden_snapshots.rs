//! Golden corpus snapshots: the full observable output of corpus synthesis
//! — per-pair digests, hardness histogram, chart distribution, and every
//! VQL line — frozen under `tests/golden/`. Any change to the executor,
//! filters, or tree edits that silently shifts the synthesized benchmark
//! fails here with a readable line diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! scripts/ci.sh golden --bless        # or: GOLDEN_BLESS=1 cargo test --test golden_snapshots
//! ```

use std::fs;
use std::path::PathBuf;

use nvbench::ast::{tokens, Hardness};
use nvbench::oracle::{corpus_snapshot, diff_lines, snapshot_vis_lines};

/// Seeds frozen under `tests/golden/`. Two seeds so a change that happens to
/// cancel out on one input stream still trips the other.
const GOLDEN_SEEDS: [u64; 2] = [3, 8];

fn golden_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("corpus_seed{seed}.txt"))
}

fn blessing() -> bool {
    std::env::var("GOLDEN_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Each golden file matches a fresh synthesis byte-for-byte. With
/// `GOLDEN_BLESS=1` the files are rewritten instead and the test verifies
/// the write round-trips identically.
#[test]
fn corpus_snapshots_match_golden_files() {
    for seed in GOLDEN_SEEDS {
        let actual = corpus_snapshot(seed);
        let path = golden_path(seed);
        if blessing() {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &actual).unwrap();
            let back = fs::read_to_string(&path).unwrap();
            assert_eq!(back, actual, "blessed snapshot did not round-trip: {path:?}");
            eprintln!("blessed {}", path.display());
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {path:?} ({e}) — run `scripts/ci.sh golden --bless`"
            )
        });
        assert!(
            expected == actual,
            "corpus snapshot for seed {seed} drifted from {path:?}.\n\
             If the change is intentional, re-bless with `scripts/ci.sh golden --bless`.\n\
             Diff (expected vs actual):\n{}",
            diff_lines(&expected, &actual)
        );
    }
}

/// Synthesis is deterministic: rendering the same seed twice in one process
/// produces identical snapshots (golden files would flap otherwise).
#[test]
fn snapshot_rendering_is_stable() {
    for seed in GOLDEN_SEEDS {
        assert_eq!(corpus_snapshot(seed), corpus_snapshot(seed), "seed {seed}");
    }
}

/// Every VQL string in the golden corpus is canonical: `serialize ∘ parse`
/// is the identity on it, and re-classifying the parsed tree reproduces the
/// hardness column recorded in the snapshot.
#[test]
fn golden_vql_strings_are_canonical_and_hardness_matches() {
    let mut checked = 0usize;
    for seed in GOLDEN_SEEDS {
        let snapshot = corpus_snapshot(seed);
        for (db, _chart, hardness, vql) in snapshot_vis_lines(&snapshot) {
            let ast = tokens::parse_vql_str(&vql)
                .unwrap_or_else(|e| panic!("seed {seed} db {db}: {e}\nvql: {vql}"));
            let back = ast.to_tokens().join(" ");
            assert_eq!(back, vql, "seed {seed} db {db}: VQL is not canonical");
            assert_eq!(
                Hardness::of(&ast).name(),
                hardness,
                "seed {seed} db {db}: snapshot hardness disagrees with \
                 re-classification of {vql}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} golden VQL lines checked — corpus too small");
}
