//! Fault-injection harness: corpus synthesis under deterministically
//! injected parser errors, executor errors, and filter *panics* must
//! (a) never abort the process, (b) account for every input pair exactly
//! once (digest xor quarantine), and (c) leave the clean pairs bit-identical
//! to a no-fault run — at any thread count.
//!
//! This lives in its own integration-test binary because the fault plan is
//! process-global; the mutex below serializes the tests that arm it.

use nvbench::core::fault::{self, FaultPlan};
use nvbench::core::{CorpusSynthesis, Nl2SqlToNl2Vis, QuarantineEntry, SynthesizerConfig};
use nvbench::prelude::*;
use std::sync::Mutex;

static ARM_LOCK: Mutex<()> = Mutex::new(());

fn corpus() -> SpiderCorpus {
    // 8 dbs × 12 pairs: big enough that all three injection sites fire at
    // the probabilities in `plan()`, small enough to synthesize 5× quickly.
    SpiderCorpus::generate(&CorpusConfig {
        n_databases: 8,
        ..CorpusConfig::small(8)
    })
}

fn synthesize(corpus: &SpiderCorpus, threads: usize) -> CorpusSynthesis {
    let cfg = SynthesizerConfig { threads, ..Default::default() };
    Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(corpus)
}

/// The plan used by every test here: all three sites armed, probabilities
/// high enough that each family of failure actually occurs on this corpus.
/// Injection is keyed on *content* (SQL text, query shape, candidate VQL),
/// so the same pairs fail no matter how work is scheduled.
fn plan() -> FaultPlan {
    FaultPlan::new(0xfau64)
        .site("sql.parse", 0.15)
        .site("data.exec", 0.08)
        .site("synth.filter", 0.03)
}

/// Everything quarantine-related except elapsed time, which is wall-clock
/// and legitimately differs between runs.
fn sans_elapsed(q: &[QuarantineEntry]) -> Vec<(usize, String, String, String)> {
    q.iter()
        .map(|e| {
            (e.pair_id, e.db_name.clone(), format!("{:?}", e.stage), e.error.clone())
        })
        .collect()
}

#[test]
fn synthesis_under_faults_is_isolated_accounted_and_deterministic() {
    let _lock = ARM_LOCK.lock().unwrap();
    let corpus = corpus();
    let n = corpus.pairs.len();
    assert!(n >= 50, "need a corpus big enough for every site to fire, got {n}");

    // Baseline: no faults. Nothing may be quarantined.
    fault::disarm();
    let baseline = synthesize(&corpus, 2);
    assert!(
        baseline.quarantine.is_empty(),
        "clean corpus must synthesize fully: {:?}",
        baseline.quarantine
    );

    let mut runs: Vec<CorpusSynthesis> = Vec::new();
    for threads in [1, 2, 4] {
        let _guard = fault::arm_scoped(plan());
        // (a) No aborts: reaching the next line at all under injected
        // panics is the point of the catch_unwind isolation layer.
        let out = synthesize(&corpus, threads);

        // (b) Complete accounting: every pair has a digest xor a
        // quarantine entry, and ids line up with the corpus.
        assert_eq!(out.pair_digests.len(), n, "threads={threads}");
        let quarantined = out.pair_digests.iter().filter(|d| d.is_none()).count();
        assert_eq!(quarantined, out.quarantine.len(), "threads={threads}");
        let none_ids: Vec<usize> = corpus
            .pairs
            .iter()
            .zip(&out.pair_digests)
            .filter(|(_, d)| d.is_none())
            .map(|(p, _)| p.id)
            .collect();
        let q_ids: Vec<usize> = out.quarantine.iter().map(|q| q.pair_id).collect();
        assert_eq!(none_ids, q_ids, "threads={threads}");

        // No pair may be lost to a dead worker: every quarantine entry
        // must carry a real injected/synthesized error, not a placeholder.
        for q in &out.quarantine {
            assert!(
                !q.error.contains("worker died"),
                "threads={threads}: worker death leaked into quarantine: {q:?}"
            );
        }

        // The plan actually exercised all three failure families.
        assert!(!out.quarantine.is_empty(), "threads={threads}: no fault fired");
        let stages: std::collections::HashSet<String> =
            out.quarantine.iter().map(|q| format!("{:?}", q.stage)).collect();
        assert!(stages.contains("Parse"), "threads={threads}: {stages:?}");
        assert!(stages.contains("Filter"), "threads={threads}: {stages:?}");
        assert!(stages.contains("Isolation"), "threads={threads}: {stages:?}");

        // (c) Clean pairs are bit-identical to the no-fault baseline:
        // injection is per-pair, so an uninfected pair's pre-dedup output
        // cannot change.
        for (i, (faulted, clean)) in
            out.pair_digests.iter().zip(&baseline.pair_digests).enumerate()
        {
            if let Some(f) = faulted {
                assert_eq!(
                    Some(f),
                    clean.as_ref(),
                    "pair {i} (threads={threads}) diverged from the no-fault run"
                );
            }
        }

        runs.push(out);
    }

    // Bit-identical across thread counts: same benchmark, same quarantine
    // (up to elapsed time), same digests.
    let first = &runs[0];
    for (k, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run.pair_digests, first.pair_digests, "run {k}");
        assert_eq!(sans_elapsed(&run.quarantine), sans_elapsed(&first.quarantine), "run {k}");
        assert_eq!(run.bench.pairs, first.bench.pairs, "run {k}");
        assert_eq!(run.bench.vis_objects.len(), first.bench.vis_objects.len(), "run {k}");
        for (a, b) in run.bench.vis_objects.iter().zip(&first.bench.vis_objects) {
            assert_eq!(a.vql, b.vql, "run {k}");
            assert_eq!(a.db_name, b.db_name, "run {k}");
            assert_eq!(a.source_pair_id, b.source_pair_id, "run {k}");
        }
    }

    // The armed runs really did lose pairs relative to baseline.
    assert!(first.bench.vis_objects.len() < baseline.bench.vis_objects.len());
}

/// The differential oracle and an armed fault plan coexist: injected
/// `data.exec` errors are classified as such (not as divergences), the
/// remaining executions still agree with the reference interpreter, and the
/// whole report is deterministic under a content-keyed plan.
#[test]
fn differential_oracle_coexists_with_armed_faults() {
    use nvbench::oracle::{run_differential, DiffConfig};
    let _lock = ARM_LOCK.lock().unwrap();

    let run = || {
        let _guard = fault::arm_scoped(FaultPlan::new(0xfau64).site("data.exec", 0.10));
        run_differential(&DiffConfig::new(0xC0ED, 150))
    };
    let a = run();
    assert!(a.is_clean(), "injected faults misread as divergences: {}", a.summary());
    assert!(
        a.injected_faults > 0,
        "data.exec at p=0.10 never fired over {} executions",
        a.executions
    );
    assert!(
        a.agreements > a.injected_faults,
        "almost everything faulted — differential signal lost: {}",
        a.summary()
    );

    // Content-keyed injection ⇒ the same queries fault on every run.
    let b = run();
    assert_eq!(
        (a.executions, a.agreements, a.agreed_errors, a.injected_faults),
        (b.executions, b.agreements, b.agreed_errors, b.injected_faults),
        "fault/oracle interaction is not deterministic"
    );

    // Disarmed, the very same batch is fault-free and fully clean.
    fault::disarm();
    let c = run_differential(&DiffConfig::new(0xC0ED, 150));
    assert!(c.is_clean(), "{}", c.summary());
    assert_eq!(c.injected_faults, 0);
    assert!(c.agreements > a.agreements, "disarming should recover faulted executions");
}

#[test]
fn disarmed_plan_costs_nothing_and_changes_nothing() {
    let _lock = ARM_LOCK.lock().unwrap();
    fault::disarm();
    let corpus = corpus();
    let a = synthesize(&corpus, 2);
    let b = synthesize(&corpus, 2);
    assert!(a.quarantine.is_empty() && b.quarantine.is_empty());
    assert_eq!(a.pair_digests, b.pair_digests);
    assert_eq!(a.bench.pairs, b.bench.pairs);
}

#[test]
fn quarantine_ledger_serializes_to_documented_json() {
    let _lock = ARM_LOCK.lock().unwrap();
    let corpus = corpus();
    let out = {
        let _guard = fault::arm_scoped(plan());
        synthesize(&corpus, 2)
    };
    assert!(!out.quarantine.is_empty());
    let json = serde_json::to_value(&out.quarantine).unwrap();
    let arr = json.as_array().unwrap();
    assert_eq!(arr.len(), out.quarantine.len());
    for entry in arr {
        for key in ["pair_id", "db_name", "stage", "error_kind", "error", "elapsed_us"] {
            assert!(!entry[key].is_null(), "missing {key}: {entry}");
        }
    }
}
