//! Cross-crate integration tests: the full paper pipeline from corpus
//! generation through synthesis, rendering, filtering and evaluation.

use nvbench::core::{table3, CostModel, CostReport, DatasetStats};
use nvbench::prelude::*;
use nvbench::quality::{ChartFeatures, DeepEyeFilter};
use nvbench::spider::QueryGenConfig;

fn small_bench(seed: u64) -> (SpiderCorpus, nvbench::core::NvBench) {
    let corpus = SpiderCorpus::generate(&CorpusConfig {
        n_databases: 5,
        pairs_per_db: 20,
        seed,
        query_cfg: QueryGenConfig::default(),
    });
    let bench = Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench;
    (corpus, bench)
}

#[test]
fn every_vis_object_is_well_formed() {
    let (_, bench) = small_bench(100);
    assert!(bench.vis_objects.len() > 30, "only {} vis", bench.vis_objects.len());
    let filter = DeepEyeFilter::new(42);
    for vis in &bench.vis_objects {
        let db = bench.database(&vis.db_name).expect("db");
        // The VQL round-trips.
        let parsed = nvbench::ast::parse_vql(&vis.tree.to_tokens()).expect("round trip");
        assert_eq!(parsed, vis.tree, "{}", vis.vql);
        // The tree executes and yields a chart the filter approves.
        let cd = chart_data(db, &vis.tree).unwrap_or_else(|e| panic!("{}: {e}", vis.vql));
        assert!(!cd.rows.is_empty(), "{} renders empty", vis.vql);
        assert!(filter.is_good(&cd), "kept a bad chart: {}", vis.vql);
        // Both target languages produce valid JSON documents.
        let vega = to_vega_lite(&cd);
        assert!(vega["data"]["values"].is_array());
        let echarts = to_echarts(&cd);
        assert!(echarts["series"].is_array());
        // Hardness recomputes consistently.
        assert_eq!(vis.hardness, Hardness::of(&vis.tree));
    }
}

#[test]
fn every_pair_has_an_nl_mentioning_its_chart_family() {
    let (_, bench) = small_bench(101);
    let mut signal_hits = 0usize;
    for pair in &bench.pairs {
        assert!(!pair.nl.trim().is_empty());
        let vis = &bench.vis_objects[pair.vis_id];
        let nl = pair.nl.to_lowercase();
        // The chart type (or an implicit phrase for pies) should be
        // recoverable from the NL — that is what makes the benchmark
        // learnable.
        let signals: Vec<&str> = match vis.chart {
            ChartType::Pie => vec!["pie", "proportion", "share", "percentage"],
            ChartType::Bar => vec!["bar", "histogram"],
            ChartType::Line => vec!["line", "trend", "change over time"],
            ChartType::Scatter => vec!["scatter"],
            ChartType::StackedBar => vec!["stacked"],
            ChartType::GroupingLine => vec!["grouping line"],
            ChartType::GroupingScatter => vec!["grouping scatter"],
        };
        if signals.iter().any(|s| nl.contains(s)) {
            signal_hits += 1;
        }
    }
    let frac = signal_hits as f64 / bench.pairs.len() as f64;
    assert!(frac > 0.95, "chart signal only in {:.1}% of pairs", frac * 100.0);
}

#[test]
fn synthesis_statistics_match_paper_shapes() {
    let (_, bench) = small_bench(102);
    // Variants per vis in the paper's ballpark (3.75; manual vis get fewer).
    let vpv = bench.variants_per_vis();
    assert!((1.8..=5.0).contains(&vpv), "variants/vis {vpv}");

    // Bar-family charts dominate (paper: ~81% bar + stacked bar).
    let rows = table3(&bench);
    let all = rows.last().unwrap().n_vis as f64;
    let bar_family: usize = rows[..7]
        .iter()
        .filter(|r| matches!(r.chart, ChartType::Bar | ChartType::StackedBar))
        .map(|r| r.n_vis)
        .sum();
    // rows[..7] double-counts nothing: one row per type.
    assert!(
        bar_family as f64 / all > 0.5,
        "bar family {bar_family}/{all}"
    );

    // BLEU diversity in a sane band (paper: 0.337 average).
    let bleu = rows.last().unwrap().avg_bleu;
    assert!((0.05..0.9).contains(&bleu), "avg BLEU {bleu}");

    // Categorical-heavy column mix (paper: 68.8% C).
    let stats = DatasetStats::of(&bench);
    assert!(stats.type_pct('C') > 45.0);

    // The synthesizer is much cheaper than from-scratch (paper: 5.7%).
    let cost = CostReport::of(&bench, CostModel::default());
    assert!(cost.cost_ratio() < 0.35, "cost ratio {}", cost.cost_ratio());
    assert!(cost.speedup() > 3.0);
}

#[test]
fn splits_partition_pairs_and_match_distributions() {
    let (_, bench) = small_bench(103);
    let split = bench.split(7);
    assert_eq!(split.len(), bench.pairs.len());
    let train_frac = split.train.len() as f64 / bench.pairs.len() as f64;
    assert!((0.78..0.82).contains(&train_frac));

    // Figure-16 claim: train and test have similar chart-type mixes.
    let mix = |idx: &[usize]| {
        let mut counts = std::collections::BTreeMap::new();
        for &i in idx {
            *counts
                .entry(bench.vis_objects[bench.pairs[i].vis_id].chart)
                .or_insert(0usize) += 1;
        }
        counts
    };
    let train_mix = mix(&split.train);
    let test_mix = mix(&split.test);
    let bar_train =
        *train_mix.get(&ChartType::Bar).unwrap_or(&0) as f64 / split.train.len() as f64;
    let bar_test = *test_mix.get(&ChartType::Bar).unwrap_or(&0) as f64 / split.test.len() as f64;
    assert!((bar_train - bar_test).abs() < 0.15, "{bar_train} vs {bar_test}");
}

#[test]
fn baselines_answer_some_queries_and_never_panic() {
    use nvbench::baselines::{DeepEyeBaseline, Nl4DvBaseline};
    let (_, bench) = small_bench(104);
    let deepeye = DeepEyeBaseline::new(42);
    let nl4dv = Nl4DvBaseline::new();
    let mut de_some = 0;
    let mut nl_some = 0;
    for pair in bench.pairs.iter().take(120) {
        let vis = &bench.vis_objects[pair.vis_id];
        let db = bench.database(&vis.db_name).unwrap();
        de_some += usize::from(deepeye.predict(&pair.nl, db).is_some());
        nl_some += usize::from(nl4dv.predict(&pair.nl, db).is_some());
        let _ = deepeye.predict_top_k(&pair.nl, db, 6);
    }
    assert!(de_some > 30, "DeepEye answered {de_some}/120");
    assert!(nl_some > 30, "NL4DV answered {nl_some}/120");
}

#[test]
fn filter_features_extracted_for_every_kept_chart() {
    let (_, bench) = small_bench(105);
    for vis in bench.vis_objects.iter().take(60) {
        let db = bench.database(&vis.db_name).unwrap();
        let cd = chart_data(db, &vis.tree).unwrap();
        let f = ChartFeatures::of(&cd);
        assert!(f.n_tuples >= 2, "{}", vis.vql);
        assert_eq!(f.vector().len(), ChartFeatures::DIM);
    }
}

#[test]
fn covid_study_gold_queries_round_trip() {
    let db = nvbench::spider::covid_database(42);
    for case in nvbench::spider::covid_cases() {
        let rt = nvbench::ast::parse_vql(&case.gold.to_tokens()).unwrap();
        assert_eq!(rt, case.gold);
        let rs = execute(&db, &case.gold).unwrap();
        assert!(!rs.rows.is_empty());
        let cd = chart_data(&db, &case.gold).unwrap();
        let _ = to_vega_lite(&cd);
        let _ = to_echarts(&cd);
    }
}
