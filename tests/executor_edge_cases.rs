//! Executor edge cases: nulls in every clause position, empty tables,
//! degenerate groups — the places SQL engines classically get wrong.

use nvbench::ast::tokens::parse_vql_str;
use nvbench::data::{execute, table_from, ColumnType, Database, Value};

fn db() -> Database {
    let mut db = Database::new("edge", "Test");
    db.add_table(table_from(
        "t",
        &[
            ("cat", ColumnType::Categorical),
            ("q", ColumnType::Quantitative),
            ("when_at", ColumnType::Temporal),
        ],
        vec![
            vec![Value::text("a"), Value::Int(10), Value::text("2020-01-01")],
            vec![Value::text("a"), Value::Null, Value::text("2020-06-01")],
            vec![Value::Null, Value::Int(30), Value::text("2021-01-01")],
            vec![Value::text("b"), Value::Int(40), Value::Null],
            vec![Value::text("b"), Value::Int(50), Value::text("2021-06-01")],
        ],
    ));
    db.add_table(table_from("empty", &[("x", ColumnType::Quantitative)], vec![]));
    db
}

fn run(vql: &str) -> nvbench::data::ResultSet {
    execute(&db(), &parse_vql_str(vql).unwrap()).unwrap()
}

#[test]
fn nulls_fail_every_comparison() {
    // Null q never satisfies > nor <= — the row disappears from both sides.
    let gt = run("select t.cat from t where t.q > 20");
    let le = run("select t.cat from t where t.q <= 20");
    assert_eq!(gt.rows.len() + le.rows.len(), 4); // 5 rows, 1 null q
    // Equality against null literal matches nothing (SQL semantics).
    let eq_null = run("select t.cat from t where t.q = null");
    assert_eq!(eq_null.rows.len(), 0);
}

#[test]
fn null_group_key_forms_its_own_group() {
    let rs = run("select t.cat , count ( t.* ) from t group by t.cat");
    assert_eq!(rs.rows.len(), 3); // a, b, null
    let null_group = rs.rows.iter().find(|r| r[0].is_null()).expect("null group");
    assert_eq!(null_group[1], Value::Int(1));
}

#[test]
fn aggregates_skip_nulls() {
    let rs = run("select count ( t.q ) , sum ( t.q ) , avg ( t.q ) , min ( t.q ) , max ( t.q ) from t");
    assert_eq!(rs.rows[0][0], Value::Int(4)); // count(q) skips the null
    assert_eq!(rs.rows[0][1], Value::Int(130));
    assert_eq!(rs.rows[0][2], Value::Float(32.5));
    assert_eq!(rs.rows[0][3], Value::Int(10));
    assert_eq!(rs.rows[0][4], Value::Int(50));
    // count(*) counts rows regardless of nulls.
    let star = run("select count ( t.* ) from t");
    assert_eq!(star.rows[0][0], Value::Int(5));
}

#[test]
fn aggregates_over_empty_table() {
    let rs = run("select count ( empty.* ) , sum ( empty.x ) , avg ( empty.x ) from empty");
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert!(rs.rows[0][1].is_null());
    assert!(rs.rows[0][2].is_null());
}

#[test]
fn group_by_on_empty_table_yields_no_rows() {
    let rs = run("select empty.x , count ( empty.* ) from empty group by empty.x");
    assert!(rs.rows.is_empty());
}

#[test]
fn null_temporal_lands_in_null_bin() {
    let rs = run("select t.when_at , count ( t.* ) from t bin t.when_at by year");
    // Bins: null, 2020, 2021.
    assert_eq!(rs.rows.len(), 3);
    assert!(rs.rows[0][0].is_null()); // null ordinal sorts first
    let total: i64 = rs
        .rows
        .iter()
        .map(|r| if let Value::Int(n) = r[1] { n } else { 0 })
        .sum();
    assert_eq!(total, 5);
}

#[test]
fn like_and_in_treat_null_as_no_match() {
    let like = run("select t.cat from t where t.cat like 'a%'");
    assert_eq!(like.rows.len(), 2);
    let not_like = run("select t.cat from t where t.cat not like 'a%'");
    // The null cat matches neither direction.
    assert_eq!(not_like.rows.len(), 2);
    let not_in = run("select t.cat from t where t.cat not in ( 'a' )");
    assert_eq!(not_in.rows.len(), 2);
}

#[test]
fn superlative_with_nulls_sorts_them_low() {
    let rs = run("select t.cat , t.q from t top 2 by t.q");
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Int(50));
    assert_eq!(rs.rows[1][1], Value::Int(40));
    let rs = run("select t.cat , t.q from t bottom 1 by t.q");
    // Nulls order lowest under the total order; the bottom row is the null.
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn order_by_is_stable_under_null_keys() {
    let rs = run("select t.cat , t.q from t order by t.q desc");
    assert_eq!(rs.rows.len(), 5);
    assert_eq!(rs.rows[0][1], Value::Int(50));
    assert!(rs.rows[4][1].is_null());
}

#[test]
fn set_ops_on_empty_side() {
    let rs = run("select t.cat from t union select t.cat from t where t.q > 1000");
    assert_eq!(rs.rows.len(), 3); // distinct cats incl. null
    let rs = run("select t.cat from t intersect select t.cat from t where t.q > 1000");
    assert!(rs.rows.is_empty());
    let rs = run("select t.cat from t except select t.cat from t");
    assert!(rs.rows.is_empty());
}

#[test]
fn numeric_bin_over_constant_column() {
    let mut db = db();
    db.add_table(table_from(
        "flat",
        &[("v", ColumnType::Quantitative)],
        (0..6).map(|_| vec![Value::Int(7)]).collect(),
    ));
    let q = parse_vql_str("select flat.v , count ( flat.* ) from flat bin flat.v by bucket_10")
        .unwrap();
    let rs = execute(&db, &q).unwrap();
    // All rows land in one bucket; no division-by-zero.
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][1], Value::Int(6));
}

/// Regression: when the value range is an exact multiple of the bin size,
/// the column maximum used to overflow into an eleventh bin. It must land
/// in the last real bin, and the reference interpreter must agree.
#[test]
fn numeric_bin_top_edge_is_inclusive() {
    let mut db = db();
    // Range 0..100, bucket_10 → size 10; the max (100) sits exactly on the
    // final edge.
    db.add_table(table_from(
        "edgy",
        &[("v", ColumnType::Quantitative)],
        (0..=10).map(|i| vec![Value::Int(i * 10)]).collect(),
    ));
    let q = parse_vql_str("select edgy.v , count ( edgy.* ) from edgy bin edgy.v by bucket_10")
        .unwrap();
    let rs = execute(&db, &q).unwrap();
    assert_eq!(rs.rows.len(), 10, "exactly ten bins, no overflow: {rs:?}");
    let labels: Vec<String> = rs.rows.iter().map(|r| r[0].label()).collect();
    assert!(!labels.iter().any(|l| l.starts_with("100-")), "{labels:?}");
    // The closing bin holds both 90 and the on-edge 100.
    let last = rs.rows.last().unwrap();
    assert_eq!(last[0], Value::text("90-100"));
    assert_eq!(last[1], Value::Int(2));
    // The reference interpreter implements the same inclusive top edge.
    let oracle = nv_oracle::oracle_execute(&db, &q).unwrap();
    assert!(rs.multiset_eq(&oracle), "engine and oracle disagree on the edge bin");
}
