//! Tier-1 gate for the `nv-trace` observability layer wired through the
//! whole pipeline: a small traced corpus synthesis must produce a
//! schema-valid report, its counters must be deterministic across worker
//! thread counts, and a disabled tracer must record nothing.
//!
//! The trace collector is process-global, so every test takes the same
//! serializing gate and starts from `reset()`.

use nvbench::core::{Nl2SqlToNl2Vis, SynthesizerConfig};
use nvbench::spider::{CorpusConfig, SpiderCorpus};
use nvbench::trace;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    trace::disable();
    trace::reset();
    guard
}

/// Run one corpus synthesis with tracing armed and return the report.
fn traced_synthesis(corpus: &SpiderCorpus, threads: usize) -> trace::TraceReport {
    trace::reset();
    trace::enable();
    let cfg = SynthesizerConfig { threads, ..Default::default() };
    let out = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(corpus);
    trace::disable();
    assert!(!out.bench.vis_objects.is_empty(), "synthesis produced nothing");
    let report = trace::report();
    trace::reset();
    report
}

#[test]
fn traced_synthesis_produces_a_schema_valid_report() {
    let _g = serial();
    let corpus = SpiderCorpus::generate(&CorpusConfig::small(5));
    let report = traced_synthesis(&corpus, 2);

    // Every layer the tentpole wires is represented.
    assert_eq!(report.counter("synth.pairs"), corpus.pairs.len() as u64);
    assert!(report.counter("synth.vis") > 0);
    assert!(report.counter("synth.nl") > 0);
    assert!(report.counter("synth.filter.candidates") > 0);
    assert!(report.counter("data.exec.calls") > 0);
    assert!(report.counter("data.exec.fuel_used") > 0);
    assert!(report.counter("par.tasks") >= corpus.pairs.len() as u64);
    assert!(report.gauge("par.queue.peak_depth") > 0);
    for path in ["pair", "pair/parse", "pair/edits", "pair/filter", "pair/nledit"] {
        let s = report.span_stat(path).unwrap_or_else(|| panic!("span {path} missing"));
        assert!(s.count > 0, "span {path} never closed");
    }

    // The JSON document round-trips and carries the v1 schema shape.
    let text = report.to_json_string_pretty();
    let v: serde_json::Value = serde_json::from_str(&text).expect("report JSON re-parses");
    let serde_json::Value::Object(root) = &v else { panic!("root is not an object") };
    assert_eq!(
        root.get("schema"),
        Some(&serde_json::Value::String("nv-trace/v1".into()))
    );
    for section in ["counters", "gauges", "spans"] {
        let Some(serde_json::Value::Object(_)) = root.get(section) else {
            panic!("missing object section '{section}'");
        };
    }
    let serde_json::Value::Object(spans) = root.get("spans").unwrap() else { unreachable!() };
    let serde_json::Value::Object(pair) = spans.get("pair").expect("spans.pair") else {
        panic!("spans.pair is not an object")
    };
    for field in ["count", "total_ns", "mean_ns"] {
        assert!(
            matches!(pair.get(field), Some(serde_json::Value::Int(n)) if *n >= 0),
            "spans.pair.{field} missing or negative"
        );
    }
}

/// The tier-1 determinism contract: every counter outside the two
/// explicitly scheduling-dependent families is identical for 1, 2, and 4
/// worker threads.
///
/// * `data.cache.*` hit/miss *splits* depend on how pairs partition over
///   per-worker caches — but each layer's `hits + misses` total does not,
///   and is asserted equal.
/// * `par.*` describes the pool itself (worker counts, queue depth), which
///   is thread-count-dependent by definition.
///
/// Everything else — executed calls, fuel (cache hits *replay* the cold
/// charge, so warm and cold paths spend identically), scanned rows, synth
/// stage counts, quarantine counts — must not move.
#[test]
fn counters_are_deterministic_across_thread_counts() {
    let _g = serial();
    let corpus = SpiderCorpus::generate(&CorpusConfig::small(7));
    let reports: Vec<trace::TraceReport> =
        [1, 2, 4].iter().map(|&t| traced_synthesis(&corpus, t)).collect();
    let baseline = &reports[0];

    let deterministic = |name: &str| !name.starts_with("data.cache.") && !name.starts_with("par.");
    for (i, r) in reports.iter().enumerate().skip(1) {
        let threads = [1, 2, 4][i];
        let pick = |rep: &trace::TraceReport| -> Vec<(String, u64)> {
            rep.counters
                .iter()
                .filter(|(k, _)| deterministic(k))
                .cloned()
                .collect()
        };
        assert_eq!(pick(baseline), pick(r), "counters diverged at threads={threads}");

        for layer in ["scan", "group", "result"] {
            let total = |rep: &trace::TraceReport| {
                rep.counter(&format!("data.cache.{layer}.hits"))
                    + rep.counter(&format!("data.cache.{layer}.misses"))
            };
            assert_eq!(
                total(baseline),
                total(r),
                "cache layer '{layer}' hit+miss total diverged at threads={threads}"
            );
        }

        // Span *counts* (not times) are deterministic outside the pool.
        let span_counts = |rep: &trace::TraceReport| -> Vec<(String, u64)> {
            rep.spans
                .iter()
                .filter(|(k, _)| !k.starts_with("par"))
                .map(|(k, s)| (k.clone(), s.count))
                .collect()
        };
        assert_eq!(
            span_counts(baseline),
            span_counts(r),
            "span counts diverged at threads={threads}"
        );
    }

    assert!(baseline.counter("data.exec.fuel_used") > 0);
    assert!(baseline.counter("data.exec.scan_rows") > 0);
}

#[test]
fn disabled_tracer_records_nothing_during_synthesis() {
    let _g = serial();
    let corpus = SpiderCorpus::generate(&CorpusConfig::small(3));
    let cfg = SynthesizerConfig { threads: 2, ..Default::default() };
    let out = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(&corpus);
    assert!(!out.bench.vis_objects.is_empty());
    let report = trace::report();
    assert!(report.counters.is_empty(), "{:?}", report.counters);
    assert!(report.gauges.is_empty());
    assert!(report.spans.is_empty());
}
