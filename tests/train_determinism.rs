//! Cross-thread and cross-kernel training determinism (ISSUE 5 gate).
//!
//! Training fans batch members out over `nv-core::par::map_ordered` and
//! merges per-sample gradients through `nv-core::par::tree_reduce`, a fixed
//! pairwise tree — so the floating-point summation order never depends on
//! the thread count. And the fast blocked/fused kernels share one canonical
//! reduction with the `KernelPolicy::NaiveOracle` unfused twin. Both
//! invariants are **bit-level**: this test trains the same model under
//! threads 1/2/4 and under both kernel policies and demands identical loss
//! bit patterns every epoch plus identical parameter checksums at the end.

use nv_nn::{KernelPolicy, ModelVariant, Sample, Seq2Seq, Seq2SeqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cfg(variant: ModelVariant, threads: usize, kernel: KernelPolicy) -> Seq2SeqConfig {
    Seq2SeqConfig {
        vocab: 14,
        embed_dim: 12,
        hidden: 16,
        variant,
        seed: 23,
        lr: 3e-3,
        clip: 2.0,
        batch: 8,
        bos: 0,
        eos: 1,
        max_decode_len: 10,
        threads,
        kernel,
    }
}

/// 32-sample toy corpus: target = source reversed.
fn toy_corpus() -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..32)
        .map(|_| {
            let len = rng.random_range(2..6);
            let src: Vec<usize> = (0..len).map(|_| rng.random_range(4..14)).collect();
            let mut tgt = src.clone();
            tgt.reverse();
            Sample { src, tgt }
        })
        .collect()
}

/// Three epochs of training; returns the per-epoch loss bit patterns and
/// the final parameter checksum.
fn train_fingerprint(
    variant: ModelVariant,
    threads: usize,
    kernel: KernelPolicy,
    corpus: &[Sample],
) -> (Vec<u32>, u64) {
    let mut model = Seq2Seq::new(cfg(variant, threads, kernel));
    let losses: Vec<u32> = (0..3).map(|_| model.train_epoch(corpus).to_bits()).collect();
    (losses, model.params_checksum())
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let corpus = toy_corpus();
    for variant in ModelVariant::ALL {
        let base = train_fingerprint(variant, 1, KernelPolicy::Fast, &corpus);
        for threads in [2, 4] {
            let got = train_fingerprint(variant, threads, KernelPolicy::Fast, &corpus);
            assert_eq!(
                base, got,
                "{variant:?}: threads=1 vs threads={threads} diverged"
            );
        }
    }
}

#[test]
fn fast_kernels_are_bit_identical_to_naive_oracle() {
    let corpus = toy_corpus();
    for variant in ModelVariant::ALL {
        let fast = train_fingerprint(variant, 2, KernelPolicy::Fast, &corpus);
        let naive = train_fingerprint(variant, 2, KernelPolicy::NaiveOracle, &corpus);
        assert_eq!(fast, naive, "{variant:?}: fast vs naive-oracle diverged");
    }
}

/// The two invariants compose: a naive-oracle single-thread run — the
/// simplest possible execution — fingerprints identically to the fast
/// fused kernels on 4 threads.
#[test]
fn fully_naive_matches_fully_fast() {
    let corpus = toy_corpus();
    let simplest = train_fingerprint(ModelVariant::Copy, 1, KernelPolicy::NaiveOracle, &corpus);
    let fastest = train_fingerprint(ModelVariant::Copy, 4, KernelPolicy::Fast, &corpus);
    assert_eq!(simplest, fastest);
}

/// Inference determinism rides on the same kernels: greedy decode agrees
/// token-for-token across policies after training.
#[test]
fn decode_agrees_across_policies() {
    let corpus = toy_corpus();
    let mut fast = Seq2Seq::new(cfg(ModelVariant::Attention, 2, KernelPolicy::Fast));
    let mut naive = Seq2Seq::new(cfg(ModelVariant::Attention, 2, KernelPolicy::NaiveOracle));
    for _ in 0..3 {
        fast.train_epoch(&corpus);
        naive.train_epoch(&corpus);
    }
    for sample in &corpus[..8] {
        assert_eq!(fast.decode(&sample.src), naive.decode(&sample.src));
    }
}
