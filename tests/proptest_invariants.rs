//! Property-based tests over the core data structures and invariants:
//! VQL linearization round-trips, SQL rendering round-trips, executor
//! sanity, and statistic bounds.

use nvbench::ast::{self, *};
use nvbench::data::{table_from, ColumnType, Database, Value};
use nvbench::sql::{parse_sql, to_sql};
use proptest::prelude::*;

// ---- generators ----------------------------------------------------------

fn arb_chart() -> impl Strategy<Value = ChartType> {
    prop::sample::select(ChartType::ALL.to_vec())
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop::sample::select(vec![
        AggFunc::None,
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
    ])
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_attr() -> impl Strategy<Value = Attr> {
    (arb_agg(), ident(), ident(), any::<bool>()).prop_map(|(agg, t, c, star)| Attr {
        distinct: false,
        col: ColumnRef::new(t, if star && agg == AggFunc::Count { "*".into() } else { c }),
        agg,
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i64::from(i))),
        (-1e6f64..1e6f64).prop_map(Literal::Float),
        "[a-zA-Z0-9 '%_.-]{0,12}".prop_map(Literal::Text),
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        (arb_attr(), arb_literal(), prop::sample::select(vec![
            CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge
        ]))
            .prop_map(|(attr, lit, op)| Predicate::Cmp { op, attr, rhs: Operand::Lit(lit) }),
        (arb_attr(), arb_literal(), arb_literal()).prop_map(|(attr, lo, hi)| {
            Predicate::Between { attr, low: Operand::Lit(lo), high: Operand::Lit(hi) }
        }),
        (arb_attr(), "[a-z%_]{1,8}", any::<bool>()).prop_map(|(attr, pattern, negated)| {
            Predicate::Like { attr, pattern, negated }
        }),
        (arb_attr(), prop::collection::vec(arb_literal(), 1..4), any::<bool>()).prop_map(
            |(attr, lits, negated)| Predicate::In { attr, rhs: Operand::List(lits), negated }
        ),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner, any::<bool>()).prop_map(|(l, r, and)| {
            if and {
                Predicate::And(Box::new(l), Box::new(r))
            } else {
                Predicate::Or(Box::new(l), Box::new(r))
            }
        })
    })
}

prop_compose! {
    fn arb_body()(
        table in ident(),
        select in prop::collection::vec(arb_attr(), 1..4),
        filter in prop::option::of(arb_predicate()),
        group_col in prop::option::of(ident()),
        bin in prop::option::of((ident(), prop::sample::select(vec![
            BinUnit::Minute, BinUnit::Hour, BinUnit::Weekday, BinUnit::Month,
            BinUnit::Quarter, BinUnit::Year, BinUnit::Numeric { n_bins: 10 },
        ]))),
        order in prop::option::of((arb_attr(), any::<bool>())),
        superlative in prop::option::of((arb_attr(), 1u64..50, any::<bool>())),
    ) -> QueryBody {
        let mut body = QueryBody::simple(table.clone(), select);
        body.filter = filter;
        let mut g = GroupSpec::default();
        if let Some(c) = group_col {
            g.group_by.push(ColumnRef::new(table.clone(), c));
        }
        if let Some((c, unit)) = bin {
            g.bin = Some(BinSpec { col: ColumnRef::new(table.clone(), c), unit });
        }
        body.group = (!g.is_empty()).then_some(g);
        body.order = order.map(|(attr, desc)| OrderSpec {
            attr,
            dir: if desc { OrderDir::Desc } else { OrderDir::Asc },
        });
        body.superlative = superlative.map(|(attr, k, most)| Superlative {
            dir: if most { SuperDir::Most } else { SuperDir::Least },
            k,
            attr,
        });
        body
    }
}

fn arb_tree() -> impl Strategy<Value = VisQuery> {
    (
        prop::option::of(arb_chart()),
        arb_body(),
        prop::option::of((
            prop::sample::select(vec![SetOp::Intersect, SetOp::Union, SetOp::Except]),
            arb_body(),
        )),
    )
        .prop_map(|(chart, left, tail)| {
            let query = match tail {
                None => SetQuery::Simple(Box::new(left)),
                Some((op, right)) => SetQuery::Compound {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            };
            VisQuery { chart, query }
        })
}

// ---- properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every AST linearizes to VQL tokens that parse back to the same AST.
    #[test]
    fn vql_round_trips(tree in arb_tree()) {
        let tokens = tree.to_tokens();
        let back = ast::parse_vql(&tokens)
            .unwrap_or_else(|e| panic!("{e} on {}", tree.to_vql()));
        prop_assert_eq!(back, tree);
    }

    /// The space-joined VQL string re-tokenizes identically (quote-safe).
    #[test]
    fn vql_string_round_trips(tree in arb_tree()) {
        let s = tree.to_vql();
        let tokens = ast::tokens::tokenize_vql(&s);
        let back = ast::parse_vql(&tokens).map_err(|e| TestCaseError::fail(format!("{e}: {s}")))?;
        prop_assert_eq!(back, tree);
    }

    /// Hardness is total and stable under re-parsing.
    #[test]
    fn hardness_is_stable(tree in arb_tree()) {
        let h1 = Hardness::of(&tree);
        let back = ast::parse_vql(&tree.to_tokens()).unwrap();
        prop_assert_eq!(h1, Hardness::of(&back));
    }

    /// Component signatures are deterministic and chart-sensitive.
    #[test]
    fn components_deterministic(tree in arb_tree()) {
        let a = Components::of(&tree);
        let b = Components::of(&tree);
        prop_assert_eq!(&a, &b);
        if tree.chart.is_some() {
            prop_assert!(!a.vis.is_empty());
        }
    }

    /// Value masking never destroys parseability, and filling restores a
    /// parseable sequence.
    #[test]
    fn mask_fill_parses(tree in arb_tree()) {
        let (masked, _) = nvbench::seq2vis::mask_values(&tree.to_tokens());
        let filled = nvbench::seq2vis::fill_values(&masked, "probe 5 'x' 7 2.5 'y' 9 12");
        prop_assert!(ast::parse_vql(&filled).is_ok(),
            "unparseable after fill: {}", filled.join(" "));
    }
}

// ---- promoted regressions ------------------------------------------------
//
// Shrunk failure cases that proptest once recorded in
// `proptest_invariants.proptest-regressions` are promoted here as named
// tests with the exact input inlined, so they run on every machine without
// depending on proptest's seed-persistence format (the seed file is gone).

fn pattr(agg: AggFunc, t: &str, c: &str) -> Attr {
    Attr { agg, col: ColumnRef::new(t, c), distinct: false }
}

/// Promoted from the one recorded regression seed. The shrunk tree is a
/// UNION whose right arm constrains a COUNT attr BETWEEN a text literal
/// containing an embedded single quote (`%'J`) and a negative int, while
/// the left arm mixes a numeric bin, NULL/bool BETWEEN bounds, and
/// aggregated ORDER BY / superlative attrs that name tables absent from
/// FROM. All three tree properties (token round trip, quote-safe string
/// round trip, hardness stability) must hold on it.
#[test]
fn regression_union_with_embedded_quote_and_mixed_aggs_round_trips() {
    let left = {
        let mut b = QueryBody::simple("a", vec![pattr(AggFunc::None, "a", "a")]);
        let eq_zero = || Predicate::Cmp {
            op: CmpOp::Eq,
            attr: pattr(AggFunc::None, "a", "a"),
            rhs: Operand::Lit(Literal::Int(0)),
        };
        b.filter = Some(Predicate::Or(
            Box::new(eq_zero()),
            Box::new(Predicate::Or(
                Box::new(eq_zero()),
                Box::new(Predicate::Or(
                    Box::new(Predicate::Like {
                        attr: pattr(AggFunc::None, "e7f_", "j0p_976"),
                        pattern: "q_%ed".into(),
                        negated: false,
                    }),
                    Box::new(Predicate::Between {
                        attr: pattr(AggFunc::Max, "v", "n__t_"),
                        low: Operand::Lit(Literal::Null),
                        high: Operand::Lit(Literal::Bool(true)),
                    }),
                )),
            )),
        ));
        b.group = Some(GroupSpec {
            group_by: vec![],
            bin: Some(BinSpec {
                col: ColumnRef::new("a", "q_lm"),
                unit: BinUnit::Numeric { n_bins: 10 },
            }),
        });
        b.order = Some(OrderSpec {
            attr: pattr(AggFunc::Max, "gxy_7m_", "moue5"),
            dir: OrderDir::Desc,
        });
        b.superlative = Some(Superlative {
            dir: SuperDir::Most,
            k: 2,
            attr: pattr(AggFunc::Min, "y", "l81_f_20c"),
        });
        b
    };
    let right = {
        let mut b = QueryBody::simple("d55w_0", vec![pattr(AggFunc::None, "w_", "kpv_f")]);
        b.filter = Some(Predicate::Or(
            Box::new(Predicate::Or(
                Box::new(Predicate::And(
                    Box::new(Predicate::Like {
                        attr: pattr(AggFunc::Sum, "ov_74jp", "mdz0"),
                        pattern: "_b%e_%".into(),
                        negated: false,
                    }),
                    Box::new(Predicate::In {
                        attr: pattr(AggFunc::Min, "p_ll_", "tdyn_ps"),
                        rhs: Operand::List(vec![
                            Literal::Null,
                            Literal::Float(297_184.307_433_342_5),
                        ]),
                        negated: true,
                    }),
                )),
                Box::new(Predicate::Cmp {
                    op: CmpOp::Ne,
                    attr: pattr(AggFunc::Avg, "f", "s_80"),
                    rhs: Operand::Lit(Literal::Text(".ut6".into())),
                }),
            )),
            Box::new(Predicate::And(
                Box::new(Predicate::Like {
                    attr: pattr(AggFunc::None, "c6", "sbm_e_l3_"),
                    pattern: "hc".into(),
                    negated: true,
                }),
                Box::new(Predicate::Between {
                    attr: pattr(AggFunc::Count, "j", "fem27s9yh"),
                    low: Operand::Lit(Literal::Text("%'J".into())),
                    high: Operand::Lit(Literal::Int(-677_871_952)),
                }),
            )),
        ));
        b.group = Some(GroupSpec {
            group_by: vec![ColumnRef::new("d55w_0", "y_vm0_4_")],
            bin: None,
        });
        b.order = Some(OrderSpec {
            attr: pattr(AggFunc::Sum, "j_", "h_5"),
            dir: OrderDir::Asc,
        });
        b.superlative = Some(Superlative {
            dir: SuperDir::Most,
            k: 33,
            attr: pattr(AggFunc::Count, "o", "*"),
        });
        b
    };
    let tree = VisQuery {
        chart: None,
        query: SetQuery::Compound {
            op: SetOp::Union,
            left: Box::new(left),
            right: Box::new(right),
        },
    };

    let tokens = tree.to_tokens();
    let back = ast::parse_vql(&tokens).unwrap_or_else(|e| panic!("{e} on {}", tree.to_vql()));
    assert_eq!(back, tree, "token round trip changed the AST");

    let s = tree.to_vql();
    let back2 = ast::parse_vql(&ast::tokens::tokenize_vql(&s))
        .unwrap_or_else(|e| panic!("{e}: {s}"));
    assert_eq!(back2, tree, "string round trip changed the AST");

    assert_eq!(Hardness::of(&tree), Hardness::of(&back), "hardness unstable under re-parse");
}

// SQL round trip needs schema-valid queries; drive it from the executor's
// demo database with constrained generators instead.
fn demo_db() -> Database {
    let mut db = Database::new("d", "Demo");
    db.add_table(table_from(
        "items",
        &[
            ("name", ColumnType::Categorical),
            ("price", ColumnType::Quantitative),
            ("qty", ColumnType::Quantitative),
            ("added", ColumnType::Temporal),
        ],
        (0..25)
            .map(|i| {
                vec![
                    Value::text(format!("item{}", i % 7)),
                    Value::Int((i * 13 % 90) as i64),
                    Value::Int((i % 5) as i64),
                    Value::text(format!("20{:02}-0{}-11", 10 + i % 10, 1 + i % 9)),
                ]
            })
            .collect(),
    ));
    db
}

prop_compose! {
    fn arb_demo_sql()(
        cols in prop::sample::subsequence(vec!["name", "price", "qty", "added"], 1..=3),
        agg in prop::option::of(prop::sample::select(vec!["AVG", "SUM", "MAX", "MIN", "COUNT"])),
        filter_val in 0i64..90,
        use_filter in any::<bool>(),
        group in any::<bool>(),
        order in prop::option::of(any::<bool>()),
        limit in prop::option::of(1u64..10),
    ) -> String {
        let mut select: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
        if let Some(a) = agg {
            select.push(if a == "COUNT" { "COUNT(*)".into() } else { format!("{a}(price)") });
        }
        let mut sql = format!("SELECT {} FROM items", select.join(", "));
        if use_filter {
            sql.push_str(&format!(" WHERE price > {filter_val}"));
        }
        if group && cols.contains(&"name") {
            sql.push_str(" GROUP BY name");
        }
        if let Some(desc) = order {
            sql.push_str(&format!(" ORDER BY price {}", if desc { "DESC" } else { "ASC" }));
        }
        if let Some(k) = limit {
            if order.is_some() {
                sql.push_str(&format!(" LIMIT {k}"));
            }
        }
        sql
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// SQL → AST → SQL → AST is stable, and the query executes.
    #[test]
    fn sql_round_trips_and_executes(sql in arb_demo_sql()) {
        let db = demo_db();
        let ast1 = parse_sql(&db, &sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let rendered = to_sql(&ast1);
        let ast2 = parse_sql(&db, &rendered)
            .unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(&ast1, &ast2, "{} → {}", sql, rendered);
        let rs = nvbench::data::execute(&db, &ast1)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        // Executor sanity: output arity equals the select arity.
        prop_assert_eq!(rs.columns.len(), ast1.query.primary().select.len());
    }

    /// BLEU stays in [0, 1] and is 1 for identical sentences.
    #[test]
    fn bleu_bounds(words in prop::collection::vec("[a-z]{1,6}", 1..15)) {
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let b = nvbench::stats::sentence_bleu(&refs, &refs, 4);
        prop_assert!((b - 1.0).abs() < 1e-6);
        let other: Vec<&str> = vec!["zzz"; words.len()];
        let b2 = nvbench::stats::sentence_bleu(&refs, &other, 4);
        prop_assert!((0.0..=1.0).contains(&b2));
    }

    /// Summary statistics respect their definitional bounds.
    #[test]
    fn summary_bounds(values in prop::collection::vec(-1e6f64..1e6f64, 1..200)) {
        let s = nvbench::stats::Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        let f = nvbench::stats::outlier_fraction(&values);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// The executor's set operations obey set algebra on a shared column.
    #[test]
    fn set_ops_obey_algebra(threshold in 0i64..90) {
        let db = demo_db();
        let run = |sql: &str| {
            let ast = parse_sql(&db, sql).unwrap();
            nvbench::data::execute(&db, &ast).unwrap().rows.len()
        };
        let union = run(&format!(
            "SELECT name FROM items WHERE price > {threshold} UNION SELECT name FROM items WHERE price <= {threshold}"
        ));
        let all = run("SELECT DISTINCT name FROM items");
        prop_assert_eq!(union, all);
        let inter = run(&format!(
            "SELECT name FROM items WHERE price > {threshold} INTERSECT SELECT name FROM items WHERE price <= {threshold}"
        ));
        let except = run(&format!(
            "SELECT name FROM items WHERE price > {threshold} EXCEPT SELECT name FROM items WHERE price <= {threshold}"
        ));
        let left = run(&format!("SELECT DISTINCT name FROM items WHERE price > {threshold}"));
        prop_assert_eq!(inter + except, left);
    }
}
