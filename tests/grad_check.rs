//! Central-finite-difference gradient checks for the nv-nn training
//! kernels, over **every parameter block** of all three seq2vis model
//! variants (ISSUE 5 gate).
//!
//! For each variant we build a tiny model, take one teacher-forced sample,
//! and compare the analytic gradient from `Seq2Seq::sample_grads` against a
//! central finite difference computed scalar-by-scalar through
//! `store_mut()`. The comparison is per parameter block (embedding, each
//! LSTM gate stack, attention, copy gate, output projection) using the
//! norm relative error `‖num − ana‖ / max(‖num‖, ‖ana‖)` — individual f32
//! finite differences are noisy, but over a block the noise averages down
//! below the 1e-3 gate.
//!
//! Working in f32 forces both error terms to be managed explicitly: the
//! five-point fourth-order stencil removes the O(ε²) truncation bias
//! (visible at the gate on high-curvature blocks like the forget bias,
//! which sits near 1.0), and each block is probed at two step sizes — the
//! smaller controls residual truncation on high-curvature blocks, the
//! larger keeps the forward pass's rounding noise (O(ulp/ε)) under the
//! gate on small-gradient blocks like the recurrent and attention
//! weights. A block passes at whichever step suits its curvature, the
//! standard step-size-scan resolution of the FD trade-off.

use nv_nn::{KernelPolicy, ModelVariant, Sample, Seq2Seq, Seq2SeqConfig};

fn tiny_cfg(variant: ModelVariant, kernel: KernelPolicy) -> Seq2SeqConfig {
    Seq2SeqConfig {
        vocab: 10,
        embed_dim: 6,
        hidden: 8,
        variant,
        seed: 17,
        lr: 5e-3,
        clip: 2.0,
        batch: 4,
        bos: 0,
        eos: 1,
        max_decode_len: 8,
        threads: 1,
        kernel,
    }
}

/// The check sample repeats source tokens so the pointer-copy scatter
/// exercises its duplicate-row accumulation path; it is long enough that
/// every block's gradient accumulates over several timesteps (which lifts
/// the block norms well above the f32 finite-difference noise floor).
fn check_sample() -> Sample {
    Sample { src: vec![4, 7, 4, 9, 2, 7, 5, 8], tgt: vec![9, 4, 7, 2, 8, 5] }
}

fn run_grad_check(variant: ModelVariant, kernel: KernelPolicy) {
    let mut model = Seq2Seq::new(tiny_cfg(variant, kernel));
    // A break-in phase: at a symmetric random init the recurrent and
    // attention weights carry almost no gradient (hidden dynamics and
    // attention haven't differentiated — `w_attn`'s block norm is ~1000×
    // smaller than the output projection's), which puts them at the f32
    // finite-difference noise floor. Training briefly on the same
    // reversal-style task lifts every block's gradient norm well above
    // it, making the check sharp instead of noise-bound.
    let warmup: Vec<Sample> = (0..16)
        .map(|i| {
            let src: Vec<usize> = (0..4 + i % 3).map(|j| 2 + (i + j) % 8).collect();
            let mut tgt = src.clone();
            tgt.reverse();
            Sample { src, tgt }
        })
        .collect();
    for _ in 0..10 {
        model.train_epoch(&warmup);
    }
    let sample = check_sample();
    let (analytic, loss) = model.sample_grads(&sample);
    assert!(loss.is_finite() && loss > 0.0, "{variant:?}: bad loss {loss}");

    const STEPS: [f64; 2] = [3e-2, 6e-2];
    for (name, id) in model.param_blocks() {
        let n = model.store().get(id).data.len();
        let ana: Vec<f64> = analytic
            .get(id)
            .map(|m| m.data.iter().map(|&x| f64::from(x)).collect())
            .unwrap_or_else(|| vec![0.0; n]);
        let ana_norm: f64 = ana.iter().map(|x| x * x).sum::<f64>().sqrt();

        let mut best: Option<(f64, f64, f64)> = None; // (rel, num_norm, diff_norm)
        for eps in STEPS {
            let mut num = vec![0.0f64; n];
            for k in 0..n {
                let orig = model.store().get(id).data[k];
                let mut probe = |delta: f64| {
                    model.store_mut().mats[id.0].data[k] = (f64::from(orig) + delta) as f32;
                    model.loss_f64(&sample)
                };
                // Five-point stencil: f'(x) ≈ (−f₊₂+8f₊₁−8f₋₁+f₋₂)/12ε.
                let p2 = probe(2.0 * eps);
                let p1 = probe(eps);
                let m1 = probe(-eps);
                let m2 = probe(-2.0 * eps);
                model.store_mut().mats[id.0].data[k] = orig;
                num[k] = (-p2 + 8.0 * p1 - 8.0 * m1 + m2) / (12.0 * eps);
            }
            let num_norm: f64 = num.iter().map(|x| x * x).sum::<f64>().sqrt();
            let diff_norm: f64 = num
                .iter()
                .zip(&ana)
                .map(|(n, a)| (n - a) * (n - a))
                .sum::<f64>()
                .sqrt();
            let denom = num_norm.max(ana_norm);
            // A whole block whose gradient vanished both numerically and
            // analytically would make the check vacuous; no block in this
            // graph goes dead after the break-in.
            assert!(
                denom > 1e-6,
                "{variant:?}/{name}: gradient vanished (num {num_norm}, ana {ana_norm})"
            );
            let rel = diff_norm / denom;
            if best.is_none_or(|(b, _, _)| rel < b) {
                best = Some((rel, num_norm, diff_norm));
            }
        }
        let (rel, num_norm, diff_norm) = best.unwrap();
        assert!(
            rel < 1e-3,
            "{variant:?}/{name} ({kernel:?}): relative error {rel:.2e} \
             (‖num‖={num_norm:.3e} ‖ana‖={ana_norm:.3e} ‖diff‖={diff_norm:.3e})"
        );
    }
}

#[test]
fn grad_check_basic_variant() {
    run_grad_check(ModelVariant::Basic, KernelPolicy::Fast);
}

#[test]
fn grad_check_attention_variant() {
    run_grad_check(ModelVariant::Attention, KernelPolicy::Fast);
}

#[test]
fn grad_check_copy_variant() {
    run_grad_check(ModelVariant::Copy, KernelPolicy::Fast);
}

/// The naive-oracle kernels must satisfy the same gate — they are the
/// reference the fast path is checked against, so they get checked against
/// arithmetic ground truth themselves.
#[test]
fn grad_check_copy_variant_naive_oracle() {
    run_grad_check(ModelVariant::Copy, KernelPolicy::NaiveOracle);
}

/// The blocks reported by `param_blocks` track the variant's actual graph:
/// basic has no attention/copy weights, attention adds `w_attn`, copy adds
/// `w_gen`.
#[test]
fn param_blocks_match_variant() {
    let names = |v: ModelVariant| -> Vec<&'static str> {
        Seq2Seq::new(tiny_cfg(v, KernelPolicy::Fast))
            .param_blocks()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    };
    let basic = names(ModelVariant::Basic);
    let attn = names(ModelVariant::Attention);
    let copy = names(ModelVariant::Copy);
    assert!(!basic.contains(&"w_attn") && !basic.contains(&"w_gen"));
    assert!(attn.contains(&"w_attn") && !attn.contains(&"w_gen"));
    assert!(copy.contains(&"w_attn") && copy.contains(&"w_gen"));
    assert!(basic.contains(&"embedding") && basic.contains(&"w_out"));
}
