//! Tier-1 differential-oracle suite: the production executor entry points
//! against the reference interpreter, metamorphic laws, generator
//! determinism, and VQL round-trip properties over generated ASTs.
//!
//! The CI `differential` stage runs this file with `DIFF_CASES=5000`; the
//! default below keeps plain `cargo test` fast while still covering every
//! engine path. To reproduce a reported divergence:
//!
//! ```text
//! DIVERGENCE engine=… — repro: gen_case(SEED, CASE).1[QI]
//! ```
//!
//! means `nvbench::oracle::gen_case(SEED, CASE)` rebuilds the database and
//! query list, and `.1[QI]` is the offending query (the report also prints
//! the shrunk pair in full).

use nvbench::core::par::map_ordered;
use nvbench::oracle::{case_digest, gen_case, run_differential, run_laws, DiffConfig};
use nvbench::ast::{tokens, Hardness};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// ≥ 5,000 seeded cases in CI (DIFF_CASES=5000); 1,250 under plain
/// `cargo test`. Every case runs each query through four engine paths
/// (plain, cache-cold, cache-warm, budgeted), so even the default compares
/// 15,000 executions against the oracle.
#[test]
fn differential_oracle_is_clean() {
    let seed = env_u64("DIFF_SEED", 0x5EED);
    let cases = env_u64("DIFF_CASES", 1250) as usize;
    let report = run_differential(&DiffConfig::new(seed, cases));
    for d in &report.divergences {
        eprintln!("{}", d.render());
    }
    assert!(report.is_clean(), "{}", report.summary());
    // The batch must be substantive: the overwhelming majority of
    // executions agree on a real result, not on errors.
    assert!(
        report.agreements * 10 >= report.executions * 8,
        "too few clean agreements: {}",
        report.summary()
    );
}

/// All seven metamorphic laws hold over a generated corpus, and at least
/// five actually fire (a law that never applies is not evidence).
#[test]
fn metamorphic_laws_hold() {
    let reports = run_laws(env_u64("DIFF_SEED", 0x5EED), 250);
    for r in &reports {
        assert!(
            r.held(),
            "law '{}' violated ({} checked):\n{}",
            r.name,
            r.checked,
            r.violations.join("\n")
        );
    }
    let fired = reports.iter().filter(|r| r.checked > 0).count();
    assert!(fired >= 5, "only {fired}/{} laws fired", reports.len());
}

/// Same seed ⇒ byte-identical cases regardless of worker thread count. The
/// digests also cross-check `gen_case` purity: a worker computing cases
/// 0..N in parallel must reproduce the serial stream exactly.
#[test]
fn generator_is_deterministic_across_thread_counts() {
    let indices: Vec<usize> = (0..48).collect();
    let serial: Vec<u64> = indices.iter().map(|&i| case_digest(0xD5, i)).collect();
    for threads in [2, 4] {
        let parallel: Vec<u64> =
            map_ordered(&indices, threads, || (), |_, _, &i| case_digest(0xD5, i));
        assert_eq!(serial, parallel, "digest stream changed at {threads} threads");
    }
}

/// Pinned digest for one known case: catches cross-process and
/// cross-platform drift (hash-map iteration, address-dependent ordering,
/// uninitialized reads) that same-process comparisons cannot see. If this
/// fails after an intentional generator change, update the constant from
/// the test output.
#[test]
fn generator_digest_is_pinned() {
    const PINNED: u64 = 0xc01b_0c9b_d357_46bb;
    assert_eq!(
        case_digest(0xD5, 0),
        PINNED,
        "case_digest(0xD5, 0) drifted — generator output is no longer \
         reproducible across processes (got {:#018x})",
        case_digest(0xD5, 0)
    );
}

/// `parse ∘ serialize` is the identity on generated ASTs, and hardness
/// classification is invariant under the round trip.
#[test]
fn generated_asts_round_trip_and_hardness_is_reparse_invariant() {
    for case in 0..150 {
        let (_db, queries) = gen_case(0x707, case);
        for q in &queries {
            let toks = q.to_tokens();
            let back = tokens::parse_vql(&toks)
                .unwrap_or_else(|e| panic!("case {case}: {e}\nvql: {}", toks.join(" ")));
            assert_eq!(&back, q, "round trip changed the AST for {}", toks.join(" "));
            assert_eq!(
                Hardness::of(&back),
                Hardness::of(q),
                "hardness changed under re-parse for {}",
                toks.join(" ")
            );
        }
    }
}
