#!/usr/bin/env bash
# The repo's CI gate, runnable locally:
#   1. release build of the whole workspace;
#   2. full test suite (unit + integration + doctests);
#   3. the fault-injection harness explicitly (its own process, since it
#      arms the process-global fault plan);
#   4. warnings-clean check (-D warnings) for the fault-isolation crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [1/4] cargo build --release ==="
cargo build --release

echo "=== [2/4] cargo test -q ==="
cargo test -q

echo "=== [3/4] fault-injection harness ==="
cargo test -q --test fault_injection

echo "=== [4/4] warnings-clean (fault-isolation crates) ==="
RUSTFLAGS="-D warnings" cargo check -q \
  -p nv-fault -p nv-data -p nv-sql -p nv-render -p nv-synth -p nv-core

echo "=== CI green ==="
