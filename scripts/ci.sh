#!/usr/bin/env bash
# The repo's CI gate, runnable locally. Stages:
#
#   scripts/ci.sh                  # everything (build, tests, faults,
#                                  # warnings, differential, golden)
#   scripts/ci.sh differential     # 5,000-case differential-oracle batch
#   scripts/ci.sh golden           # verify golden corpus snapshots
#   scripts/ci.sh golden --bless   # regenerate snapshots, then re-verify
#
# The differential stage runs every generated query through all four
# executor entry points (plain, cache-cold, cache-warm, budgeted) against
# the reference interpreter and fails on the first divergence; a failure
# prints a shrunk counterexample with a `gen_case(seed, case)` repro line.
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

run_differential() {
  echo "=== differential oracle (5,000 seeded cases × 4 engines) ==="
  DIFF_CASES=5000 cargo test --release -q --test differential_oracle
}

run_golden() {
  if [[ "${1:-}" == "--bless" ]]; then
    echo "=== golden snapshots: bless ==="
    GOLDEN_BLESS=1 cargo test --release -q --test golden_snapshots
    echo "=== golden snapshots: verify blessed files round-trip ==="
  else
    echo "=== golden snapshots: verify ==="
  fi
  cargo test --release -q --test golden_snapshots
}

case "$stage" in
  differential)
    run_differential
    exit 0
    ;;
  golden)
    run_golden "${2:-}"
    exit 0
    ;;
  all) ;;
  *)
    echo "usage: scripts/ci.sh [all|differential|golden [--bless]]" >&2
    exit 2
    ;;
esac

echo "=== [1/6] cargo build --release ==="
cargo build --release

echo "=== [2/6] cargo test -q ==="
cargo test -q

echo "=== [3/6] fault-injection harness ==="
cargo test -q --test fault_injection

echo "=== [4/6] warnings-clean (fault-isolation + oracle crates) ==="
RUSTFLAGS="-D warnings" cargo check -q \
  -p nv-fault -p nv-data -p nv-sql -p nv-render -p nv-synth -p nv-core \
  -p nv-oracle

echo "=== [5/6] differential oracle ==="
run_differential

echo "=== [6/6] golden snapshots ==="
run_golden

echo "=== CI green ==="
