#!/usr/bin/env bash
# The repo's CI gate, runnable locally. Stages:
#
#   scripts/ci.sh                  # everything (build, tests, faults,
#                                  # warnings, differential, golden, trace,
#                                  # gradcheck)
#   scripts/ci.sh differential     # 5,000-case differential-oracle batch
#   scripts/ci.sh golden           # verify golden corpus snapshots
#   scripts/ci.sh golden --bless   # regenerate snapshots, then re-verify
#   scripts/ci.sh trace            # traced synthesis + report schema gate
#   scripts/ci.sh gradcheck        # nv-nn gradient checks + cross-thread
#                                  # training determinism
#
# The differential stage runs every generated query through all four
# executor entry points (plain, cache-cold, cache-warm, budgeted) against
# the reference interpreter and fails on the first divergence; a failure
# prints a shrunk counterexample with a `gen_case(seed, case)` repro line.
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

run_differential() {
  echo "=== differential oracle (5,000 seeded cases × 4 engines) ==="
  DIFF_CASES=5000 cargo test --release -q --test differential_oracle
}

run_golden() {
  if [[ "${1:-}" == "--bless" ]]; then
    echo "=== golden snapshots: bless ==="
    GOLDEN_BLESS=1 cargo test --release -q --test golden_snapshots
    echo "=== golden snapshots: verify blessed files round-trip ==="
  else
    echo "=== golden snapshots: verify ==="
  fi
  cargo test --release -q --test golden_snapshots
}

run_trace() {
  echo "=== nv-trace: small traced synthesis + report schema validation ==="
  cargo test --release -q --test trace_observability
}

run_gradcheck() {
  echo "=== nv-nn: finite-difference gradient checks (all variants) ==="
  cargo test --release -q --test grad_check
  echo "=== nv-nn: bit-identical training across 1/2/4 threads + kernel policies ==="
  cargo test --release -q --test train_determinism
}

case "$stage" in
  differential)
    run_differential
    exit 0
    ;;
  golden)
    run_golden "${2:-}"
    exit 0
    ;;
  trace)
    run_trace
    exit 0
    ;;
  gradcheck)
    run_gradcheck
    exit 0
    ;;
  all) ;;
  *)
    echo "usage: scripts/ci.sh [all|differential|golden [--bless]|trace|gradcheck]" >&2
    exit 2
    ;;
esac

echo "=== [1/8] cargo build --release ==="
cargo build --release

echo "=== [2/8] cargo test -q ==="
cargo test -q

echo "=== [3/8] fault-injection harness ==="
cargo test -q --test fault_injection

echo "=== [4/8] warnings-clean (fault-isolation + trace + oracle + nn crates) ==="
RUSTFLAGS="-D warnings" cargo check -q \
  -p nv-fault -p nv-trace -p nv-data -p nv-sql -p nv-render -p nv-synth \
  -p nv-core -p nv-oracle -p nv-nn -p nv-seq2vis

echo "=== [5/8] differential oracle ==="
run_differential

echo "=== [6/8] golden snapshots ==="
run_golden

echo "=== [7/8] trace observability gate ==="
run_trace

echo "=== [8/8] training-kernel gradcheck + determinism gate ==="
run_gradcheck

echo "=== CI green ==="
