#!/usr/bin/env bash
# Quick throughput smoke: release build, quick-mode exp_scale, and the
# resulting BENCH_synth.json (pairs/sec + speedup vs the sequential oracle).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nv-bench
NV_EXP_SCALE_QUICK=1 cargo bench -p nv-bench --bench exp_scale

echo
echo "--- BENCH_synth.json ---"
cat BENCH_synth.json
