#!/usr/bin/env bash
# Quick throughput smoke: release build, quick-mode exp_scale, and the
# resulting BENCH_synth.json (pairs/sec + speedup vs the sequential oracle,
# plus the nv-trace attribution from a separate traced run: per-stage
# timings under "traced_parallel_run.stages" and executor cache hit rates
# under "traced_parallel_run.cache_hit_rates").
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nv-bench
NV_EXP_SCALE_QUICK=1 cargo bench -p nv-bench --bench exp_scale

echo
echo "--- BENCH_synth.json ---"
cat BENCH_synth.json
echo
echo "--- trace digest (stage → total_ms, cache → hit_rate) ---"
grep -E '"(parse|edits|filter|nledit|scan|group|result)"|total_ms|hit_rate' BENCH_synth.json
