#!/usr/bin/env bash
# Quick throughput smoke: release build, quick-mode exp_scale and
# train_throughput, and the resulting BENCH_synth.json (pairs/sec + speedup
# vs the sequential oracle, plus the nv-trace attribution from a separate
# traced run: per-stage timings under "traced_parallel_run.stages" and
# executor cache hit rates under "traced_parallel_run.cache_hit_rates")
# and BENCH_train.json (training tokens/sec per seq2vis variant, fast
# kernels vs the bit-identical naive oracle, plus GEMM-flop/tape-node
# attribution from a traced epoch).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nv-bench
NV_EXP_SCALE_QUICK=1 cargo bench -p nv-bench --bench exp_scale
NV_EXP_TRAIN_QUICK=1 cargo bench -p nv-bench --bench train_throughput

echo
echo "--- BENCH_synth.json ---"
cat BENCH_synth.json
echo
echo "--- trace digest (stage → total_ms, cache → hit_rate) ---"
grep -E '"(parse|edits|filter|nledit|scan|group|result)"|total_ms|hit_rate' BENCH_synth.json
echo
echo "--- BENCH_train.json ---"
cat BENCH_train.json
echo
echo "--- train digest (tokens/sec, speedup) ---"
grep -E '"tokens_per_sec"|"speedup"|"min_speedup"' BENCH_train.json
