//! # nv-trace — spans and counters for the synthesis pipeline
//!
//! A deliberately tiny observability layer (no external dependencies beyond
//! the vendored `serde` used for the JSON report). Probes are compiled into
//! the hot layers — the executor, the worker pool, the corpus pipeline —
//! and cost **one relaxed atomic load** when tracing is disabled, which is
//! the default. A session that wants attribution calls [`enable`], runs its
//! workload, and collects a [`TraceReport`].
//!
//! Three probe kinds:
//!
//! * [`count`] — additive counters (`"data.cache.scan.hits"`). Merged by
//!   summation, so totals are deterministic for deterministic workloads
//!   regardless of thread count or scheduling.
//! * [`gauge_max`] — high-water marks (`"par.queue.peak_depth"`). Merged by
//!   `max`.
//! * [`span`] — RAII timing guards. Nested spans record under a
//!   `/`-joined path (`"pair/filter"`); counts are deterministic, the
//!   accumulated nanoseconds obviously are not.
//!
//! Each thread buffers into thread-local maps and merges into the global
//! aggregate when the thread exits (worker threads are scoped per corpus
//! run) or when [`report`]/[`flush`] runs on that thread. This keeps the
//! enabled path lock-free per probe; the single global mutex is touched
//! once per thread, not once per event.
//!
//! The `noop` cargo feature hard-disables everything at compile time; the
//! disabled-path tests and the throughput acceptance gate run against the
//! default (runtime-disarmed) build, which is what ships.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---- arming --------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing armed? One relaxed load; every probe checks this first.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        false
    } else {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Arm tracing process-wide. A no-op under the `noop` feature.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm tracing. Already-buffered data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ---- aggregation state ---------------------------------------------------

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time across all closings, in nanoseconds.
    pub total_ns: u64,
}

#[derive(Default)]
struct Agg {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, u64>,
    spans: HashMap<String, SpanStat>,
}

impl Agg {
    fn merge_into(&mut self, other: &mut Agg) {
        for (k, v) in other.counters.drain() {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges.drain() {
            let e = self.gauges.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        for (k, v) in other.spans.drain() {
            let e = self.spans.entry(k).or_default();
            e.count += v.count;
            e.total_ns += v.total_ns;
        }
    }
}

fn global() -> &'static Mutex<Agg> {
    static GLOBAL: OnceLock<Mutex<Agg>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Agg::default()))
}

/// Thread-local buffer; its `Drop` merges into the global aggregate when
/// the owning thread exits, so scoped worker threads need no explicit
/// flush call.
struct Local {
    agg: Agg,
    /// Stack of open span names on this thread (for path construction).
    stack: Vec<String>,
}

impl Drop for Local {
    fn drop(&mut self) {
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.merge_into(&mut self.agg);
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local { agg: Agg::default(), stack: Vec::new() });
}

// ---- probes --------------------------------------------------------------

/// Add `delta` to the named counter. No-op when tracing is disabled.
#[inline]
pub fn count(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        match l.agg.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                l.agg.counters.insert(name.to_string(), delta);
            }
        }
    });
}

/// Raise the named high-water mark to at least `value`. No-op when
/// tracing is disabled.
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        match l.agg.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                l.agg.gauges.insert(name.to_string(), value);
            }
        }
    });
}

/// Record one completed span occurrence under an explicit path, for call
/// sites that already measured the duration themselves (e.g. the worker
/// pool's per-task timer). No-op when tracing is disabled.
#[inline]
pub fn record_span(path: &str, elapsed_ns: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let e = l.agg.spans.entry(path.to_string()).or_default();
        e.count += 1;
        e.total_ns += elapsed_ns;
    });
}

/// RAII timing guard from [`span`]. Spans opened while another span is
/// open on the same thread record under the joined path
/// (`"outer/inner"`); guards must be dropped in LIFO order.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct Span {
    open: Option<(String, Instant)>,
}

/// Open a named span on this thread. Disabled tracing returns an inert
/// guard without reading the clock.
#[inline]
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let path = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.stack.push(name.to_string());
        l.stack.join("/")
    });
    Span { open: Some((path, Instant::now())) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((path, start)) = self.open.take() else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.stack.pop();
            let e = l.agg.spans.entry(path).or_default();
            e.count += 1;
            e.total_ns += elapsed;
        });
    }
}

// ---- collection ----------------------------------------------------------

/// Merge this thread's buffer into the global aggregate now. Threads that
/// exit (worker pools) flush automatically; long-lived threads call this —
/// [`report`] does it for the calling thread.
///
/// The automatic thread-exit flush runs from a TLS destructor, which is
/// **not** ordered before `std::thread::scope` returns (the scope waits on
/// the spawn packet, which drops before TLS destructors run). A pool whose
/// caller will read a report right after the scope must therefore flush
/// explicitly inside the worker closure — see [`flush_on_exit`].
pub fn flush() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.merge_into(&mut l.agg);
    });
}

/// RAII guard from [`flush_on_exit`]: flushes the owning thread's buffer
/// when dropped.
pub struct FlushGuard {
    _private: (),
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush();
    }
}

/// Flush this thread's buffer when the returned guard drops — bind it at
/// the top of a worker closure so every exit path (normal completion,
/// early return, retirement) merges the worker's data *inside* the
/// closure, deterministically before a scoped join returns to the caller.
pub fn flush_on_exit() -> FlushGuard {
    FlushGuard { _private: () }
}

/// Clear all buffered data: the global aggregate and the calling thread's
/// local buffer. Does not change the armed state.
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.agg = Agg::default();
    });
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    *g = Agg::default();
}

/// Snapshot everything recorded so far (flushing the calling thread
/// first). Counters, gauges, and span paths come out sorted by name, so
/// two reports over identical data compare equal.
pub fn report() -> TraceReport {
    flush();
    let g = global().lock().unwrap_or_else(|e| e.into_inner());
    let mut counters: Vec<(String, u64)> = g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut gauges: Vec<(String, u64)> = g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut spans: Vec<(String, SpanStat)> = g.spans.iter().map(|(k, v)| (k.clone(), *v)).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    TraceReport { counters, gauges, spans }
}

// ---- report --------------------------------------------------------------

/// An aggregated snapshot of every counter, gauge, and span, sorted by
/// name. Produced by [`report`]; serializes to JSON under the
/// `nv-trace/v1` schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub spans: Vec<(String, SpanStat)>,
}

impl TraceReport {
    /// Value of a counter, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Stats for a span path, if it ever closed.
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        self.spans.iter().find(|(k, _)| k == path).map(|(_, v)| *v)
    }

    /// All counters whose name starts with `prefix`, in sorted order.
    pub fn counters_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Build the `nv-trace/v1` JSON document. The vendored serde has no
    /// map impls, so the object is assembled by hand — which also keeps
    /// key order identical to the sorted report.
    pub fn to_json(&self) -> serde::json::Value {
        use serde::json::{Map, Value};
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::Int(*v as i64));
        }
        let mut gauges = Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), Value::Int(*v as i64));
        }
        let mut spans = Map::new();
        for (k, s) in &self.spans {
            let mut o = Map::new();
            o.insert("count".into(), Value::Int(s.count as i64));
            o.insert("total_ns".into(), Value::Int(s.total_ns as i64));
            let mean = if s.count == 0 { 0 } else { s.total_ns / s.count };
            o.insert("mean_ns".into(), Value::Int(mean as i64));
            spans.insert(k.clone(), Value::Object(o));
        }
        let mut root = Map::new();
        root.insert("schema".into(), Value::String("nv-trace/v1".into()));
        root.insert("counters".into(), Value::Object(counters));
        root.insert("gauges".into(), Value::Object(gauges));
        root.insert("spans".into(), Value::Object(spans));
        Value::Object(root)
    }

    /// Pretty-printed JSON of [`Self::to_json`].
    pub fn to_json_string_pretty(&self) -> String {
        self.to_json().to_json_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The collector is process-global; tests must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        reset();
        guard
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = serial();
        count("x", 5);
        gauge_max("g", 9);
        let s = span("outer");
        drop(s);
        record_span("pre", 123);
        let r = report();
        assert!(r.counters.is_empty(), "{:?}", r.counters);
        assert!(r.gauges.is_empty());
        assert!(r.spans.is_empty());
    }

    #[test]
    fn nested_spans_record_joined_paths() {
        let _g = serial();
        enable();
        {
            let _a = span("corpus");
            {
                let _b = span("pair");
                let _c = span("parse");
            }
            {
                let _b = span("pair");
            }
        }
        disable();
        let r = report();
        assert_eq!(r.span_stat("corpus").unwrap().count, 1);
        assert_eq!(r.span_stat("corpus/pair").unwrap().count, 2);
        assert_eq!(r.span_stat("corpus/pair/parse").unwrap().count, 1);
        assert!(r.span_stat("pair").is_none(), "inner span leaked out of its parent path");
    }

    #[test]
    fn cross_thread_counters_merge_by_sum_and_gauges_by_max() {
        let _g = serial();
        enable();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                s.spawn(move || {
                    // The explicit guard — not the TLS-destructor backstop,
                    // which is NOT ordered before the scoped join — is what
                    // makes this data reliably visible to report() below.
                    let _f = flush_on_exit();
                    count("work.items", 3);
                    gauge_max("work.depth", 10 + i);
                    record_span("work/task", 1_000);
                });
            }
        });
        count("work.items", 1);
        disable();
        let r = report();
        assert_eq!(r.counter("work.items"), 13);
        assert_eq!(r.gauge("work.depth"), 13);
        let s = r.span_stat("work/task").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.total_ns, 4_000);
    }

    #[test]
    fn reset_clears_and_report_is_sorted() {
        let _g = serial();
        enable();
        count("b", 1);
        count("a", 1);
        reset();
        count("z", 2);
        count("a", 2);
        disable();
        let r = report();
        let names: Vec<&str> = r.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(r.counter("b"), 0);
    }

    #[test]
    fn json_report_has_v1_schema_shape() {
        let _g = serial();
        enable();
        count("c", 7);
        gauge_max("g", 3);
        record_span("s", 42);
        disable();
        let v = report().to_json();
        let serde::json::Value::Object(o) = &v else { panic!("root not an object") };
        assert_eq!(
            o.get("schema"),
            Some(&serde::json::Value::String("nv-trace/v1".into()))
        );
        let serde::json::Value::Object(c) = o.get("counters").unwrap() else { panic!() };
        assert_eq!(c.get("c"), Some(&serde::json::Value::Int(7)));
        let serde::json::Value::Object(sp) = o.get("spans").unwrap() else { panic!() };
        let serde::json::Value::Object(s) = sp.get("s").unwrap() else { panic!() };
        assert_eq!(s.get("count"), Some(&serde::json::Value::Int(1)));
        assert_eq!(s.get("total_ns"), Some(&serde::json::Value::Int(42)));
        assert_eq!(s.get("mean_ns"), Some(&serde::json::Value::Int(42)));
        // And it parses back.
        let text = report().to_json_string_pretty();
        serde::json::parse(&text).expect("report JSON re-parses");
    }
}
