//! The DeepEye baseline (§4.4): rule-based visualization from keyword
//! search. It matches columns mentioned in the NL, enumerates candidate
//! charts with the Table-1 rules, and ranks them with the chart-quality
//! model — returning top-k. Per the paper, it "can not successfully process
//! Join, Nested, and Filter queries": the NL's filter/join content is simply
//! ignored, which is exactly why it scores poorly on Hard/Extra-Hard tasks.

use crate::keyword::{match_columns, ColumnMention};
use nv_ast::{Attr, QueryBody, SetQuery, VisQuery};
use nv_core::Nl2VisPredictor;
use nv_data::Database;
use nv_quality::DeepEyeFilter;
use nv_render::chart_data;
use nv_synth::generate_candidates;

/// The keyword-search visualization recommender.
pub struct DeepEyeBaseline {
    filter: DeepEyeFilter,
}

impl DeepEyeBaseline {
    pub fn new(seed: u64) -> DeepEyeBaseline {
        DeepEyeBaseline { filter: DeepEyeFilter::new(seed) }
    }

    /// Ranked candidate trees for an NL query.
    fn ranked(&self, nl: &str, db: &Database) -> Vec<VisQuery> {
        let mentions = match_columns(nl, db);
        if mentions.is_empty() {
            return vec![];
        }
        // Build a pseudo SQL tree over the mentioned columns (≤ 3) and let
        // the candidate generator enumerate charts from it.
        let table = mentions[0].table.clone();
        let cols: Vec<&ColumnMention> = mentions.iter().take(3).collect();
        let select: Vec<Attr> = cols
            .iter()
            .map(|m| Attr::col(table.clone(), m.column.clone()))
            .collect();
        let sql = VisQuery::sql(SetQuery::simple(QueryBody::simple(table, select)));
        let mut scored: Vec<(f64, VisQuery)> = generate_candidates(db, &sql)
            .into_iter()
            .filter_map(|c| {
                let data = chart_data(db, &c.tree).ok()?;
                Some((self.filter.score(&data), c.tree))
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().map(|(_, t)| t).collect()
    }
}

impl Nl2VisPredictor for DeepEyeBaseline {
    fn name(&self) -> String {
        "DeepEye".into()
    }

    fn predict(&self, nl: &str, db: &Database) -> Option<VisQuery> {
        self.ranked(nl, db).into_iter().next()
    }

    fn predict_top_k(&self, nl: &str, db: &Database, k: usize) -> Vec<VisQuery> {
        let mut r = self.ranked(nl, db);
        r.truncate(k);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::ChartType;
    use nv_data::{table_from, ColumnType, Value};

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "student",
            &[
                ("major", ColumnType::Categorical),
                ("gpa", ColumnType::Quantitative),
                ("age", ColumnType::Quantitative),
            ],
            (0..40)
                .map(|i| {
                    vec![
                        Value::text(["cs", "math", "bio", "art", "law"][i % 5]),
                        Value::Float(2.0 + (i % 8) as f64 / 4.0),
                        Value::Int(18 + (i % 10) as i64),
                    ]
                })
                .collect(),
        ));
        db
    }

    #[test]
    fn produces_ranked_charts_for_mentioned_columns() {
        let b = DeepEyeBaseline::new(42);
        let top = b.predict_top_k("show gpa by major", &db(), 6);
        assert!(!top.is_empty());
        assert!(top.len() <= 6);
        // All candidates visualize the mentioned columns.
        for t in &top {
            let cols: Vec<String> = t
                .query
                .primary()
                .select
                .iter()
                .map(|a| a.col.column.clone())
                .collect();
            assert!(
                cols.iter().any(|c| c == "gpa" || c == "major" || c == "*"),
                "{cols:?}"
            );
        }
    }

    #[test]
    fn ignores_filters_entirely() {
        let b = DeepEyeBaseline::new(42);
        let t = b
            .predict("show gpa by major for students with age above 20", &db())
            .unwrap();
        assert!(t.query.primary().filter.is_none());
    }

    #[test]
    fn no_mentions_no_prediction() {
        let b = DeepEyeBaseline::new(42);
        assert!(b.predict("tell me something nice", &db()).is_none());
    }

    #[test]
    fn top1_is_best_scored() {
        let b = DeepEyeBaseline::new(42);
        let ranked = b.ranked("gpa per major", &db());
        assert!(ranked.len() >= 2);
        // The first tree must be a valid chart over the mentioned data.
        assert!(ranked[0].is_vis());
        assert_ne!(ranked[0].chart, None);
        let _ = ChartType::ALL;
    }
}
