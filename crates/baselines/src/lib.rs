//! # nv-baselines — the state-of-the-art comparators of §4.4
//!
//! Reimplementations of the two systems the paper compares seq2vis against
//! in Table 5:
//!
//! * [`DeepEyeBaseline`] — keyword-search chart recommendation with top-k
//!   ranking (ignores joins, nesting **and filters**);
//! * [`Nl4DvBaseline`] — a semantic-parse toolkit (explicit/implicit chart
//!   detection, aggregates, simple filters and sorting; no joins/nesting).
//!
//! Both implement [`nv_core::Nl2VisPredictor`], so the same evaluation
//! harness scores them and the neural translator.

pub mod deepeye;
pub mod keyword;
pub mod nl4dv;

pub use deepeye::DeepEyeBaseline;
pub use keyword::{detect_agg, detect_chart, detect_numeric_filter, detect_order_desc, match_columns, ColumnMention};
pub use nl4dv::Nl4DvBaseline;
