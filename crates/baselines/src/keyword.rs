//! Shared keyword machinery for the rule-based baselines: column/table
//! mention detection, chart-type phrase detection, aggregate words and
//! simple comparative-filter patterns.

use nv_ast::{AggFunc, ChartType, CmpOp};
use nv_data::{ColumnType, Database, Table};

/// A column mentioned in the NL, with its match position (for ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMention {
    pub table: String,
    pub column: String,
    pub ctype: ColumnType,
    pub position: usize,
}

/// Find columns whose display name ("credit limit" for `credit_limit`)
/// occurs in the NL. When several tables match, the table with the most
/// matches wins (keyword systems cannot join).
pub fn match_columns(nl: &str, db: &Database) -> Vec<ColumnMention> {
    let nl_lower = format!(" {} ", nl.to_lowercase());
    let mut per_table: Vec<(usize, Vec<ColumnMention>)> = Vec::new();
    for table in &db.tables {
        let mentions = table_mentions(&nl_lower, table);
        let table_named = nl_lower.contains(&display(table.name()));
        let score = mentions.len() * 2 + usize::from(table_named);
        per_table.push((score, mentions));
    }
    per_table
        .into_iter()
        .max_by_key(|(score, m)| (*score, m.len()))
        .map(|(_, mut m)| {
            m.sort_by_key(|c| c.position);
            m
        })
        .unwrap_or_default()
}

fn table_mentions(nl_lower: &str, table: &Table) -> Vec<ColumnMention> {
    let mut out = Vec::new();
    for col in &table.schema.columns {
        let name = display(&col.name);
        // Short generic names ("id") match too eagerly; require length ≥ 3.
        if name.len() < 3 {
            continue;
        }
        if let Some(pos) = nl_lower.find(&name) {
            out.push(ColumnMention {
                table: table.name().to_string(),
                column: col.name.clone(),
                ctype: col.ctype,
                position: pos,
            });
        }
    }
    out
}

fn display(ident: &str) -> String {
    ident.replace('_', " ").to_lowercase()
}

/// Detect an explicitly requested chart type, or infer one from implicit
/// phrases ("proportion" ⇒ pie, "trend" ⇒ line, "correlation" ⇒ scatter).
pub fn detect_chart(nl: &str) -> Option<ChartType> {
    let s = nl.to_lowercase();
    let has = |p: &str| s.contains(p);
    if has("stacked bar") {
        return Some(ChartType::StackedBar);
    }
    if has("grouping line") {
        return Some(ChartType::GroupingLine);
    }
    if has("grouping scatter") {
        return Some(ChartType::GroupingScatter);
    }
    if has("pie") || has("proportion") || has("share of") || has("percentage") {
        return Some(ChartType::Pie);
    }
    if has("line chart") || has("line graph") || has("trend") || has("over time") {
        return Some(ChartType::Line);
    }
    if has("scatter") || has("correlation") || has("relationship between") {
        return Some(ChartType::Scatter);
    }
    if has("bar") || has("histogram") {
        return Some(ChartType::Bar);
    }
    None
}

/// Detect an aggregate request.
pub fn detect_agg(nl: &str) -> Option<AggFunc> {
    let s = nl.to_lowercase();
    if s.contains("average") || s.contains("mean ") {
        Some(AggFunc::Avg)
    } else if s.contains("total") || s.contains("sum of") || s.contains("overall") {
        Some(AggFunc::Sum)
    } else if s.contains("maximum") || s.contains("highest") || s.contains("largest") {
        Some(AggFunc::Max)
    } else if s.contains("minimum") || s.contains("lowest") || s.contains("smallest") {
        Some(AggFunc::Min)
    } else if s.contains("how many") || s.contains("number of") || s.contains("count") {
        Some(AggFunc::Count)
    } else {
        None
    }
}

/// Detect a simple comparative filter: "(above|greater than|more than|below|
/// less than|under) <number>" against a quantitative mention.
pub fn detect_numeric_filter(nl: &str) -> Option<(CmpOp, f64)> {
    let s = nl.to_lowercase();
    let words: Vec<&str> = s.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        let op = match *w {
            "above" | "over" | "exceeding" => Some(CmpOp::Gt),
            "below" | "under" => Some(CmpOp::Lt),
            "than" if i > 0 && (words[i - 1] == "greater" || words[i - 1] == "more") => {
                Some(CmpOp::Gt)
            }
            "than" if i > 0 && (words[i - 1] == "less" || words[i - 1] == "fewer") => {
                Some(CmpOp::Lt)
            }
            _ => None,
        };
        if let Some(op) = op {
            // The next number-shaped word is the operand.
            for w2 in &words[i + 1..] {
                let t = w2.trim_matches(|c: char| !c.is_ascii_digit() && c != '.' && c != '-');
                if let Ok(n) = t.parse::<f64>() {
                    return Some((op, n));
                }
            }
        }
    }
    None
}

/// Detect an explicit sort request.
pub fn detect_order_desc(nl: &str) -> Option<bool> {
    let s = nl.to_lowercase();
    if s.contains("descending") || s.contains("high to low") || s.contains("decreasing") {
        Some(true)
    } else if s.contains("ascending") || s.contains("low to high") || s.contains("increasing") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, Value};

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "employee",
            &[
                ("employee_name", ColumnType::Categorical),
                ("salary", ColumnType::Quantitative),
                ("title", ColumnType::Categorical),
                ("id", ColumnType::Categorical),
            ],
            vec![vec![
                Value::text("a"),
                Value::Int(100),
                Value::text("engineer"),
                Value::Int(1),
            ]],
        ));
        db.add_table(table_from(
            "company",
            &[
                ("company_name", ColumnType::Categorical),
                ("revenue", ColumnType::Quantitative),
            ],
            vec![vec![Value::text("x"), Value::Int(5)]],
        ));
        db
    }

    #[test]
    fn matches_columns_of_best_table() {
        let m = match_columns("What is the average salary for each title?", &db());
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|c| c.table == "employee"));
        // Sorted by position: salary appears before title.
        assert_eq!(m[0].column, "salary");
        assert_eq!(m[1].column, "title");
    }

    #[test]
    fn short_names_ignored() {
        let m = match_columns("the id of things", &db());
        assert!(m.iter().all(|c| c.column != "id"));
    }

    #[test]
    fn chart_detection() {
        assert_eq!(detect_chart("show a pie chart"), Some(ChartType::Pie));
        assert_eq!(detect_chart("the proportion of users"), Some(ChartType::Pie));
        assert_eq!(detect_chart("trend of sales"), Some(ChartType::Line));
        assert_eq!(detect_chart("correlation between x and y"), Some(ChartType::Scatter));
        assert_eq!(detect_chart("a stacked bar of sales"), Some(ChartType::StackedBar));
        assert_eq!(detect_chart("draw a bar graph"), Some(ChartType::Bar));
        assert_eq!(detect_chart("just the data"), None);
    }

    #[test]
    fn agg_detection() {
        assert_eq!(detect_agg("average salary"), Some(AggFunc::Avg));
        assert_eq!(detect_agg("the total revenue"), Some(AggFunc::Sum));
        assert_eq!(detect_agg("how many employees"), Some(AggFunc::Count));
        assert_eq!(detect_agg("highest gpa"), Some(AggFunc::Max));
        assert_eq!(detect_agg("the smallest budget"), Some(AggFunc::Min));
        assert_eq!(detect_agg("plain listing"), None);
    }

    #[test]
    fn numeric_filter_detection() {
        assert_eq!(
            detect_numeric_filter("salary greater than 1000 dollars"),
            Some((CmpOp::Gt, 1000.0))
        );
        assert_eq!(detect_numeric_filter("price under 3.5"), Some((CmpOp::Lt, 3.5)));
        assert_eq!(detect_numeric_filter("above 70,"), Some((CmpOp::Gt, 70.0)));
        assert_eq!(detect_numeric_filter("nothing to see"), None);
    }

    #[test]
    fn order_detection() {
        assert_eq!(detect_order_desc("sorted in descending order"), Some(true));
        assert_eq!(detect_order_desc("from low to high"), Some(false));
        assert_eq!(detect_order_desc("unsorted"), None);
    }
}
