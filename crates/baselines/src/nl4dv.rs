//! The NL4DV-style baseline (§4.4): a semantic-parse toolkit that detects
//! attributes, an explicit or implicit chart type, aggregates, simple
//! comparative filters and sort requests — then assembles one analytic
//! specification. Per the paper it "cannot handle Join and Nested queries";
//! unlike DeepEye it *does* understand simple filters.

use crate::keyword::{
    detect_agg, detect_chart, detect_numeric_filter, detect_order_desc, match_columns,
};
use nv_ast::{
    AggFunc, Attr, BinSpec, BinUnit, ChartType, CmpOp, ColumnRef, GroupSpec, Literal, Operand,
    OrderDir, OrderSpec, Predicate, QueryBody, SetQuery, VisQuery,
};
use nv_core::Nl2VisPredictor;
use nv_data::{ColumnType, Database};

/// The semantic-parser baseline.
#[derive(Debug, Default)]
pub struct Nl4DvBaseline;

impl Nl4DvBaseline {
    pub fn new() -> Nl4DvBaseline {
        Nl4DvBaseline
    }
}

impl Nl2VisPredictor for Nl4DvBaseline {
    fn name(&self) -> String {
        "NL4DV".into()
    }

    fn predict(&self, nl: &str, db: &Database) -> Option<VisQuery> {
        let mentions = match_columns(nl, db);
        if mentions.is_empty() {
            return None;
        }
        let table = mentions[0].table.clone();
        let s = nl.to_lowercase();

        // Channel assignment: first C/T mention is x; first Q mention is the
        // measure; a second C mention becomes the series of grouped charts.
        let x = mentions
            .iter()
            .find(|m| m.ctype != ColumnType::Quantitative)
            .or(mentions.first())?;
        let q = mentions.iter().find(|m| m.ctype == ColumnType::Quantitative);
        let agg = detect_agg(nl);
        let chart = detect_chart(nl).unwrap_or({
            // Attribute-type defaults (NL4DV's own fallback rules).
            match (x.ctype, q.is_some()) {
                (ColumnType::Temporal, _) => ChartType::Line,
                (ColumnType::Quantitative, true) => ChartType::Scatter,
                _ => ChartType::Bar,
            }
        });

        let x_attr = Attr::col(x.table.clone(), x.column.clone());
        let y_attr = match (q, agg) {
            (Some(q), Some(a)) if a != AggFunc::Count => {
                Attr { agg: a, col: ColumnRef::new(q.table.clone(), q.column.clone()), distinct: false }
            }
            (Some(q), None) if chart == ChartType::Scatter || chart == ChartType::GroupingScatter => {
                Attr::col(q.table.clone(), q.column.clone())
            }
            (Some(q), None) => Attr {
                agg: AggFunc::Sum,
                col: ColumnRef::new(q.table.clone(), q.column.clone()),
                distinct: false,
            },
            _ => Attr::agg(AggFunc::Count, table.clone(), "*"),
        };

        let mut select = vec![x_attr.clone(), y_attr.clone()];
        // Third channel for grouped chart types.
        if chart.is_grouped() {
            let series = mentions.iter().find(|m| {
                m.column != x.column
                    && Some(m.column.as_str()) != q.map(|q| q.column.as_str())
                    && m.ctype == ColumnType::Categorical
            })?;
            select.push(Attr::col(series.table.clone(), series.column.clone()));
        }

        let mut body = QueryBody::simple(table.clone(), select.clone());

        // Grouping: aggregated y over a non-scatter chart groups by x (and
        // the series).
        let needs_group = y_attr.is_aggregated()
            && !matches!(chart, ChartType::Scatter | ChartType::GroupingScatter);
        if needs_group {
            let mut g = GroupSpec::by(x_attr.col.clone());
            if chart.is_grouped() {
                if let Some(s3) = select.get(2) {
                    g.group_by.push(s3.col.clone());
                }
            }
            // Temporal x with an explicit "by year/month" becomes a bin.
            if x.ctype == ColumnType::Temporal {
                let unit = if s.contains("year") {
                    Some(BinUnit::Year)
                } else if s.contains("month") {
                    Some(BinUnit::Month)
                } else if s.contains("weekday") || s.contains("day of the week") {
                    Some(BinUnit::Weekday)
                } else {
                    None
                };
                if let Some(unit) = unit {
                    g.group_by.retain(|c| *c != x_attr.col);
                    g.bin = Some(BinSpec { col: x_attr.col.clone(), unit });
                }
            }
            body.group = Some(g);
        }

        // One simple comparative filter (no joins, no nesting).
        if let Some((op, n)) = detect_numeric_filter(nl) {
            let target = mentions
                .iter()
                .find(|m| {
                    m.ctype == ColumnType::Quantitative
                        && Some(m.column.as_str()) != q.map(|q| q.column.as_str())
                })
                .or(q);
            if let Some(t) = target {
                body.filter = Some(Predicate::Cmp {
                    op,
                    attr: Attr::col(t.table.clone(), t.column.clone()),
                    rhs: Operand::Lit(if n.fract() == 0.0 {
                        Literal::Int(n as i64)
                    } else {
                        Literal::Float(n)
                    }),
                });
            }
        }

        // Sorting.
        if let Some(desc) = detect_order_desc(nl) {
            if matches!(chart, ChartType::Bar | ChartType::StackedBar | ChartType::Line) {
                body.order = Some(OrderSpec {
                    attr: y_attr.clone(),
                    dir: if desc { OrderDir::Desc } else { OrderDir::Asc },
                });
            }
        }
        let _ = CmpOp::Eq;

        Some(VisQuery::vis(chart, SetQuery::simple(body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, Value};

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "employee",
            &[
                ("title", ColumnType::Categorical),
                ("salary", ColumnType::Quantitative),
                ("age", ColumnType::Quantitative),
                ("hired", ColumnType::Temporal),
            ],
            (0..20)
                .map(|i| {
                    vec![
                        Value::text(["eng", "mgr", "ops"][i % 3]),
                        Value::Int(100 + i as i64),
                        Value::Int(25 + (i % 20) as i64),
                        Value::text("2020-03-04"),
                    ]
                })
                .collect(),
        ));
        db
    }

    fn predict(nl: &str) -> VisQuery {
        Nl4DvBaseline::new().predict(nl, &db()).expect(nl)
    }

    #[test]
    fn explicit_chart_and_agg() {
        let t = predict("Show a pie chart of the average salary for each title.");
        assert_eq!(t.chart, Some(ChartType::Pie));
        let b = t.query.primary();
        assert_eq!(b.select[0].col.column, "title");
        assert_eq!(b.select[1].agg, AggFunc::Avg);
        assert!(b.group.as_ref().unwrap().group_by[0].column == "title");
    }

    #[test]
    fn count_when_no_quantitative_mentioned() {
        let t = predict("How many employees per title, as a bar chart?");
        let b = t.query.primary();
        assert_eq!(b.select[1].agg, AggFunc::Count);
        assert!(b.select[1].col.is_star());
    }

    #[test]
    fn numeric_filter_supported() {
        let t = predict("Bar chart of total salary by title for age above 30.");
        let f = t.query.primary().filter.as_ref().expect("filter");
        match f {
            Predicate::Cmp { op, attr, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(attr.col.column, "age");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temporal_binning_from_phrase() {
        let t = predict("Line chart of total salary by hired year.");
        let g = t.query.primary().group.as_ref().unwrap();
        assert_eq!(g.bin.as_ref().unwrap().unit, BinUnit::Year);
        assert_eq!(t.chart, Some(ChartType::Line));
    }

    #[test]
    fn sorting_detected() {
        let t = predict("Bar chart of average salary per title in descending order.");
        assert_eq!(t.query.primary().order.as_ref().unwrap().dir, OrderDir::Desc);
    }

    #[test]
    fn no_attributes_no_answer() {
        assert!(Nl4DvBaseline::new().predict("hello there", &db()).is_none());
    }

    #[test]
    fn scatter_keeps_raw_values() {
        let t = predict("Scatter of salary and age.");
        assert_eq!(t.chart, Some(ChartType::Scatter));
        let b = t.query.primary();
        assert!(b.group.is_none());
        assert!(b.select.iter().all(|a| !a.is_aggregated()));
    }
}
