//! Vega-Lite code generation (§2.6 — the paper's first hard-coded target,
//! ~240 lines of Python there; a `serde_json` spec builder here).

use crate::chart::ChartData;
use nv_ast::ChartType;
use nv_data::{ColumnType, Value};
use serde_json::{json, Map, Value as Json};

/// Build a complete Vega-Lite v5 spec for the chart data.
pub fn to_vega_lite(cd: &ChartData) -> Json {
    let values: Vec<Json> = cd.rows.iter().map(|r| datum(cd, r)).collect();
    let mut spec = Map::new();
    spec.insert(
        "$schema".into(),
        json!("https://vega.github.io/schema/vega-lite/v5.json"),
    );
    spec.insert("data".into(), json!({ "values": values }));
    spec.insert("mark".into(), mark(cd.chart));
    spec.insert("encoding".into(), encoding(cd));
    Json::Object(spec)
}

fn mark(chart: ChartType) -> Json {
    match chart {
        ChartType::Bar | ChartType::StackedBar => json!("bar"),
        ChartType::Pie => json!({ "type": "arc", "tooltip": true }),
        ChartType::Line | ChartType::GroupingLine => json!("line"),
        ChartType::Scatter | ChartType::GroupingScatter => json!("point"),
    }
}

fn field_type(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Categorical => "nominal",
        ColumnType::Temporal => "temporal",
        ColumnType::Quantitative => "quantitative",
    }
}

fn encoding(cd: &ChartData) -> Json {
    let x = json!({ "field": "x", "type": field_type(cd.x_type), "title": cd.x_name });
    let y = json!({ "field": "y", "type": field_type(cd.y_type), "title": cd.y_name });
    match cd.chart {
        ChartType::Pie => json!({
            "theta": { "field": "y", "type": "quantitative", "title": cd.y_name },
            "color": { "field": "x", "type": "nominal", "title": cd.x_name },
        }),
        ChartType::Bar | ChartType::Line | ChartType::Scatter => json!({ "x": x, "y": y }),
        ChartType::StackedBar => json!({
            "x": x,
            "y": { "field": "y", "type": "quantitative", "title": cd.y_name,
                   "stack": "zero" },
            "color": series_enc(cd),
        }),
        ChartType::GroupingLine | ChartType::GroupingScatter => json!({
            "x": x,
            "y": y,
            "color": series_enc(cd),
        }),
    }
}

fn series_enc(cd: &ChartData) -> Json {
    json!({
        "field": "series",
        "type": "nominal",
        "title": cd.series_name.clone().unwrap_or_default(),
    })
}

fn datum(cd: &ChartData, r: &crate::chart::ChartRow) -> Json {
    let mut m = Map::new();
    m.insert("x".into(), value_json(&r.x));
    m.insert("y".into(), value_json(&r.y));
    if let Some(s) = &r.series {
        m.insert("series".into(), value_json(s));
    }
    let _ = cd;
    Json::Object(m)
}

/// Convert an engine value to JSON: numerics stay numeric, timestamps render
/// ISO-style, nulls are JSON null.
pub fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => json!(b),
        Value::Int(i) => json!(i),
        Value::Float(f) => json!(f),
        Value::Text(s) => json!(s),
        Value::Time(t) => json!(t.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartRow;

    fn data(chart: ChartType, grouped: bool) -> ChartData {
        ChartData {
            chart,
            x_name: "t.cat".into(),
            y_name: "count(t.*)".into(),
            series_name: grouped.then(|| "t.grp".into()),
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            rows: vec![
                ChartRow {
                    x: Value::text("a"),
                    y: Value::Int(3),
                    series: grouped.then(|| Value::text("g1")),
                },
                ChartRow {
                    x: Value::text("b"),
                    y: Value::Int(5),
                    series: grouped.then(|| Value::text("g2")),
                },
            ],
        }
    }

    #[test]
    fn bar_spec_shape() {
        let spec = to_vega_lite(&data(ChartType::Bar, false));
        assert_eq!(spec["mark"], json!("bar"));
        assert_eq!(spec["encoding"]["x"]["field"], json!("x"));
        assert_eq!(spec["encoding"]["y"]["type"], json!("quantitative"));
        assert_eq!(spec["data"]["values"].as_array().unwrap().len(), 2);
        assert!(spec["$schema"].as_str().unwrap().contains("vega-lite"));
    }

    #[test]
    fn pie_uses_theta_color() {
        let spec = to_vega_lite(&data(ChartType::Pie, false));
        assert_eq!(spec["mark"]["type"], json!("arc"));
        assert_eq!(spec["encoding"]["theta"]["field"], json!("y"));
        assert_eq!(spec["encoding"]["color"]["field"], json!("x"));
        assert!(spec["encoding"]["x"].is_null());
    }

    #[test]
    fn stacked_bar_has_color_and_stack() {
        let spec = to_vega_lite(&data(ChartType::StackedBar, true));
        assert_eq!(spec["encoding"]["color"]["field"], json!("series"));
        assert_eq!(spec["encoding"]["y"]["stack"], json!("zero"));
        let v0 = &spec["data"]["values"][0];
        assert_eq!(v0["series"], json!("g1"));
    }

    #[test]
    fn grouping_marks() {
        assert_eq!(to_vega_lite(&data(ChartType::GroupingLine, true))["mark"], json!("line"));
        assert_eq!(
            to_vega_lite(&data(ChartType::GroupingScatter, true))["mark"],
            json!("point")
        );
        assert_eq!(to_vega_lite(&data(ChartType::Scatter, false))["mark"], json!("point"));
        assert_eq!(to_vega_lite(&data(ChartType::Line, false))["mark"], json!("line"));
    }

    #[test]
    fn values_serialize_types() {
        assert_eq!(value_json(&Value::Null), Json::Null);
        assert_eq!(value_json(&Value::Int(3)), json!(3));
        assert_eq!(value_json(&Value::Float(2.5)), json!(2.5));
        assert_eq!(value_json(&Value::Bool(true)), json!(true));
        assert_eq!(
            value_json(&Value::Time(nv_data::Timestamp::date(2020, 1, 2))),
            json!("2020-01-02")
        );
    }

    #[test]
    fn spec_is_serializable() {
        let spec = to_vega_lite(&data(ChartType::Bar, false));
        let s = serde_json::to_string(&spec).unwrap();
        assert!(s.contains("\"values\""));
    }
}
