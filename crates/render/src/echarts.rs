//! ECharts option generation (§2.6 — the paper's second target language,
//! ~320 lines of Python there).
//!
//! ECharts is series-oriented: grouped chart types pivot the data into one
//! series per color value, sharing the category axis.

use crate::chart::ChartData;
use crate::vegalite::value_json;
use nv_ast::ChartType;
use nv_data::Value;
use serde_json::{json, Value as Json};

/// Build a complete ECharts `option` object for the chart data.
pub fn to_echarts(cd: &ChartData) -> Json {
    match cd.chart {
        ChartType::Pie => pie_option(cd),
        ChartType::Bar | ChartType::Line => simple_option(cd),
        ChartType::Scatter => scatter_option(cd, false),
        ChartType::GroupingScatter => scatter_option(cd, true),
        ChartType::StackedBar | ChartType::GroupingLine => grouped_option(cd),
    }
}

fn echart_kind(chart: ChartType) -> &'static str {
    match chart {
        ChartType::Bar | ChartType::StackedBar => "bar",
        ChartType::Pie => "pie",
        ChartType::Line | ChartType::GroupingLine => "line",
        ChartType::Scatter | ChartType::GroupingScatter => "scatter",
    }
}

fn pie_option(cd: &ChartData) -> Json {
    let data: Vec<Json> = cd
        .rows
        .iter()
        .map(|r| json!({ "name": r.x.label(), "value": value_json(&r.y) }))
        .collect();
    json!({
        "title": { "text": format!("{} by {}", cd.y_name, cd.x_name) },
        "tooltip": { "trigger": "item" },
        "series": [{ "type": "pie", "radius": "60%", "data": data }],
    })
}

fn simple_option(cd: &ChartData) -> Json {
    let xs: Vec<Json> = cd.rows.iter().map(|r| json!(r.x.label())).collect();
    let ys: Vec<Json> = cd.rows.iter().map(|r| value_json(&r.y)).collect();
    json!({
        "xAxis": { "type": "category", "name": cd.x_name, "data": xs },
        "yAxis": { "type": "value", "name": cd.y_name },
        "tooltip": {},
        "series": [{ "type": echart_kind(cd.chart), "data": ys }],
    })
}

fn scatter_option(cd: &ChartData, grouped: bool) -> Json {
    if grouped {
        let mut series = Vec::new();
        for s in distinct_series(cd) {
            let pts: Vec<Json> = cd
                .rows
                .iter()
                .filter(|r| r.series.as_ref() == Some(&s))
                .map(|r| json!([value_json(&r.x), value_json(&r.y)]))
                .collect();
            series.push(json!({ "type": "scatter", "name": s.label(), "data": pts }));
        }
        json!({
            "xAxis": { "type": "value", "name": cd.x_name },
            "yAxis": { "type": "value", "name": cd.y_name },
            "legend": {},
            "tooltip": {},
            "series": series,
        })
    } else {
        let pts: Vec<Json> = cd
            .rows
            .iter()
            .map(|r| json!([value_json(&r.x), value_json(&r.y)]))
            .collect();
        json!({
            "xAxis": { "type": "value", "name": cd.x_name },
            "yAxis": { "type": "value", "name": cd.y_name },
            "tooltip": {},
            "series": [{ "type": "scatter", "data": pts }],
        })
    }
}

/// Pivot (x, y, series) into one ECharts series per distinct series value,
/// aligned on the shared category axis.
fn grouped_option(cd: &ChartData) -> Json {
    let xs = distinct_x(cd);
    let x_labels: Vec<Json> = xs.iter().map(|x| json!(x.label())).collect();
    let stack = matches!(cd.chart, ChartType::StackedBar);
    let mut series = Vec::new();
    for s in distinct_series(cd) {
        let mut data = vec![Json::Null; xs.len()];
        for r in &cd.rows {
            if r.series.as_ref() == Some(&s) {
                if let Some(i) = xs.iter().position(|x| x == &r.x) {
                    data[i] = value_json(&r.y);
                }
            }
        }
        let mut obj = json!({
            "type": echart_kind(cd.chart),
            "name": s.label(),
            "data": data,
        });
        if stack {
            obj["stack"] = json!("total");
        }
        series.push(obj);
    }
    json!({
        "xAxis": { "type": "category", "name": cd.x_name, "data": x_labels },
        "yAxis": { "type": "value", "name": cd.y_name },
        "legend": {},
        "tooltip": {},
        "series": series,
    })
}

fn distinct_x(cd: &ChartData) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    for r in &cd.rows {
        if !out.contains(&r.x) {
            out.push(r.x.clone());
        }
    }
    out
}

fn distinct_series(cd: &ChartData) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    for r in &cd.rows {
        if let Some(s) = &r.series {
            if !out.contains(s) {
                out.push(s.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::ChartRow;
    use nv_data::ColumnType;

    fn data(chart: ChartType) -> ChartData {
        let grouped = chart.is_grouped();
        ChartData {
            chart,
            x_name: "x".into(),
            y_name: "y".into(),
            series_name: grouped.then(|| "s".into()),
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            rows: vec![
                ChartRow {
                    x: Value::text("a"),
                    y: Value::Int(1),
                    series: grouped.then(|| Value::text("g1")),
                },
                ChartRow {
                    x: Value::text("a"),
                    y: Value::Int(2),
                    series: grouped.then(|| Value::text("g2")),
                },
                ChartRow {
                    x: Value::text("b"),
                    y: Value::Int(3),
                    series: grouped.then(|| Value::text("g1")),
                },
            ],
        }
    }

    #[test]
    fn bar_option() {
        let o = to_echarts(&data(ChartType::Bar));
        assert_eq!(o["series"][0]["type"], json!("bar"));
        assert_eq!(o["xAxis"]["data"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn pie_option_name_value() {
        let o = to_echarts(&data(ChartType::Pie));
        assert_eq!(o["series"][0]["type"], json!("pie"));
        assert_eq!(o["series"][0]["data"][0]["name"], json!("a"));
        assert_eq!(o["series"][0]["data"][0]["value"], json!(1));
    }

    #[test]
    fn stacked_bar_pivots_series() {
        let o = to_echarts(&data(ChartType::StackedBar));
        let series = o["series"].as_array().unwrap();
        assert_eq!(series.len(), 2); // g1, g2
        assert_eq!(series[0]["stack"], json!("total"));
        // g1 has values for both x=a and x=b; g2 only for a.
        assert_eq!(series[0]["data"].as_array().unwrap().len(), 2);
        assert_eq!(series[1]["data"][1], Json::Null);
    }

    #[test]
    fn grouping_line_no_stack() {
        let o = to_echarts(&data(ChartType::GroupingLine));
        assert_eq!(o["series"][0]["type"], json!("line"));
        assert!(o["series"][0]["stack"].is_null());
    }

    #[test]
    fn scatter_points_are_pairs() {
        let o = to_echarts(&data(ChartType::Scatter));
        assert_eq!(o["series"][0]["data"][0], json!(["a", 1]));
        let o = to_echarts(&data(ChartType::GroupingScatter));
        assert_eq!(o["series"].as_array().unwrap().len(), 2);
        assert!(o["legend"].is_object());
    }
}
