//! # nv-render — from VIS trees to visualizations (§2.6)
//!
//! Executes a VIS tree against a database and maps the result onto chart
//! channels ([`chart_data`]), then hard-codes the translation into two
//! target visualization languages, matching the paper: **Vega-Lite**
//! ([`to_vega_lite`]) and **ECharts** ([`to_echarts`]).
//!
//! ```
//! use nv_ast::tokens::parse_vql_str;
//! use nv_data::{table_from, ColumnType, Database, Value};
//! use nv_render::{chart_data, to_echarts, to_vega_lite};
//!
//! let mut db = Database::new("d", "Demo");
//! db.add_table(table_from(
//!     "sales",
//!     &[("region", ColumnType::Categorical), ("amount", ColumnType::Quantitative)],
//!     vec![
//!         vec![Value::text("east"), Value::Int(10)],
//!         vec![Value::text("west"), Value::Int(20)],
//!     ],
//! ));
//! let tree = parse_vql_str(
//!     "visualize bar select sales.region , sum ( sales.amount ) from sales \
//!      group by sales.region",
//! ).unwrap();
//! let cd = chart_data(&db, &tree).unwrap();
//! assert_eq!(to_vega_lite(&cd)["mark"], serde_json::json!("bar"));
//! assert_eq!(to_echarts(&cd)["series"][0]["type"], serde_json::json!("bar"));
//! ```

pub mod chart;
pub mod echarts;
pub mod vegalite;

pub use chart::{
    chart_data, chart_data_budgeted, chart_data_cached, chart_data_cached_budgeted,
    chart_data_from_result, ChartData, ChartRow, RenderError,
};
pub use echarts::to_echarts;
pub use vegalite::to_vega_lite;
