//! Chart data: the bridge between a VIS tree's query result and a concrete
//! visualization spec.

use nv_ast::{ChartType, VisQuery};
use nv_data::{
    execute_budgeted, execute_with_cache_budgeted, ColumnType, Database, ExecBudget, ExecCache,
    ExecError, ResultSet, Value,
};

/// Error producing chart data.
#[derive(Debug, Clone, PartialEq)]
pub enum RenderError {
    /// The underlying query failed.
    Exec(ExecError),
    /// The tree has no `Visualize` node.
    NotAVisQuery,
    /// The result shape does not fit the chart type (arity / channel types).
    Shape(String),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::Exec(e) => write!(f, "{e}"),
            RenderError::NotAVisQuery => write!(f, "tree has no Visualize node"),
            RenderError::Shape(m) => write!(f, "chart shape error: {m}"),
        }
    }
}

impl std::error::Error for RenderError {}

impl From<ExecError> for RenderError {
    fn from(e: ExecError) -> Self {
        RenderError::Exec(e)
    }
}

/// One data point of a chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartRow {
    pub x: Value,
    pub y: Value,
    /// The color/series value for grouped chart types.
    pub series: Option<Value>,
}

/// Executed, channel-mapped chart data.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartData {
    pub chart: ChartType,
    pub x_name: String,
    pub y_name: String,
    pub series_name: Option<String>,
    pub x_type: ColumnType,
    pub y_type: ColumnType,
    pub rows: Vec<ChartRow>,
}

impl ChartData {
    /// Distinct x values.
    pub fn n_categories(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.rows.iter().filter(|r| seen.insert(&r.x)).count()
    }

    /// Distinct series values (0 when ungrouped).
    pub fn n_series(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.rows
            .iter()
            .filter_map(|r| r.series.as_ref())
            .filter(|s| seen.insert(*s))
            .count()
    }
}

/// Execute a VIS tree and map its result columns onto chart channels.
///
/// Channel convention (established by the synthesizer's select ordering):
/// column 0 → x, column 1 → y, column 2 (grouped charts) → color/series.
/// For `GroupingScatter` the third select attribute is the categorical
/// series even though x and y are both quantitative.
pub fn chart_data(db: &Database, q: &VisQuery) -> Result<ChartData, RenderError> {
    chart_data_budgeted(db, q, ExecBudget::default())
}

/// [`chart_data`] with an explicit executor resource budget.
pub fn chart_data_budgeted(
    db: &Database,
    q: &VisQuery,
    budget: ExecBudget,
) -> Result<ChartData, RenderError> {
    let chart = q.chart.ok_or(RenderError::NotAVisQuery)?;
    let rs = execute_budgeted(db, q, budget)?;
    chart_data_from_result(chart, &rs)
}

/// Like [`chart_data`] but executing through a per-database [`ExecCache`],
/// so sibling candidates sharing a FROM/WHERE/GROUP fragment reuse work.
pub fn chart_data_cached(
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
) -> Result<ChartData, RenderError> {
    chart_data_cached_budgeted(db, q, cache, ExecBudget::default())
}

/// [`chart_data_cached`] with an explicit executor resource budget.
pub fn chart_data_cached_budgeted(
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
    budget: ExecBudget,
) -> Result<ChartData, RenderError> {
    let chart = q.chart.ok_or(RenderError::NotAVisQuery)?;
    let rs = execute_with_cache_budgeted(db, q, cache, budget)?;
    chart_data_from_result(chart, &rs)
}

/// Channel-map an already-executed result set.
pub fn chart_data_from_result(
    chart: ChartType,
    rs: &ResultSet,
) -> Result<ChartData, RenderError> {
    let need = if chart.is_grouped() { 3 } else { 2 };
    if rs.columns.len() != need {
        return Err(RenderError::Shape(format!(
            "{} chart needs {need} result columns, got {}",
            chart.keyword(),
            rs.columns.len()
        )));
    }
    let (xi, yi, si) = (0usize, 1usize, if chart.is_grouped() { Some(2usize) } else { None });

    let rows: Vec<ChartRow> = rs
        .rows
        .iter()
        .map(|r| ChartRow {
            x: r[xi].clone(),
            y: r[yi].clone(),
            series: si.map(|i| r[i].clone()),
        })
        .collect();

    Ok(ChartData {
        chart,
        x_name: rs.columns[xi].clone(),
        y_name: rs.columns[yi].clone(),
        series_name: si.map(|i| rs.columns[i].clone()),
        x_type: rs.types[xi],
        y_type: rs.types[yi],
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::parse_vql_str;
    use nv_data::table_from;

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "sales",
            &[
                ("region", ColumnType::Categorical),
                ("amount", ColumnType::Quantitative),
                ("year", ColumnType::Quantitative),
            ],
            vec![
                vec![Value::text("east"), Value::Int(10), Value::Int(2020)],
                vec![Value::text("east"), Value::Int(20), Value::Int(2021)],
                vec![Value::text("west"), Value::Int(5), Value::Int(2020)],
            ],
        ));
        db
    }

    #[test]
    fn bar_chart_channels() {
        let q = parse_vql_str(
            "visualize bar select sales.region , sum ( sales.amount ) from sales \
             group by sales.region",
        )
        .unwrap();
        let cd = chart_data(&db(), &q).unwrap();
        assert_eq!(cd.chart, ChartType::Bar);
        assert_eq!(cd.n_categories(), 2);
        assert_eq!(cd.n_series(), 0);
        assert_eq!(cd.x_name, "sales.region");
        assert_eq!(cd.y_type, ColumnType::Quantitative);
        let east = cd.rows.iter().find(|r| r.x == Value::text("east")).unwrap();
        assert_eq!(east.y, Value::Int(30));
    }

    #[test]
    fn grouped_chart_has_series() {
        let q = parse_vql_str(
            "visualize stacked_bar select sales.region , sum ( sales.amount ) , sales.year \
             from sales group by sales.region , sales.year",
        )
        .unwrap();
        let cd = chart_data(&db(), &q).unwrap();
        assert_eq!(cd.n_series(), 2);
        assert_eq!(cd.series_name.as_deref(), Some("sales.year"));
    }

    #[test]
    fn wrong_arity_is_shape_error() {
        let q = parse_vql_str("visualize bar select sales.region from sales").unwrap();
        let e = chart_data(&db(), &q).unwrap_err();
        assert!(matches!(e, RenderError::Shape(_)), "{e}");
        let q = parse_vql_str(
            "visualize stacked_bar select sales.region , sum ( sales.amount ) from sales \
             group by sales.region",
        )
        .unwrap();
        assert!(matches!(chart_data(&db(), &q), Err(RenderError::Shape(_))));
    }

    #[test]
    fn sql_tree_is_rejected() {
        let q = parse_vql_str("select sales.region from sales").unwrap();
        assert_eq!(chart_data(&db(), &q), Err(RenderError::NotAVisQuery));
    }

    #[test]
    fn exec_errors_propagate() {
        let q = parse_vql_str(
            "visualize bar select ghost.a , count ( ghost.* ) from ghost group by ghost.a",
        )
        .unwrap();
        assert!(matches!(chart_data(&db(), &q), Err(RenderError::Exec(_))));
    }
}
