//! Generate Spider-style (NL, SQL) pairs over a populated database.
//!
//! Spider's pairs are human-written; ours are synthesized from compositional
//! NL templates with seeded lexical variation, spanning the same SQL clause
//! space (aggregation, grouping, filtering, ordering, superlatives, joins,
//! nesting, set ops) and the same four-level difficulty spread. Every
//! emitted SQL string round-trips through `nv-sql` and executes on the
//! database it was generated from.

use nv_ast::*;
use nv_data::{ColumnType, Database, Table, Value};
use nv_sql::{parse_sql, to_sql};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthesized benchmark input pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiderPair {
    /// Unique id within the corpus.
    pub id: usize,
    pub db_name: String,
    /// The natural-language question.
    pub nl: String,
    /// The SQL query (parseable by `nv_sql::parse_sql`).
    pub sql: String,
}

/// Query-shape weights; the defaults yield a Spider-like difficulty mix.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    pub n_pairs: usize,
    /// Probability of a two-table join (when a FK exists).
    pub p_join: f64,
    /// Probability of attaching a WHERE filter.
    pub p_filter: f64,
    /// Probability of an ORDER BY / LIMIT tail on detail queries.
    pub p_order: f64,
    /// Probability of a set-operation query.
    pub p_setop: f64,
    /// Probability of a nested IN-subquery filter.
    pub p_nested: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            n_pairs: 40,
            p_join: 0.28,
            p_filter: 0.45,
            p_order: 0.30,
            p_setop: 0.06,
            p_nested: 0.08,
        }
    }
}

/// Generator over one database.
pub struct QueryGen<'a> {
    db: &'a Database,
    rng: StdRng,
    cfg: QueryGenConfig,
}

impl<'a> QueryGen<'a> {
    pub fn new(db: &'a Database, seed: u64, cfg: QueryGenConfig) -> Self {
        QueryGen { db, rng: StdRng::seed_from_u64(seed), cfg }
    }

    /// Generate the configured number of pairs. Shapes that fail validation
    /// (unparseable/unexecutable — shouldn't happen, but guarded) are
    /// skipped and retried.
    pub fn generate(&mut self, id_base: usize) -> Vec<SpiderPair> {
        let mut out = Vec::with_capacity(self.cfg.n_pairs);
        let mut attempts = 0;
        while out.len() < self.cfg.n_pairs && attempts < self.cfg.n_pairs * 8 {
            attempts += 1;
            if let Some((nl, ast)) = self.one_query() {
                let sql = to_sql(&ast);
                // Validation: the emitted SQL must parse back and execute.
                match parse_sql(self.db, &sql) {
                    Ok(parsed) if nv_data::execute(self.db, &parsed).is_ok() => {
                        out.push(SpiderPair {
                            id: id_base + out.len(),
                            db_name: self.db.name.clone(),
                            nl,
                            sql,
                        });
                    }
                    _ => {}
                }
            }
        }
        out
    }

    fn one_query(&mut self) -> Option<(String, VisQuery)> {
        let roll: f64 = self.rng.random();
        if roll < self.cfg.p_setop {
            self.setop_query()
        } else if roll < self.cfg.p_setop + self.cfg.p_nested {
            self.nested_query()
        } else {
            let shape: f64 = self.rng.random();
            if shape < 0.45 {
                self.agg_group_query()
            } else if shape < 0.62 {
                self.global_agg_query()
            } else {
                self.detail_query()
            }
        }
    }

    // ---- table/column pickers ----

    fn pick_table(&mut self) -> &'a Table {
        let i = self.rng.random_range(0..self.db.tables.len());
        &self.db.tables[i]
    }

    fn cols_of(&self, table: &Table, ctype: ColumnType) -> Vec<String> {
        table
            .schema
            .columns
            .iter()
            .filter(|c| c.ctype == ctype)
            .filter(|c| !self.is_key(table, &c.name))
            .map(|c| c.name.clone())
            .collect()
    }

    fn is_key(&self, table: &Table, col: &str) -> bool {
        let is_pk = table
            .schema
            .primary_key
            .is_some_and(|i| table.schema.columns[i].name == col);
        let is_fk = self.db.foreign_keys.iter().any(|fk| {
            fk.from_table.eq_ignore_ascii_case(table.name()) && fk.from_column == col
        });
        is_pk || is_fk
    }

    fn pick_from<T: Clone>(&mut self, v: &[T]) -> Option<T> {
        if v.is_empty() {
            None
        } else {
            Some(v[self.rng.random_range(0..v.len())].clone())
        }
    }

    /// A non-null value actually present in the column.
    fn sample_value(&mut self, table: &Table, col: &str) -> Option<Value> {
        let idx = table.schema.column_index(col)?;
        let non_null: Vec<&Value> = table
            .rows
            .iter()
            .map(|r| &r[idx])
            .filter(|v| !v.is_null())
            .collect();
        if non_null.is_empty() {
            return None;
        }
        Some(non_null[self.rng.random_range(0..non_null.len())].clone())
    }

    // ---- query shapes ----

    /// `SELECT c1[, c2] FROM t [WHERE …] [ORDER BY q LIMIT k]`
    fn detail_query(&mut self) -> Option<(String, VisQuery)> {
        let table = self.pick_table();
        let mut cols: Vec<String> = Vec::new();
        let cats = self.cols_of(table, ColumnType::Categorical);
        let quants = self.cols_of(table, ColumnType::Quantitative);
        let temps = self.cols_of(table, ColumnType::Temporal);
        cols.extend(self.pick_from(&cats));
        if self.rng.random::<f64>() < 0.8 {
            cols.extend(self.pick_from(&quants));
        }
        if self.rng.random::<f64>() < 0.35 {
            cols.extend(self.pick_from(&temps));
        }
        if self.rng.random::<f64>() < 0.45 {
            if let Some(q2) = self.pick_from(&quants) {
                if !cols.contains(&q2) {
                    cols.push(q2);
                }
            }
        }
        // A second categorical feeds the three-variable chart shapes
        // (stacked bar, grouping line/scatter).
        if self.rng.random::<f64>() < 0.3 {
            if let Some(c2) = self.pick_from(&cats) {
                if !cols.contains(&c2) {
                    cols.push(c2);
                }
            }
        }
        if cols.len() < 2 {
            return None;
        }
        let tname = table.name().to_string();
        let mut body = QueryBody::simple(
            tname.clone(),
            cols.iter().map(|c| Attr::col(tname.clone(), c.clone())).collect(),
        );
        let mut phrases: Vec<String> = Vec::new();

        if self.rng.random::<f64>() < self.cfg.p_filter {
            if let Some((pred, phrase)) = self.make_filter(table) {
                body.filter = Some(pred);
                phrases.push(phrase);
            }
        }
        let mut tail = String::new();
        if self.rng.random::<f64>() < self.cfg.p_order {
            if let Some(ocol) = self.pick_from(&quants) {
                if self.rng.random::<f64>() < 0.5 {
                    let dir = if self.rng.random::<f64>() < 0.5 {
                        OrderDir::Desc
                    } else {
                        OrderDir::Asc
                    };
                    body.order = Some(OrderSpec {
                        attr: Attr::col(tname.clone(), ocol.clone()),
                        dir,
                    });
                    tail = format!(
                        ", sorted by {} in {} order",
                        display(&ocol),
                        if dir == OrderDir::Desc { "descending" } else { "ascending" }
                    );
                } else {
                    let k = self.rng.random_range(3..=10);
                    let dir = if self.rng.random::<f64>() < 0.6 {
                        SuperDir::Most
                    } else {
                        SuperDir::Least
                    };
                    body.superlative = Some(Superlative {
                        dir,
                        k,
                        attr: Attr::col(tname.clone(), ocol.clone()),
                    });
                    tail = format!(
                        ", for the {k} records with the {} {}",
                        if dir == SuperDir::Most { "highest" } else { "lowest" },
                        display(&ocol)
                    );
                }
            }
        }

        let verb = self.pick_from(&["Show", "List", "Give me", "What are", "Return"]).unwrap();
        let col_names = cols.iter().map(|c| display(c)).collect::<Vec<_>>().join(" and ");
        let nl = format!(
            "{verb} the {col_names} of all {}{}{}{}",
            plural(&display(&tname)),
            join_phrases(&phrases),
            tail,
            if verb.starts_with("What") { "?" } else { "." }
        );
        Some((nl, VisQuery::sql(SetQuery::simple(body))))
    }

    /// `SELECT g, AGG(q) FROM t [JOIN p] [WHERE …] GROUP BY g`
    fn agg_group_query(&mut self) -> Option<(String, VisQuery)> {
        let (table, join_info) = self.maybe_join()?;
        let tname = table.name().to_string();
        let cats = self.cols_of(table, ColumnType::Categorical);
        let group_col = self.pick_from(&cats)?;
        let quants = self.cols_of(table, ColumnType::Quantitative);

        let (agg, agg_attr, agg_phrase): (AggFunc, Attr, String) =
            if quants.is_empty() || self.rng.random::<f64>() < 0.4 {
                (
                    AggFunc::Count,
                    Attr::agg(AggFunc::Count, tname.clone(), "*"),
                    format!("the number of {}", plural(&display(&tname))),
                )
            } else {
                let q = self.pick_from(&quants)?;
                let agg = self
                    .pick_from(&[AggFunc::Avg, AggFunc::Sum, AggFunc::Max, AggFunc::Min])
                    .unwrap();
                let word = match agg {
                    AggFunc::Avg => "average",
                    AggFunc::Sum => "total",
                    AggFunc::Max => "maximum",
                    AggFunc::Min => "minimum",
                    _ => unreachable!(),
                };
                (
                    agg,
                    Attr::agg(agg, tname.clone(), q.clone()),
                    format!("the {word} {}", display(&q)),
                )
            };
        let _ = agg;

        let mut body = QueryBody::simple(
            tname.clone(),
            vec![Attr::col(tname.clone(), group_col.clone()), agg_attr.clone()],
        );
        body.group = Some(GroupSpec::by(ColumnRef::new(tname.clone(), group_col.clone())));

        let mut phrases = Vec::new();
        if let Some((ptable, jc, pfilter)) = join_info {
            body.from.push(ptable.clone());
            body.joins.push(jc);
            if let Some((pred, phrase)) = pfilter {
                body.filter = Predicate::and_opt(body.filter.take(), Some(pred));
                phrases.push(phrase);
            }
        }
        if self.rng.random::<f64>() < self.cfg.p_filter {
            if let Some((pred, phrase)) = self.make_filter(table) {
                body.filter = Predicate::and_opt(body.filter.take(), Some(pred));
                phrases.push(phrase);
            }
        }
        // Occasionally order the groups by the aggregate.
        let mut tail = String::new();
        if self.rng.random::<f64>() < 0.35 {
            let dir = if self.rng.random::<f64>() < 0.6 { OrderDir::Desc } else { OrderDir::Asc };
            body.order = Some(OrderSpec { attr: agg_attr, dir });
            tail = format!(
                ", ordered from {}",
                if dir == OrderDir::Desc { "most to least" } else { "least to most" }
            );
        }

        let opener = self
            .pick_from(&["What is", "Find", "Compute", "Tell me"])
            .unwrap();
        let nl = format!(
            "{opener} {agg_phrase} for each {} {}{}{}{}",
            display(&group_col),
            if body.from.len() > 1 {
                format!("of the {} records", display(&tname))
            } else {
                format!("in {}", display(&tname))
            },
            join_phrases(&phrases),
            tail,
            if opener.starts_with("What") { "?" } else { "." }
        );
        Some((nl, VisQuery::sql(SetQuery::simple(body))))
    }

    /// `SELECT AGG(q)[, AGG(q2)] FROM t [WHERE …]`
    fn global_agg_query(&mut self) -> Option<(String, VisQuery)> {
        let table = self.pick_table();
        let tname = table.name().to_string();
        let quants = self.cols_of(table, ColumnType::Quantitative);
        let q = self.pick_from(&quants)?;
        let agg = self
            .pick_from(&[AggFunc::Avg, AggFunc::Sum, AggFunc::Max, AggFunc::Min, AggFunc::Count])
            .unwrap();
        let mut select = vec![Attr::agg(agg, tname.clone(), q.clone())];
        let mut extra_phrase = String::new();
        if self.rng.random::<f64>() < 0.4 {
            if let Some(q2) = self.pick_from(&quants) {
                let agg2 = self.pick_from(&[AggFunc::Avg, AggFunc::Max, AggFunc::Min]).unwrap();
                select.push(Attr::agg(agg2, tname.clone(), q2.clone()));
                extra_phrase = format!(
                    " and the {} {}",
                    agg_word(agg2),
                    display(&q2)
                );
            }
        }
        let mut body = QueryBody::simple(tname.clone(), select);
        let mut phrases = Vec::new();
        if self.rng.random::<f64>() < self.cfg.p_filter {
            if let Some((pred, phrase)) = self.make_filter(table) {
                body.filter = Some(pred);
                phrases.push(phrase);
            }
        }
        let nl = format!(
            "What is the {} {}{} across all {}{}?",
            agg_word(agg),
            display(&q),
            extra_phrase,
            plural(&display(&tname)),
            join_phrases(&phrases),
        );
        Some((nl, VisQuery::sql(SetQuery::simple(body))))
    }

    /// `SELECT c, COUNT(*) … UNION/INTERSECT/EXCEPT SELECT c, COUNT(*) …`
    fn setop_query(&mut self) -> Option<(String, VisQuery)> {
        let table = self.pick_table();
        let tname = table.name().to_string();
        let cats = self.cols_of(table, ColumnType::Categorical);
        let col = self.pick_from(&cats)?;
        let (f1, p1) = self.make_filter(table)?;
        let (f2, p2) = self.make_filter(table)?;
        if p1 == p2 {
            return None;
        }
        let mk = |f: Predicate| {
            let mut b = QueryBody::simple(tname.clone(), vec![Attr::col(tname.clone(), col.clone())]);
            b.filter = Some(f);
            b
        };
        let op = self
            .pick_from(&[SetOp::Union, SetOp::Intersect, SetOp::Except])
            .unwrap();
        let connective = match op {
            SetOp::Union => format!("{p1}, together with those {}", p2.trim_start()),
            SetOp::Intersect => format!("{p1} that also are records {}", p2.trim_start()),
            SetOp::Except => format!("{p1}, excluding those {}", p2.trim_start()),
        };
        let nl = format!(
            "List the {} of {}{}.",
            display(&col),
            plural(&display(&tname)),
            connective
        );
        let q = VisQuery::sql(SetQuery::Compound {
            op,
            left: Box::new(mk(f1)),
            right: Box::new(mk(f2)),
        });
        Some((nl, q))
    }

    /// `SELECT … FROM child WHERE fk IN (SELECT pk FROM parent WHERE …)`
    fn nested_query(&mut self) -> Option<(String, VisQuery)> {
        let fk = self.pick_from(&self.db.foreign_keys.clone())?;
        let child = self.db.table(&fk.from_table)?;
        let parent = self.db.table(&fk.to_table)?;
        let (ppred, pphrase) = self.make_filter(parent)?;
        let cname = child.name().to_string();
        let cats = self.cols_of(child, ColumnType::Categorical);
        let quants = self.cols_of(child, ColumnType::Quantitative);
        let mut select = Vec::new();
        select.extend(self.pick_from(&cats).map(|c| Attr::col(cname.clone(), c)));
        select.extend(self.pick_from(&quants).map(|c| Attr::col(cname.clone(), c)));
        if select.is_empty() {
            return None;
        }
        let mut sub = QueryBody::simple(
            parent.name().to_string(),
            vec![Attr::col(parent.name().to_string(), fk.to_column.clone())],
        );
        sub.filter = Some(ppred);
        let mut body = QueryBody::simple(cname.clone(), select.clone());
        body.filter = Some(Predicate::In {
            attr: Attr::col(cname.clone(), fk.from_column.clone()),
            rhs: Operand::Subquery(Box::new(SetQuery::simple(sub))),
            negated: false,
        });
        let col_names = select
            .iter()
            .map(|a| display(&a.col.column))
            .collect::<Vec<_>>()
            .join(" and ");
        let nl = format!(
            "Show the {col_names} of {} linked to {}{}.",
            plural(&display(&cname)),
            plural(&display(parent.name())),
            pphrase
        );
        Some((nl, VisQuery::sql(SetQuery::simple(body))))
    }

    /// Maybe pick a (child table, parent join) pair; otherwise a bare table.
    /// When joining, a parent-side filter (predicate + NL phrase) may ride
    /// along — valid on the child body because filters are evaluated
    /// post-join.
    #[allow(clippy::type_complexity)]
    fn maybe_join(
        &mut self,
    ) -> Option<(&'a Table, Option<(String, JoinCond, Option<(Predicate, String)>)>)> {
        if self.rng.random::<f64>() < self.cfg.p_join && !self.db.foreign_keys.is_empty() {
            let fk = self.pick_from(&self.db.foreign_keys.clone())?;
            let child = self.db.table(&fk.from_table)?;
            let jc = JoinCond {
                left: ColumnRef::new(fk.from_table.clone(), fk.from_column.clone()),
                right: ColumnRef::new(fk.to_table.clone(), fk.to_column.clone()),
            };
            let parent = self.db.table(&fk.to_table)?;
            let pfilter = if self.rng.random::<f64>() < 0.5 {
                self.make_filter(parent)
            } else {
                None
            };
            Some((child, Some((fk.to_table.clone(), jc, pfilter))))
        } else {
            Some((self.pick_table(), None))
        }
    }

    /// Build a one- or two-leaf filter over a table, with its NL phrase.
    fn make_filter(&mut self, table: &Table) -> Option<(Predicate, String)> {
        let (mut pred, mut phrase) = self.one_condition(table)?;
        if self.rng.random::<f64>() < 0.22 {
            if let Some((p2, ph2)) = self.one_condition(table) {
                if ph2 != phrase {
                    let use_or = self.rng.random::<f64>() < 0.3;
                    phrase = format!(
                        "{phrase} {} {}",
                        if use_or { "or" } else { "and" },
                        ph2.trim_start_matches(' ')
                    );
                    pred = if use_or {
                        Predicate::Or(Box::new(pred), Box::new(p2))
                    } else {
                        Predicate::And(Box::new(pred), Box::new(p2))
                    };
                }
            }
        }
        Some((pred, phrase))
    }

    fn one_condition(&mut self, table: &Table) -> Option<(Predicate, String)> {
        let tname = table.name().to_string();
        let candidates: Vec<(String, ColumnType)> = table
            .schema
            .columns
            .iter()
            .filter(|c| !self.is_key(table, &c.name))
            .map(|c| (c.name.clone(), c.ctype))
            .collect();
        let (col, ctype) = self.pick_from(&candidates)?;
        let value = self.sample_value(table, &col)?;
        let attr = Attr::col(tname, col.clone());
        let dcol = display(&col);
        match ctype {
            ColumnType::Categorical => {
                let lit = value_literal(&value);
                if self.rng.random::<f64>() < 0.15 {
                    if let Literal::Text(s) = &lit {
                        if s.len() > 3 {
                            let prefix = &s[..s.len().min(4)];
                            return Some((
                                Predicate::Like {
                                    attr,
                                    pattern: format!("{prefix}%"),
                                    negated: false,
                                },
                                format!(" whose {dcol} starts with '{prefix}'"),
                            ));
                        }
                    }
                }
                let neg = self.rng.random::<f64>() < 0.12;
                let op = if neg { CmpOp::Ne } else { CmpOp::Eq };
                let word = if neg { "is not" } else { "is" };
                Some((
                    Predicate::Cmp { op, attr, rhs: Operand::Lit(lit.clone()) },
                    format!(" whose {dcol} {word} {}", lit_phrase(&lit)),
                ))
            }
            ColumnType::Quantitative => {
                let lit = value_literal(&value);
                if self.rng.random::<f64>() < 0.18 {
                    let v = value.as_f64().unwrap_or(0.0);
                    let lo = Literal::Float((v * 0.5 * 100.0).round() / 100.0);
                    let hi = Literal::Float((v * 1.5 * 100.0).round() / 100.0 + 1.0);
                    return Some((
                        Predicate::Between {
                            attr,
                            low: Operand::Lit(lo.clone()),
                            high: Operand::Lit(hi.clone()),
                        },
                        format!(
                            " whose {dcol} is between {} and {}",
                            lit_phrase(&lo),
                            lit_phrase(&hi)
                        ),
                    ));
                }
                let gt = self.rng.random::<f64>() < 0.5;
                let (op, word) = if gt {
                    (CmpOp::Gt, self.pick_from(&["greater than", "above", "more than"]).unwrap())
                } else {
                    (CmpOp::Lt, self.pick_from(&["less than", "below", "under"]).unwrap())
                };
                Some((
                    Predicate::Cmp { op, attr, rhs: Operand::Lit(lit.clone()) },
                    format!(" whose {dcol} is {word} {}", lit_phrase(&lit)),
                ))
            }
            ColumnType::Temporal => {
                let lit = Literal::Text(value.label());
                let after = self.rng.random::<f64>() < 0.5;
                let op = if after { CmpOp::Ge } else { CmpOp::Le };
                Some((
                    Predicate::Cmp { op, attr, rhs: Operand::Lit(lit.clone()) },
                    format!(
                        " whose {dcol} is {} {}",
                        if after { "on or after" } else { "on or before" },
                        lit_phrase(&lit)
                    ),
                ))
            }
        }
    }
}

fn value_literal(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Bool(b) => Literal::Bool(*b),
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Text(s) => Literal::Text(s.clone()),
        Value::Time(t) => Literal::Text(t.to_string()),
    }
}

fn lit_phrase(l: &Literal) -> String {
    // Delegate to `to_token`: it quotes text and doubles embedded quotes,
    // keeping generated NL spans parseable by the V-slot extractor.
    l.to_token()
}

fn agg_word(a: AggFunc) -> &'static str {
    match a {
        AggFunc::Avg => "average",
        AggFunc::Sum => "total",
        AggFunc::Max => "maximum",
        AggFunc::Min => "minimum",
        AggFunc::Count => "number of",
        AggFunc::None => "",
    }
}

/// Human display name of an identifier: underscores become spaces.
pub fn display(ident: &str) -> String {
    ident.replace('_', " ")
}

/// Naive pluralizer for table names in NL.
pub fn plural(word: &str) -> String {
    if word.ends_with('s') {
        word.to_string()
    } else if let Some(stem) = word.strip_suffix('y') {
        format!("{stem}ies")
    } else {
        format!("{word}s")
    }
}

fn join_phrases(phrases: &[String]) -> String {
    phrases.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate_database;
    use crate::template::domain_templates;

    fn db() -> Database {
        generate_database(&domain_templates()[0], 0, 42)
    }

    #[test]
    fn generates_requested_count() {
        let d = db();
        let mut g = QueryGen::new(&d, 1, QueryGenConfig { n_pairs: 30, ..Default::default() });
        let pairs = g.generate(100);
        assert_eq!(pairs.len(), 30);
        assert_eq!(pairs[0].id, 100);
        assert_eq!(pairs[29].id, 129);
    }

    #[test]
    fn pairs_parse_and_execute() {
        let d = db();
        let mut g = QueryGen::new(&d, 2, QueryGenConfig { n_pairs: 50, ..Default::default() });
        for p in g.generate(0) {
            let ast = parse_sql(&d, &p.sql).unwrap_or_else(|e| panic!("{}: {e}", p.sql));
            nv_data::execute(&d, &ast).unwrap_or_else(|e| panic!("{}: {e}", p.sql));
            assert!(!p.nl.is_empty());
            assert!(p.nl.len() > 15, "too-short NL: {}", p.nl);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = db();
        let cfg = QueryGenConfig { n_pairs: 10, ..Default::default() };
        let a = QueryGen::new(&d, 7, cfg.clone()).generate(0);
        let b = QueryGen::new(&d, 7, cfg.clone()).generate(0);
        assert_eq!(a, b);
        let c = QueryGen::new(&d, 8, cfg).generate(0);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_covers_clause_space() {
        let d = db();
        let cfg = QueryGenConfig { n_pairs: 120, ..Default::default() };
        let pairs = QueryGen::new(&d, 3, cfg).generate(0);
        let any = |f: &dyn Fn(&str) -> bool| pairs.iter().any(|p| f(&p.sql));
        assert!(any(&|s| s.contains("GROUP BY")), "no grouping");
        assert!(any(&|s| s.contains("WHERE")), "no filters");
        assert!(any(&|s| s.contains("ORDER BY")), "no ordering");
        assert!(any(&|s| s.contains("LIMIT")), "no superlative");
        assert!(any(&|s| s.contains("JOIN")), "no joins");
        assert!(
            any(&|s| s.contains("UNION") || s.contains("INTERSECT") || s.contains("EXCEPT")),
            "no set ops"
        );
        assert!(any(&|s| s.contains("IN (SELECT")), "no nesting");
        assert!(any(&|s| s.contains("AVG(") || s.contains("SUM(")), "no numeric aggs");
    }

    #[test]
    fn nl_mentions_aggregation_words() {
        let d = db();
        let cfg = QueryGenConfig { n_pairs: 60, ..Default::default() };
        let pairs = QueryGen::new(&d, 4, cfg).generate(0);
        let with_group: Vec<&SpiderPair> =
            pairs.iter().filter(|p| p.sql.contains("GROUP BY")).collect();
        assert!(!with_group.is_empty());
        for p in with_group {
            let nl = p.nl.to_lowercase();
            assert!(
                nl.contains("each") || nl.contains("per") || nl.contains("number of"),
                "grouping not verbalized: {}",
                p.nl
            );
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(display("credit_limit"), "credit limit");
        assert_eq!(plural("player"), "players");
        assert_eq!(plural("class"), "class");
        assert_eq!(plural("company"), "companies");
    }
}
