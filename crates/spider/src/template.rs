//! Schema templates: the vocabulary from which synthetic cross-domain
//! databases are generated.
//!
//! The real Spider benchmark spans 200 databases over 138 domains; nvBench
//! keeps 153 databases over 105 domains (Table 2). Since Spider itself is an
//! external download, we regenerate databases from **domain templates**:
//! each names a domain (Sport, Customer, School, …, matching the paper's
//! top-5 list), a handful of related tables, realistic typed columns and the
//! foreign keys connecting them. The generator then instantiates every
//! template many times with varied data (and table-count jitter) to reach
//! Spider-scale coverage.

/// How a column's data is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColSpec {
    /// Integer primary key (dense, unique).
    Pk,
    /// Foreign key to the named table's primary key.
    Fk(&'static str),
    /// Categorical with the given value pool.
    Category(&'static [&'static str]),
    /// Human-ish names from a pool.
    Name(Pool),
    /// Quantitative, distribution chosen per the Figure-9(a) mix.
    Quant(QuantKind),
    /// Uniform integers in [lo, hi].
    IntRange(i64, i64),
    /// Timestamps with dates in [start_year, end_year].
    Temporal(i32, i32),
    /// Booleans as yes/no categories.
    Flag,
}

/// Name pools for text columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    Person,
    City,
    Org,
    Product,
}

/// Scale/rounding profile for quantitative columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantKind {
    /// Prices, budgets, salaries — positive, right-skewed, 2 decimals.
    Money,
    /// Counts of things — non-negative integers.
    Count,
    /// Human ages — near-normal integers.
    Age,
    /// Scores/percentages — bounded floats.
    Score,
    /// Physical measures (distance, weight, duration) — positive floats.
    Measure,
}

/// Typical row-count regime of a table (Figure 8(b): most tables hold 5–100
/// rows, with a long tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowRegime {
    /// 3–15 rows (lookup tables).
    Tiny,
    /// 5–100 rows (the bulk).
    Small,
    /// 100–2,000 rows (fact tables; the paper's tail reaches 183,978 — we
    /// cap lower to keep full-corpus runs fast, noted in EXPERIMENTS.md).
    Large,
}

/// One table in a domain template.
#[derive(Debug, Clone)]
pub struct TableTemplate {
    pub name: &'static str,
    pub columns: Vec<(&'static str, ColSpec)>,
    pub rows: RowRegime,
}

/// One domain template.
#[derive(Debug, Clone)]
pub struct DomainTemplate {
    pub domain: &'static str,
    pub tables: Vec<TableTemplate>,
}

fn t(
    name: &'static str,
    rows: RowRegime,
    columns: Vec<(&'static str, ColSpec)>,
) -> TableTemplate {
    TableTemplate { name, columns, rows }
}

/// The full template library: 15 domains, 61 tables.
pub fn domain_templates() -> Vec<DomainTemplate> {
    use ColSpec::*;
    use QuantKind::*;
    use RowRegime::*;

    vec![
        DomainTemplate {
            domain: "Sport",
            tables: vec![
                t("team", Tiny, vec![
                    ("team_id", Pk),
                    ("team_name", Name(Pool::Org)),
                    ("city", Name(Pool::City)),
                    ("founded", Temporal(1900, 2000)),
                    ("budget", Quant(Money)),
                ]),
                t("player", Small, vec![
                    ("player_id", Pk),
                    ("player_name", Name(Pool::Person)),
                    ("team_id", Fk("team")),
                    ("position", Category(&["guard", "forward", "center", "keeper", "winger"])),
                    ("age", Quant(Age)),
                    ("salary", Quant(Money)),
                    ("goals", Quant(Count)),
                ]),
                t("game", Large, vec![
                    ("game_id", Pk),
                    ("home_team", Fk("team")),
                    ("game_date", Temporal(2010, 2021)),
                    ("attendance", Quant(Count)),
                    ("score", Quant(Score)),
                    ("season", Category(&["spring", "summer", "fall", "winter"])),
                ]),
                t("stadium", Tiny, vec![
                    ("stadium_id", Pk),
                    ("stadium_name", Name(Pool::Org)),
                    ("capacity", Quant(Count)),
                    ("opened", Temporal(1950, 2015)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Customer",
            tables: vec![
                t("customer", Small, vec![
                    ("customer_id", Pk),
                    ("customer_name", Name(Pool::Person)),
                    ("city", Name(Pool::City)),
                    ("segment", Category(&["consumer", "corporate", "home_office"])),
                    ("credit_limit", Quant(Money)),
                    ("signup_date", Temporal(2012, 2021)),
                ]),
                t("account", Small, vec![
                    ("account_id", Pk),
                    ("customer_id", Fk("customer")),
                    ("balance", Quant(Money)),
                    ("account_type", Category(&["checking", "savings", "credit"])),
                    ("opened", Temporal(2012, 2021)),
                ]),
                t("payment", Large, vec![
                    ("payment_id", Pk),
                    ("account_id", Fk("account")),
                    ("amount", Quant(Money)),
                    ("method", Category(&["card", "cash", "transfer", "cheque"])),
                    ("paid_at", Temporal(2015, 2021)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "School",
            tables: vec![
                t("school", Tiny, vec![
                    ("school_id", Pk),
                    ("school_name", Name(Pool::Org)),
                    ("city", Name(Pool::City)),
                    ("enrollment", Quant(Count)),
                    ("founded", Temporal(1900, 1995)),
                ]),
                t("teacher", Small, vec![
                    ("teacher_id", Pk),
                    ("teacher_name", Name(Pool::Person)),
                    ("school_id", Fk("school")),
                    ("subject", Category(&["math", "science", "history", "art", "music"])),
                    ("salary", Quant(Money)),
                    ("years_experience", Quant(Count)),
                ]),
                t("class", Small, vec![
                    ("class_id", Pk),
                    ("teacher_id", Fk("teacher")),
                    ("grade_level", IntRange(1, 12)),
                    ("class_size", Quant(Count)),
                    ("room", IntRange(100, 399)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Shop",
            tables: vec![
                t("shop", Tiny, vec![
                    ("shop_id", Pk),
                    ("shop_name", Name(Pool::Org)),
                    ("district", Name(Pool::City)),
                    ("open_year", Temporal(1990, 2020)),
                    ("staff_count", Quant(Count)),
                ]),
                t("product", Small, vec![
                    ("product_id", Pk),
                    ("product_name", Name(Pool::Product)),
                    ("category", Category(&["electronics", "clothing", "food", "toys", "books"])),
                    ("price", Quant(Money)),
                    ("stock", Quant(Count)),
                ]),
                t("sale", Large, vec![
                    ("sale_id", Pk),
                    ("shop_id", Fk("shop")),
                    ("product_id", Fk("product")),
                    ("quantity", Quant(Count)),
                    ("total", Quant(Money)),
                    ("sold_at", Temporal(2018, 2021)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Student",
            tables: vec![
                t("student", Small, vec![
                    ("student_id", Pk),
                    ("student_name", Name(Pool::Person)),
                    ("major", Category(&["cs", "math", "physics", "biology", "history", "economics"])),
                    ("age", Quant(Age)),
                    ("gpa", Quant(Score)),
                    ("enrolled", Temporal(2015, 2021)),
                ]),
                t("course", Tiny, vec![
                    ("course_id", Pk),
                    ("course_name", Name(Pool::Org)),
                    ("credits", IntRange(1, 5)),
                    ("department", Category(&["cs", "math", "physics", "biology", "history"])),
                ]),
                t("enrollment", Large, vec![
                    ("enroll_id", Pk),
                    ("student_id", Fk("student")),
                    ("course_id", Fk("course")),
                    ("grade", Quant(Score)),
                    ("semester", Category(&["fall", "spring", "summer"])),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Flight",
            tables: vec![
                t("airport", Tiny, vec![
                    ("airport_id", Pk),
                    ("airport_name", Name(Pool::Org)),
                    ("city", Name(Pool::City)),
                    ("elevation", Quant(Measure)),
                ]),
                t("airline", Tiny, vec![
                    ("airline_id", Pk),
                    ("airline_name", Name(Pool::Org)),
                    ("fleet_size", Quant(Count)),
                    ("founded", Temporal(1940, 2010)),
                ]),
                t("flight", Large, vec![
                    ("flight_id", Pk),
                    ("airline_id", Fk("airline")),
                    ("origin", Fk("airport")),
                    ("destination", Category(&["north", "south", "east", "west", "central"])),
                    ("price", Quant(Money)),
                    ("distance", Quant(Measure)),
                    ("departure", Temporal(2019, 2021)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "College",
            tables: vec![
                t("department", Tiny, vec![
                    ("dept_id", Pk),
                    ("dept_name", Category(&["engineering", "arts", "science", "law", "medicine"])),
                    ("budget", Quant(Money)),
                    ("head_count", Quant(Count)),
                ]),
                t("faculty", Small, vec![
                    ("faculty_id", Pk),
                    ("faculty_name", Name(Pool::Person)),
                    ("dept_id", Fk("department")),
                    ("sex", Category(&["male", "female"])),
                    ("rank", Category(&["assistant", "associate", "full"])),
                    ("salary", Quant(Money)),
                    ("hired", Temporal(1990, 2021)),
                ]),
                t("grant_award", Small, vec![
                    ("grant_id", Pk),
                    ("faculty_id", Fk("faculty")),
                    ("amount", Quant(Money)),
                    ("awarded", Temporal(2005, 2021)),
                    ("agency", Category(&["nsf", "nih", "doe", "industry"])),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Hospital",
            tables: vec![
                t("physician", Small, vec![
                    ("physician_id", Pk),
                    ("physician_name", Name(Pool::Person)),
                    ("specialty", Category(&["cardiology", "oncology", "pediatrics", "surgery", "radiology"])),
                    ("salary", Quant(Money)),
                    ("years_practice", Quant(Count)),
                ]),
                t("patient", Small, vec![
                    ("patient_id", Pk),
                    ("patient_name", Name(Pool::Person)),
                    ("age", Quant(Age)),
                    ("blood_type", Category(&["A", "B", "AB", "O"])),
                    ("admitted", Temporal(2018, 2021)),
                ]),
                t("appointment", Large, vec![
                    ("appt_id", Pk),
                    ("physician_id", Fk("physician")),
                    ("patient_id", Fk("patient")),
                    ("scheduled", Temporal(2019, 2021)),
                    ("cost", Quant(Money)),
                    ("status", Category(&["completed", "cancelled", "no_show"])),
                ]),
            ],
        },
        DomainTemplate {
            domain: "TvShow",
            tables: vec![
                t("channel", Tiny, vec![
                    ("channel_id", Pk),
                    ("channel_name", Name(Pool::Org)),
                    ("share", Quant(Score)),
                    ("launched", Temporal(1980, 2015)),
                ]),
                t("program", Small, vec![
                    ("program_id", Pk),
                    ("program_name", Name(Pool::Product)),
                    ("channel_id", Fk("channel")),
                    ("genre", Category(&["drama", "comedy", "news", "sports", "documentary"])),
                    ("rating", Quant(Score)),
                    ("episodes", Quant(Count)),
                ]),
                t("broadcast", Large, vec![
                    ("broadcast_id", Pk),
                    ("program_id", Fk("program")),
                    ("air_date", Temporal(2015, 2021)),
                    ("viewers", Quant(Count)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Government",
            tables: vec![
                t("region", Tiny, vec![
                    ("region_id", Pk),
                    ("region_name", Name(Pool::City)),
                    ("population", Quant(Count)),
                    ("area", Quant(Measure)),
                ]),
                t("official", Small, vec![
                    ("official_id", Pk),
                    ("official_name", Name(Pool::Person)),
                    ("region_id", Fk("region")),
                    ("party", Category(&["red", "blue", "green", "independent"])),
                    ("age", Quant(Age)),
                    ("elected", Temporal(2000, 2021)),
                ]),
                t("budget_item", Small, vec![
                    ("item_id", Pk),
                    ("region_id", Fk("region")),
                    ("sector", Category(&["education", "health", "transport", "defense", "culture"])),
                    ("amount", Quant(Money)),
                    ("fiscal_year", IntRange(2010, 2021)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Music",
            tables: vec![
                t("artist", Small, vec![
                    ("artist_id", Pk),
                    ("artist_name", Name(Pool::Person)),
                    ("genre", Category(&["rock", "pop", "jazz", "classical", "folk", "electronic"])),
                    ("debut", Temporal(1970, 2018)),
                    ("followers", Quant(Count)),
                ]),
                t("album", Small, vec![
                    ("album_id", Pk),
                    ("album_name", Name(Pool::Product)),
                    ("artist_id", Fk("artist")),
                    ("released", Temporal(1980, 2021)),
                    ("sales", Quant(Count)),
                    ("rating", Quant(Score)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Employee",
            tables: vec![
                t("company", Tiny, vec![
                    ("company_id", Pk),
                    ("company_name", Name(Pool::Org)),
                    ("industry", Category(&["tech", "finance", "retail", "energy", "media"])),
                    ("revenue", Quant(Money)),
                    ("founded", Temporal(1950, 2015)),
                ]),
                t("employee", Small, vec![
                    ("employee_id", Pk),
                    ("employee_name", Name(Pool::Person)),
                    ("company_id", Fk("company")),
                    ("title", Category(&["engineer", "manager", "analyst", "director", "intern"])),
                    ("salary", Quant(Money)),
                    ("age", Quant(Age)),
                    ("hired", Temporal(2005, 2021)),
                ]),
                t("evaluation", Small, vec![
                    ("eval_id", Pk),
                    ("employee_id", Fk("employee")),
                    ("year", IntRange(2015, 2021)),
                    ("score", Quant(Score)),
                    ("bonus", Quant(Money)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Restaurant",
            tables: vec![
                t("restaurant", Small, vec![
                    ("restaurant_id", Pk),
                    ("restaurant_name", Name(Pool::Org)),
                    ("cuisine", Category(&["italian", "chinese", "mexican", "indian", "french"])),
                    ("city", Name(Pool::City)),
                    ("rating", Quant(Score)),
                    ("seats", Quant(Count)),
                ]),
                t("dish", Small, vec![
                    ("dish_id", Pk),
                    ("dish_name", Name(Pool::Product)),
                    ("restaurant_id", Fk("restaurant")),
                    ("price", Quant(Money)),
                    ("calories", Quant(Measure)),
                    ("vegetarian", Flag),
                ]),
                t("review", Large, vec![
                    ("review_id", Pk),
                    ("restaurant_id", Fk("restaurant")),
                    ("stars", IntRange(1, 5)),
                    ("reviewed", Temporal(2016, 2021)),
                    ("helpful_votes", Quant(Count)),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Weather",
            tables: vec![
                t("station", Tiny, vec![
                    ("station_id", Pk),
                    ("station_name", Name(Pool::City)),
                    ("elevation", Quant(Measure)),
                    ("installed", Temporal(1990, 2015)),
                ]),
                t("reading", Large, vec![
                    ("reading_id", Pk),
                    ("station_id", Fk("station")),
                    ("recorded", Temporal(2018, 2021)),
                    ("temperature", Quant(Measure)),
                    ("rainfall", Quant(Measure)),
                    ("condition", Category(&["sunny", "cloudy", "rain", "snow", "fog"])),
                ]),
            ],
        },
        DomainTemplate {
            domain: "Library",
            tables: vec![
                t("branch", Tiny, vec![
                    ("branch_id", Pk),
                    ("branch_name", Name(Pool::Org)),
                    ("city", Name(Pool::City)),
                    ("opened", Temporal(1960, 2010)),
                    ("collection_size", Quant(Count)),
                ]),
                t("book", Small, vec![
                    ("book_id", Pk),
                    ("title", Name(Pool::Product)),
                    ("branch_id", Fk("branch")),
                    ("genre", Category(&["fiction", "nonfiction", "mystery", "scifi", "poetry"])),
                    ("pages", Quant(Count)),
                    ("published", Temporal(1950, 2021)),
                ]),
                t("loan", Large, vec![
                    ("loan_id", Pk),
                    ("book_id", Fk("book")),
                    ("borrowed", Temporal(2019, 2021)),
                    ("days_out", Quant(Count)),
                    ("late_fee", Quant(Money)),
                ]),
            ],
        },
    ]
}

/// Foreign keys implied by the `Fk` column specs of a template.
pub fn template_fks(tpl: &DomainTemplate) -> Vec<(&'static str, &'static str, &'static str)> {
    let mut out = Vec::new();
    for table in &tpl.tables {
        for (col, spec) in &table.columns {
            if let ColSpec::Fk(target) = spec {
                out.push((table.name, *col, *target));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn templates_are_well_formed() {
        let tpls = domain_templates();
        assert!(tpls.len() >= 15, "need a rich domain library");
        let mut domains = HashSet::new();
        for tpl in &tpls {
            assert!(domains.insert(tpl.domain), "duplicate domain {}", tpl.domain);
            let names: HashSet<&str> = tpl.tables.iter().map(|t| t.name).collect();
            assert_eq!(names.len(), tpl.tables.len(), "duplicate table in {}", tpl.domain);
            for table in &tpl.tables {
                // Exactly one PK, first column.
                let pks = table
                    .columns
                    .iter()
                    .filter(|(_, s)| *s == ColSpec::Pk)
                    .count();
                assert_eq!(pks, 1, "{}.{} needs one pk", tpl.domain, table.name);
                assert_eq!(table.columns[0].1, ColSpec::Pk, "pk must be first");
                // Column names unique.
                let cols: HashSet<&str> = table.columns.iter().map(|(n, _)| *n).collect();
                assert_eq!(cols.len(), table.columns.len());
                // FK targets exist in the same domain.
                for (_, spec) in &table.columns {
                    if let ColSpec::Fk(target) = spec {
                        assert!(names.contains(target), "{} missing fk target {target}", table.name);
                    }
                }
                // At least 2 columns (paper min), at most 48 (paper max).
                assert!((2..=48).contains(&table.columns.len()));
            }
        }
    }

    #[test]
    fn every_domain_has_a_categorical_and_quantitative_column() {
        for tpl in domain_templates() {
            let mut has_cat = false;
            let mut has_quant = false;
            for table in &tpl.tables {
                for (_, s) in &table.columns {
                    match s {
                        ColSpec::Category(_) | ColSpec::Name(_) | ColSpec::Flag => has_cat = true,
                        ColSpec::Quant(_) | ColSpec::IntRange(..) => has_quant = true,
                        _ => {}
                    }
                }
            }
            assert!(has_cat && has_quant, "{} lacks C/Q mix", tpl.domain);
        }
    }

    #[test]
    fn fks_extracted() {
        let tpls = domain_templates();
        let sport = tpls.iter().find(|t| t.domain == "Sport").unwrap();
        let fks = template_fks(sport);
        assert!(fks.contains(&("player", "team_id", "team")));
        assert!(fks.contains(&("game", "home_team", "team")));
    }

    #[test]
    fn category_pools_are_non_trivial() {
        for tpl in domain_templates() {
            for table in &tpl.tables {
                for (name, s) in &table.columns {
                    if let ColSpec::Category(vals) = s {
                        assert!(vals.len() >= 2, "{}.{name} pool too small", table.name);
                        let set: HashSet<_> = vals.iter().collect();
                        assert_eq!(set.len(), vals.len(), "{}.{name} dup values", table.name);
                    }
                }
            }
        }
    }
}
