//! The §4.6 COVID-19 case study, rebuilt synthetically.
//!
//! The paper tests seq2vis on a COVID-19 table with schema
//! `(Date, Country, Confirmed, Active_Cases, Recovered, Deaths, Daily_Cases)`
//! against six expert-written NL queries inspired by the JHU dashboard;
//! five succeed and one fails (it says "until today", which the model cannot
//! ground to a date). We regenerate the dataset with plausible epidemic
//! curves and carry the same six queries with gold VIS trees.

use nv_ast::tokens::parse_vql_str;
use nv_ast::VisQuery;
use nv_data::{Column, Database, Table, TableSchema, Timestamp, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One case-study query.
#[derive(Debug, Clone)]
pub struct CovidCase {
    pub nl: String,
    /// The gold VIS tree.
    pub gold: VisQuery,
    /// Whether the paper expects translation to fail (the "until today"
    /// query of Figure 19-B(3)).
    pub expect_fail: bool,
}

const COUNTRIES: &[&str] = &["usa", "india", "brazil", "france", "turkey", "russia"];

/// Build the synthetic COVID-19 database: one row per (country, day) over
/// 2020-01-22 … 2020-09-13 (the paper's case study ran in September 2020).
pub fn covid_database(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = TableSchema {
        name: "covid".into(),
        columns: vec![
            Column::temporal("date"),
            Column::categorical("country"),
            Column::quantitative("confirmed"),
            Column::quantitative("active_cases"),
            Column::quantitative("recovered"),
            Column::quantitative("deaths"),
            Column::quantitative("daily_cases"),
        ],
        primary_key: None,
    };
    let mut table = Table::new(schema);

    let start = Timestamp::date(2020, 1, 22);
    let days = 235; // through 2020-09-12
    for (ci, country) in COUNTRIES.iter().enumerate() {
        // Logistic growth with country-specific scale and onset.
        let scale: f64 = 200_000.0 * (ci as f64 + 1.0) * rng.random_range(0.6..1.4);
        let onset: f64 = rng.random_range(20.0..70.0);
        let rate: f64 = rng.random_range(0.06..0.12);
        let mut prev_confirmed = 0.0;
        for d in 0..days {
            let t = d as f64;
            let confirmed = scale / (1.0 + ((onset - t) * rate).exp());
            let daily = (confirmed - prev_confirmed).max(0.0)
                * rng.random_range(0.8..1.2);
            prev_confirmed = confirmed;
            let deaths: f64 = confirmed * rng.random_range(0.015..0.035);
            let recovered: f64 = (confirmed - deaths) * (t / days as f64).min(0.9)
                * rng.random_range(0.7..1.0);
            let active = (confirmed - deaths - recovered).max(0.0);
            let date = add_days(start, d);
            table.push_row(vec![
                Value::Time(date),
                Value::text(*country),
                Value::Int(confirmed as i64),
                Value::Int(active as i64),
                Value::Int(recovered as i64),
                Value::Int(deaths as i64),
                Value::Int(daily as i64),
            ]);
        }
    }

    let mut db = Database::new("covid_19", "Health");
    db.add_table(table);
    db
}

fn add_days(base: Timestamp, days: usize) -> Timestamp {
    // Simple calendar walk; fine for a one-year window.
    let mut y = base.year;
    let mut m = base.month;
    let mut d = base.day as usize + days;
    loop {
        let dim = days_in_month(y, m) as usize;
        if d <= dim {
            break;
        }
        d -= dim;
        m += 1;
        if m > 12 {
            m = 1;
            y += 1;
        }
    }
    Timestamp::date(y, m, d as u8)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}

/// The six expert NL queries of Figure 19 with gold VIS trees.
pub fn covid_cases() -> Vec<CovidCase> {
    let gold = |vql: &str| parse_vql_str(vql).expect("gold VQL parses");
    vec![
        CovidCase {
            nl: "Show the total number of confirmed cases for each country as a bar chart."
                .into(),
            gold: gold(
                "visualize bar select covid.country , sum ( covid.confirmed ) from covid \
                 group by covid.country",
            ),
            expect_fail: false,
        },
        CovidCase {
            nl: "Draw a line chart about the trend of daily cases grouped by month.".into(),
            gold: gold(
                "visualize line select covid.date , sum ( covid.daily_cases ) from covid \
                 bin covid.date by month",
            ),
            expect_fail: false,
        },
        CovidCase {
            nl: "Show the proportion of total deaths by country in a pie chart.".into(),
            gold: gold(
                "visualize pie select covid.country , sum ( covid.deaths ) from covid \
                 group by covid.country",
            ),
            expect_fail: false,
        },
        CovidCase {
            nl: "Plot the trend of recovered patients in a bin of year as a line chart.".into(),
            gold: gold(
                "visualize line select covid.date , sum ( covid.recovered ) from covid \
                 bin covid.date by year",
            ),
            expect_fail: false,
        },
        CovidCase {
            nl: "Visualize the correlation between confirmed cases and deaths with a scatter chart."
                .into(),
            gold: gold(
                "visualize scatter select covid.confirmed , covid.deaths from covid",
            ),
            expect_fail: false,
        },
        CovidCase {
            nl: "How many active cases in each country until today? Show a bar chart.".into(),
            gold: gold(
                "visualize bar select covid.country , sum ( covid.active_cases ) from covid \
                 where covid.date <= '2020-09-13' group by covid.country",
            ),
            // "until today" cannot be grounded to 2020-09-13 by the model —
            // the Filter subtree is unconstructible (paper Figure 19-B(3)).
            expect_fail: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{execute, ColumnType};

    #[test]
    fn database_has_paper_schema() {
        let db = covid_database(42);
        let t = db.table("covid").unwrap();
        let names: Vec<&str> = t.schema.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["date", "country", "confirmed", "active_cases", "recovered", "deaths", "daily_cases"]
        );
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Temporal);
        assert_eq!(t.n_rows(), 6 * 235);
    }

    #[test]
    fn epidemic_curves_are_monotone_in_confirmed() {
        let db = covid_database(1);
        let t = db.table("covid").unwrap();
        // Confirmed counts never decrease within a country.
        let mut last: std::collections::HashMap<String, i64> = Default::default();
        for r in &t.rows {
            let c = r[1].label();
            let v = r[2].as_f64().unwrap() as i64;
            if let Some(prev) = last.get(&c) {
                assert!(v >= *prev - 1, "{c}: {v} < {prev}");
            }
            last.insert(c, v);
        }
    }

    #[test]
    fn gold_queries_execute() {
        let db = covid_database(42);
        for case in covid_cases() {
            let rs = execute(&db, &case.gold)
                .unwrap_or_else(|e| panic!("{}: {e}", case.nl));
            assert!(!rs.rows.is_empty(), "{} returned no rows", case.nl);
        }
    }

    #[test]
    fn exactly_one_expected_failure() {
        let fails: Vec<_> = covid_cases().into_iter().filter(|c| c.expect_fail).collect();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].nl.contains("until today"));
    }

    #[test]
    fn calendar_walk() {
        assert_eq!(add_days(Timestamp::date(2020, 1, 22), 0), Timestamp::date(2020, 1, 22));
        assert_eq!(add_days(Timestamp::date(2020, 1, 31), 1), Timestamp::date(2020, 2, 1));
        assert_eq!(add_days(Timestamp::date(2020, 2, 28), 1), Timestamp::date(2020, 2, 29));
        assert_eq!(add_days(Timestamp::date(2021, 2, 28), 1), Timestamp::date(2021, 3, 1));
        assert_eq!(add_days(Timestamp::date(2020, 12, 31), 1), Timestamp::date(2021, 1, 1));
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
    }
}
