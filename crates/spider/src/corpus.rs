//! Assemble a full synthetic NL2SQL corpus: many databases across domains,
//! each with generated (NL, SQL) pairs — the drop-in Spider substitute that
//! feeds the nl2sql-to-nl2vis synthesizer.

use crate::datagen::generate_database;
use crate::querygen::{QueryGen, QueryGenConfig, SpiderPair};
use crate::template::domain_templates;
use nv_data::Database;

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of databases (templates are cycled; nvBench has 153).
    pub n_databases: usize,
    /// (NL, SQL) pairs per database (Spider averages ~50/db).
    pub pairs_per_db: usize,
    pub seed: u64,
    pub query_cfg: QueryGenConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_databases: 30,
            pairs_per_db: 40,
            seed: 42,
            query_cfg: QueryGenConfig::default(),
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and examples.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            n_databases: 4,
            pairs_per_db: 12,
            seed,
            query_cfg: QueryGenConfig { n_pairs: 12, ..Default::default() },
        }
    }

    /// Paper-scale: 153 databases, ~66 pairs each → ~10k (NL, SQL) pairs
    /// (Spider contributes 10,181).
    pub fn paper_scale(seed: u64) -> CorpusConfig {
        CorpusConfig {
            n_databases: 153,
            pairs_per_db: 66,
            seed,
            query_cfg: QueryGenConfig { n_pairs: 66, ..Default::default() },
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct SpiderCorpus {
    pub databases: Vec<Database>,
    pub pairs: Vec<SpiderPair>,
}

impl SpiderCorpus {
    /// Generate deterministically from the configuration.
    pub fn generate(cfg: &CorpusConfig) -> SpiderCorpus {
        let templates = domain_templates();
        let mut databases = Vec::with_capacity(cfg.n_databases);
        let mut pairs = Vec::with_capacity(cfg.n_databases * cfg.pairs_per_db);
        for i in 0..cfg.n_databases {
            let tpl = &templates[i % templates.len()];
            let db = generate_database(tpl, i, cfg.seed);
            let mut qcfg = cfg.query_cfg.clone();
            qcfg.n_pairs = cfg.pairs_per_db;
            let mut qg = QueryGen::new(&db, cfg.seed ^ (i as u64 + 1), qcfg);
            pairs.extend(qg.generate(pairs.len()));
            databases.push(db);
        }
        SpiderCorpus { databases, pairs }
    }

    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Number of distinct domains represented.
    pub fn n_domains(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        self.databases.iter().for_each(|d| {
            set.insert(d.domain.as_str());
        });
        set.len()
    }

    /// Total table count across all databases.
    pub fn n_tables(&self) -> usize {
        self.databases.iter().map(|d| d.tables.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_sql::parse_sql;

    #[test]
    fn small_corpus_generates() {
        let c = SpiderCorpus::generate(&CorpusConfig::small(1));
        assert_eq!(c.databases.len(), 4);
        assert_eq!(c.pairs.len(), 48);
        assert!(c.n_domains() >= 4);
        assert!(c.n_tables() >= 12);
    }

    #[test]
    fn pair_ids_are_dense_and_unique() {
        let c = SpiderCorpus::generate(&CorpusConfig::small(2));
        for (i, p) in c.pairs.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn every_pair_resolves_against_its_database() {
        let c = SpiderCorpus::generate(&CorpusConfig::small(3));
        for p in &c.pairs {
            let db = c.database(&p.db_name).expect("db exists");
            parse_sql(db, &p.sql).unwrap_or_else(|e| panic!("{}: {e}", p.sql));
        }
    }

    #[test]
    fn deterministic() {
        let a = SpiderCorpus::generate(&CorpusConfig::small(5));
        let b = SpiderCorpus::generate(&CorpusConfig::small(5));
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn templates_cycle_past_library_size() {
        let cfg = CorpusConfig {
            n_databases: 20,
            pairs_per_db: 2,
            seed: 9,
            query_cfg: QueryGenConfig { n_pairs: 2, ..Default::default() },
        };
        let c = SpiderCorpus::generate(&cfg);
        assert_eq!(c.databases.len(), 20);
        // Same template instantiated twice must differ in name and data.
        let names: std::collections::HashSet<&str> =
            c.databases.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 20);
    }
}
