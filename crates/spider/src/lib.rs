//! # nv-spider — synthetic Spider-style NL2SQL benchmark substrate
//!
//! The nvBench paper piggybacks the Spider benchmark (200 databases, 10,181
//! human-written (NL, SQL) pairs). Spider is an external download, so this
//! crate regenerates a statistically-matched substitute (see DESIGN.md,
//! Substitution 1): domain templates ([`template`]) are instantiated into
//! populated databases ([`datagen`]) whose column-type mix, row counts,
//! value distributions, skew and outlier profiles follow the paper's
//! Table 2 / Figures 8–9 census, and compositional NL templates generate
//! (NL, SQL) pairs spanning the full Spider clause space ([`querygen`]).
//!
//! [`corpus`] assembles full corpora; [`covid`] rebuilds the §4.6 COVID-19
//! case study.

pub mod corpus;
pub mod covid;
pub mod datagen;
pub mod querygen;
pub mod template;

pub use corpus::{CorpusConfig, SpiderCorpus};
pub use covid::{covid_cases, covid_database, CovidCase};
pub use datagen::generate_database;
pub use querygen::{display, plural, QueryGen, QueryGenConfig, SpiderPair};
pub use template::{domain_templates, ColSpec, DomainTemplate, Pool, QuantKind, RowRegime};
