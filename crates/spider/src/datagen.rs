//! Instantiate domain templates into populated databases.
//!
//! Data profiles target the paper's Table 2 / Figures 8–9 census:
//! categorical-heavy column mix (~69% C / 12% T / 19% Q), 5–100 row tables
//! with a long tail, quantitative columns dominated by log-normal shapes
//! (with normal / exponential / power-law minorities, a bimodal "none"
//! tail, and **no** uniform columns), plus skew and IQR-outlier profiles.

use crate::template::{ColSpec, DomainTemplate, Pool, QuantKind, RowRegime, TableTemplate};
use nv_data::{Column, ColumnType, Database, Table, TableSchema, Timestamp, Value};
use nv_stats::Dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const FIRST_NAMES: &[&str] = &[
    "Aaron", "Bella", "Carlos", "Diana", "Elif", "Farid", "Grace", "Hiro", "Ines", "Jamal",
    "Kira", "Leo", "Mona", "Nils", "Omar", "Priya", "Quinn", "Rosa", "Sven", "Tara", "Uma",
    "Viktor", "Wen", "Ximena", "Yusuf", "Zara",
];

const LAST_NAMES: &[&str] = &[
    "Adams", "Baker", "Chen", "Diaz", "Egan", "Fischer", "Garcia", "Huang", "Ivanov", "Jones",
    "Khan", "Lopez", "Moreau", "Nakamura", "Okafor", "Park", "Quispe", "Rossi", "Silva",
    "Tanaka", "Umar", "Vargas", "Weber", "Xu", "Yilmaz", "Zhang",
];

const CITIES: &[&str] = &[
    "Amsterdam", "Boston", "Cairo", "Doha", "Edinburgh", "Florence", "Geneva", "Hanoi",
    "Istanbul", "Jakarta", "Kyoto", "Lima", "Madrid", "Nairobi", "Oslo", "Prague", "Quito",
    "Riga", "Seoul", "Tunis", "Utrecht", "Vienna", "Warsaw", "Xian", "Yerevan", "Zagreb",
];

const ORG_ADJ: &[&str] = &[
    "Global", "United", "Pioneer", "Summit", "Coastal", "Northern", "Silver", "Royal",
    "Central", "Pacific", "Golden", "Crystal",
];

const ORG_NOUN: &[&str] = &[
    "Systems", "Group", "Partners", "Works", "Labs", "Holdings", "Institute", "Collective",
    "Union", "Consortium", "Alliance", "Network",
];

const PRODUCT_WORDS: &[&str] = &[
    "Falcon", "Comet", "Atlas", "Nimbus", "Echo", "Vertex", "Quasar", "Prism", "Orchid",
    "Ember", "Drift", "Beacon", "Harbor", "Cinder", "Mosaic", "Lumen",
];

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, pool: &'a [&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

fn name_from_pool<R: Rng + ?Sized>(rng: &mut R, pool: Pool) -> String {
    match pool {
        Pool::Person => format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES)),
        Pool::City => pick(rng, CITIES).to_string(),
        Pool::Org => format!("{} {}", pick(rng, ORG_ADJ), pick(rng, ORG_NOUN)),
        Pool::Product => {
            format!("{} {}", pick(rng, PRODUCT_WORDS), rng.random_range(100..999))
        }
    }
}

/// The numeric generator assigned to one quantitative column.
#[derive(Debug, Clone, Copy)]
enum NumGen {
    Single(Dist),
    /// Mixture of two modes — fits none of the six families (Figure 9(a)'s
    /// "None" bucket).
    Bimodal(Dist, Dist),
}

impl NumGen {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            NumGen::Single(d) => d.sample(rng),
            NumGen::Bimodal(a, b) => {
                if rng.random::<f64>() < 0.5 {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
        }
    }
}

/// Choose a per-column numeric generator honoring the Figure-9(a) family mix.
fn quant_generator<R: Rng + ?Sized>(rng: &mut R, kind: QuantKind) -> NumGen {
    let roll: f64 = rng.random();
    match kind {
        QuantKind::Money => {
            let mu = rng.random_range(5.0..9.0);
            let sigma = rng.random_range(0.5..1.1);
            if roll < 0.55 {
                NumGen::Single(Dist::LogNormal { mu, sigma })
            } else if roll < 0.70 {
                NumGen::Single(Dist::PowerLaw { x_min: 100.0, alpha: 2.3 })
            } else if roll < 0.85 {
                NumGen::Single(Dist::Exponential { rate: 1.0 / mu.exp() })
            } else {
                NumGen::Bimodal(
                    Dist::Normal { mean: mu.exp() * 0.3, sd: mu.exp() * 0.05 },
                    Dist::Normal { mean: mu.exp() * 2.0, sd: mu.exp() * 0.1 },
                )
            }
        }
        QuantKind::Count => {
            let mu = rng.random_range(1.5..6.0);
            if roll < 0.5 {
                NumGen::Single(Dist::LogNormal { mu, sigma: rng.random_range(0.4..1.0) })
            } else if roll < 0.8 {
                NumGen::Single(Dist::Exponential { rate: 1.0 / mu.exp() })
            } else {
                NumGen::Single(Dist::ChiSquare { k: rng.random_range(2.0..9.0) })
            }
        }
        QuantKind::Age => NumGen::Single(Dist::Normal {
            mean: rng.random_range(28.0..45.0),
            sd: rng.random_range(6.0..14.0),
        }),
        QuantKind::Score => {
            if roll < 0.8 {
                NumGen::Single(Dist::Normal {
                    mean: rng.random_range(55.0..80.0),
                    sd: rng.random_range(8.0..18.0),
                })
            } else {
                NumGen::Bimodal(
                    Dist::Normal { mean: 40.0, sd: 5.0 },
                    Dist::Normal { mean: 85.0, sd: 5.0 },
                )
            }
        }
        QuantKind::Measure => {
            let mu = rng.random_range(2.0..7.0);
            if roll < 0.6 {
                NumGen::Single(Dist::LogNormal { mu, sigma: rng.random_range(0.4..1.2) })
            } else if roll < 0.85 {
                NumGen::Single(Dist::Exponential { rate: 1.0 / mu.exp() })
            } else {
                NumGen::Single(Dist::PowerLaw { x_min: 1.0, alpha: 2.6 })
            }
        }
    }
}

fn row_count<R: Rng + ?Sized>(rng: &mut R, regime: RowRegime) -> usize {
    match regime {
        RowRegime::Tiny => rng.random_range(3..=15),
        RowRegime::Small => rng.random_range(5..=100),
        RowRegime::Large => {
            // Log-uniform over [100, 2000] for the long tail.
            let lo: f64 = 100.0_f64.ln();
            let hi: f64 = 2000.0_f64.ln();
            (lo + (hi - lo) * rng.random::<f64>()).exp() as usize
        }
    }
}

fn declared_type(spec: &ColSpec) -> ColumnType {
    match spec {
        // Identifiers carry categorical semantics even when stored as ints
        // (matches the paper's 68.8%-categorical census; IDs are not
        // analyzed as quantitative columns).
        ColSpec::Pk | ColSpec::Fk(_) | ColSpec::Category(_) | ColSpec::Name(_) | ColSpec::Flag => {
            ColumnType::Categorical
        }
        ColSpec::Quant(_) | ColSpec::IntRange(..) => ColumnType::Quantitative,
        ColSpec::Temporal(..) => ColumnType::Temporal,
    }
}

fn random_date<R: Rng + ?Sized>(rng: &mut R, start_year: i32, end_year: i32) -> Timestamp {
    let year = rng.random_range(start_year..=end_year);
    let month = rng.random_range(1..=12u8);
    let day = rng.random_range(1..=28u8);
    if rng.random::<f64>() < 0.25 {
        Timestamp::datetime(year, month, day, rng.random_range(0..24), rng.random_range(0..60))
    } else {
        Timestamp::date(year, month, day)
    }
}

/// Zipf-ish weighted index: favors early pool entries so categorical columns
/// come out skewed like real data.
fn zipf_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(0.8)).collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generate one populated database from a template.
///
/// `db_index` differentiates repeated instantiations of the same template
/// (database names get a numeric suffix; data differs by the derived seed).
pub fn generate_database(tpl: &DomainTemplate, db_index: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(
        seed ^ (db_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let name = format!("{}_{db_index}", tpl.domain.to_lowercase());
    let mut db = Database::new(name, tpl.domain);

    // Primary keys generated so far, for FK sampling. Templates list parent
    // tables before children (asserted in tests).
    let mut pks: HashMap<&'static str, Vec<i64>> = HashMap::new();

    for table_tpl in &tpl.tables {
        let mut table = generate_table(&mut rng, table_tpl, &pks);
        induce_correlations(&mut rng, &mut table);
        // Remember this table's pks.
        let ids: Vec<i64> = table
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!("pk is always Int"),
            })
            .collect();
        pks.insert(table_tpl.name, ids);
        db.add_table(table);
    }

    for (from_t, from_c, to_t) in crate::template::template_fks(tpl) {
        let to_pk = tpl
            .tables
            .iter()
            .find(|t| t.name == to_t)
            .map(|t| t.columns[0].0)
            .unwrap_or("id");
        db.add_foreign_key(from_t, from_c, to_t, to_pk);
    }
    db
}

/// Real tables carry correlated measures (price↔total, age↔salary, …);
/// independent sampling would leave every scatter chart uninformative and
/// filtered out. With some probability, rewrite a second quantitative column
/// as a linear blend of a first plus noise, inducing |r| ≈ 0.5–0.9.
fn induce_correlations(rng: &mut StdRng, table: &mut Table) {
    let quant_idx: Vec<usize> = table
        .schema
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ctype == ColumnType::Quantitative)
        .map(|(i, _)| i)
        .collect();
    if quant_idx.len() < 2 || table.rows.len() < 3 {
        return;
    }
    for pair in quant_idx.windows(2) {
        if rng.random::<f64>() >= 0.45 {
            continue;
        }
        let (src, dst) = (pair[0], pair[1]);
        let mean = |i: usize| {
            let v: Vec<f64> = table.rows.iter().filter_map(|r| r[i].as_f64()).collect();
            if v.is_empty() { 1.0 } else { v.iter().sum::<f64>() / v.len() as f64 }
        };
        let (m_src, m_dst) = (mean(src).max(1e-9), mean(dst).max(1e-9));
        // The blend must not push values outside the domain the generator
        // enforced (e.g. age ∈ [16, 90]); clamp to the pre-blend range.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in &table.rows {
            if let Some(d) = row[dst].as_f64() {
                lo = lo.min(d);
                hi = hi.max(d);
            }
        }
        if lo > hi {
            continue;
        }
        let alpha: f64 = rng.random_range(0.55..0.9);
        let negate = rng.random::<f64>() < 0.25;
        for row in &mut table.rows {
            let (Some(s), Some(d)) = (row[src].as_f64(), row[dst].as_f64()) else { continue };
            let scaled = if negate { (2.0 - s / m_src) * m_dst } else { s / m_src * m_dst };
            let blended = (alpha * scaled + (1.0 - alpha) * d).clamp(lo, hi);
            row[dst] = match row[dst] {
                Value::Int(_) => Value::Int(blended.round() as i64),
                _ => Value::Float((blended * 100.0).round() / 100.0),
            };
        }
    }
}

fn generate_table(
    rng: &mut StdRng,
    tpl: &TableTemplate,
    pks: &HashMap<&'static str, Vec<i64>>,
) -> Table {
    let n = row_count(rng, tpl.rows);
    let schema = TableSchema {
        name: tpl.name.to_string(),
        columns: tpl
            .columns
            .iter()
            .map(|(cname, spec)| Column::new(*cname, declared_type(spec)))
            .collect(),
        primary_key: Some(0),
    };

    // Per-column generators and null rates are fixed up front so each column
    // has a coherent profile.
    let gens: Vec<Option<NumGen>> = tpl
        .columns
        .iter()
        .map(|(_, spec)| match spec {
            ColSpec::Quant(kind) => Some(quant_generator(rng, *kind)),
            _ => None,
        })
        .collect();
    let null_rates: Vec<f64> = tpl
        .columns
        .iter()
        .map(|(_, spec)| match spec {
            ColSpec::Pk | ColSpec::Fk(_) => 0.0,
            _ => {
                if rng.random::<f64>() < 0.3 {
                    rng.random_range(0.0..0.05)
                } else {
                    0.0
                }
            }
        })
        .collect();

    let mut rows = Vec::with_capacity(n);
    for row_i in 0..n {
        let mut row = Vec::with_capacity(tpl.columns.len());
        for (ci, (_, spec)) in tpl.columns.iter().enumerate() {
            if rng.random::<f64>() < null_rates[ci] {
                row.push(Value::Null);
                continue;
            }
            let v = match spec {
                ColSpec::Pk => Value::Int(row_i as i64 + 1),
                ColSpec::Fk(target) => {
                    let parents = pks.get(target).expect("parent table generated first");
                    Value::Int(parents[rng.random_range(0..parents.len())])
                }
                ColSpec::Category(vals) => Value::text(vals[zipf_index(rng, vals.len())]),
                ColSpec::Name(pool) => Value::text(name_from_pool(rng, *pool)),
                ColSpec::Quant(kind) => {
                    let raw = gens[ci].as_ref().unwrap().sample(rng).max(0.0);
                    match kind {
                        QuantKind::Count => Value::Int(raw.round() as i64),
                        QuantKind::Age => Value::Int(raw.round().clamp(16.0, 90.0) as i64),
                        QuantKind::Score => Value::Float((raw.clamp(0.0, 100.0) * 10.0).round() / 10.0),
                        _ => Value::Float((raw * 100.0).round() / 100.0),
                    }
                }
                ColSpec::IntRange(lo, hi) => Value::Int(rng.random_range(*lo..=*hi)),
                ColSpec::Temporal(y0, y1) => Value::Time(random_date(rng, *y0, *y1)),
                ColSpec::Flag => Value::text(if rng.random::<f64>() < 0.5 { "yes" } else { "no" }),
            };
            row.push(v);
        }
        rows.push(row);
    }
    Table { schema, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::domain_templates;

    #[test]
    fn generation_is_deterministic() {
        let tpl = &domain_templates()[0];
        let a = generate_database(tpl, 3, 42);
        let b = generate_database(tpl, 3, 42);
        assert_eq!(a, b);
        let c = generate_database(tpl, 4, 42);
        assert_ne!(a, c);
    }

    #[test]
    fn fk_values_reference_parent_pks() {
        for tpl in domain_templates() {
            let db = generate_database(&tpl, 0, 7);
            for fk in &db.foreign_keys {
                let parent = db.table(&fk.to_table).unwrap();
                let pk_idx = parent.schema.column_index(&fk.to_column).unwrap();
                let parent_ids: std::collections::HashSet<&Value> =
                    parent.rows.iter().map(|r| &r[pk_idx]).collect();
                let child = db.table(&fk.from_table).unwrap();
                let fk_idx = child.schema.column_index(&fk.from_column).unwrap();
                for r in &child.rows {
                    assert!(
                        parent_ids.contains(&r[fk_idx]),
                        "{}.{} dangling fk {:?}",
                        fk.from_table,
                        fk.from_column,
                        r[fk_idx]
                    );
                }
            }
        }
    }

    #[test]
    fn pks_are_unique_and_dense() {
        let tpl = &domain_templates()[1];
        let db = generate_database(tpl, 0, 9);
        for t in &db.tables {
            let ids: Vec<i64> = t
                .rows
                .iter()
                .map(|r| if let Value::Int(i) = r[0] { i } else { panic!() })
                .collect();
            let set: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(set.len(), ids.len(), "pk not unique in {}", t.name());
            assert_eq!(*ids.iter().max().unwrap(), ids.len() as i64);
        }
    }

    #[test]
    fn declared_types_follow_specs() {
        let tpl = domain_templates()
            .into_iter()
            .find(|t| t.domain == "Student")
            .unwrap();
        let db = generate_database(&tpl, 0, 1);
        let student = db.table("student").unwrap();
        assert_eq!(student.schema.column("major").unwrap().ctype, ColumnType::Categorical);
        assert_eq!(student.schema.column("gpa").unwrap().ctype, ColumnType::Quantitative);
        assert_eq!(student.schema.column("enrolled").unwrap().ctype, ColumnType::Temporal);
        assert_eq!(student.schema.column("student_id").unwrap().ctype, ColumnType::Categorical);
    }

    #[test]
    fn row_regimes_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert!((3..=15).contains(&row_count(&mut rng, RowRegime::Tiny)));
            assert!((5..=100).contains(&row_count(&mut rng, RowRegime::Small)));
            let l = row_count(&mut rng, RowRegime::Large);
            assert!((100..=2000).contains(&l), "{l}");
        }
    }

    #[test]
    fn quantitative_values_mostly_valid() {
        let tpl = domain_templates()
            .into_iter()
            .find(|t| t.domain == "Employee")
            .unwrap();
        let db = generate_database(&tpl, 0, 11);
        let emp = db.table("employee").unwrap();
        let sal_idx = emp.schema.column_index("salary").unwrap();
        let ages = emp.column_values_by_name("age").unwrap();
        for r in &emp.rows {
            if let Some(f) = r[sal_idx].as_f64() {
                assert!(f >= 0.0);
            }
        }
        for a in ages.iter().filter(|a| !a.is_null()) {
            let v = a.as_f64().unwrap();
            assert!((16.0..=90.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn zipf_skews_categories() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[zipf_index(&mut rng, 5)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
    }
}
