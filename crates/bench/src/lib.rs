//! # nv-bench — the experiment harness
//!
//! One experiment per paper table/figure (see DESIGN.md's per-experiment
//! index). Criterion benches under `benches/` time the Quick-scale
//! computation and print the regenerated rows; the `reproduce` binary runs
//! everything at Full scale and writes the EXPERIMENTS-style report.

pub mod context;
pub mod experiments;

pub use context::{context, train_variant, Context, Scale};
