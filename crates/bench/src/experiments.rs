//! One experiment per paper table/figure. Each function returns the
//! regenerated artifact as formatted text (the textual equivalent of the
//! paper's table rows / figure series), so criterion benches can print it
//! and the `reproduce` binary can collect everything into a report.

use crate::context::{train_variant, Context, Scale};
use nvbench::ast::{ChartType, Hardness};
use nvbench::core::{
    column_census, paper_reference_report, size_histograms, table3 as core_table3,
    type_hardness_matrix, CostModel, CostReport, DatasetStats, Nl2VisPredictor,
};
use nvbench::baselines::{DeepEyeBaseline, Nl4DvBaseline};
use nvbench::eval::{inter_rater, run_study, simulate_t3, StudyConfig, StudyResult};
use nvbench::nn::ModelVariant;
use nvbench::seq2vis::{evaluate, evaluate_top_k, value_fill_accuracy, EvalReport, Seq2Vis};
use std::fmt::Write as _;

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

// ---------------------------------------------------------------- Table 2

/// Table 2 — nvBench dataset statistics.
pub fn exp_table2(ctx: &Context) -> String {
    let s = DatasetStats::of(&ctx.bench);
    let mut out = String::new();
    writeln!(out, "Table 2: dataset statistics").unwrap();
    writeln!(
        out,
        "  #-Databases {}  #-Tables {}  #-Domains {}",
        s.n_databases, s.n_tables, s.n_domains
    )
    .unwrap();
    let top: Vec<String> = s
        .domain_tables
        .iter()
        .take(5)
        .map(|(d, n)| format!("{d} ({n})"))
        .collect();
    writeln!(out, "  Top-5 domains: {}", top.join(", ")).unwrap();
    writeln!(
        out,
        "  #-Cols {} avg {:.2} max {} min {}",
        s.n_columns, s.avg_columns, s.max_columns, s.min_columns
    )
    .unwrap();
    writeln!(
        out,
        "  #-Rows {} avg {:.2} max {} min {}",
        s.n_rows, s.avg_rows, s.max_rows, s.min_rows
    )
    .unwrap();
    writeln!(
        out,
        "  Column types: C {:.2}%  T {:.2}%  Q {:.2}%",
        s.type_pct('C'),
        s.type_pct('T'),
        s.type_pct('Q')
    )
    .unwrap();
    out
}

// ---------------------------------------------------------------- Table 3

/// Table 3 — per-chart-type query statistics (incl. pairwise BLEU).
pub fn exp_table3(ctx: &Context) -> String {
    let rows = core_table3(&ctx.bench);
    let mut out = String::new();
    writeln!(out, "Table 3: nl and vis query statistics").unwrap();
    writeln!(
        out,
        "  {:<18} {:>6} {:>9} {:>8} {:>8} {:>6} {:>6} {:>9}",
        "vis type", "#-vis", "#-(nl,vis)", "per-vis", "avg #-W", "max", "min", "avg BLEU"
    )
    .unwrap();
    for (i, r) in rows.iter().enumerate() {
        let name = if i == rows.len() - 1 {
            "All types".to_string()
        } else {
            r.chart.display_name().to_string()
        };
        writeln!(
            out,
            "  {:<18} {:>6} {:>9} {:>8.3} {:>8.1} {:>6} {:>6} {:>9.3}",
            name, r.n_vis, r.n_pairs, r.pairs_per_vis, r.avg_words, r.max_words, r.min_words,
            r.avg_bleu
        )
        .unwrap();
    }
    out
}

// ---------------------------------------------------------------- Figure 8

/// Figure 8 — distributions of #columns and #rows per table.
pub fn exp_fig8(ctx: &Context) -> String {
    let (cols, rows) = size_histograms(&ctx.bench);
    let mut out = String::new();
    writeln!(out, "Figure 8(a): #tables by column count").unwrap();
    for (label, c) in cols {
        writeln!(out, "  {label} cols: {c}").unwrap();
    }
    writeln!(out, "Figure 8(b): #tables by row count").unwrap();
    for (label, c) in rows {
        writeln!(out, "  {label} rows: {c}").unwrap();
    }
    out
}

// ---------------------------------------------------------------- Figure 9

/// Figure 9 — column-level census (distribution fits, skewness, outliers).
pub fn exp_fig9(ctx: &Context) -> String {
    let census = column_census(&ctx.bench);
    let mut out = String::new();
    writeln!(
        out,
        "Figure 9 ({} quantitative columns analyzed)",
        census.n_quant_columns
    )
    .unwrap();
    writeln!(out, "  (a) distribution fits:").unwrap();
    let mut fits: Vec<(&String, &usize)> = census.fits.iter().collect();
    fits.sort_by(|a, b| b.1.cmp(a.1));
    for (fam, n) in fits {
        writeln!(out, "      {fam}: {n}").unwrap();
    }
    writeln!(out, "  (b) skewness:").unwrap();
    for (class, n) in &census.skew {
        writeln!(out, "      {}: {n}", class.name()).unwrap();
    }
    writeln!(out, "  (c) outliers (1.5 IQR):").unwrap();
    for (class, n) in &census.outliers {
        writeln!(out, "      {}: {n}", class.name()).unwrap();
    }
    out
}

// --------------------------------------------------------------- Figure 10

/// Figure 10 — visualization types vs hardness.
pub fn exp_fig10(ctx: &Context) -> String {
    let m = type_hardness_matrix(&ctx.bench);
    let total: usize = m.values().sum();
    let mut out = String::new();
    writeln!(out, "Figure 10: vis type × hardness (n = {total})").unwrap();
    write!(out, "  {:<18}", "").unwrap();
    for h in Hardness::ALL {
        write!(out, "{:>12}", h.name()).unwrap();
    }
    writeln!(out).unwrap();
    for c in ChartType::ALL {
        write!(out, "  {:<18}", c.display_name()).unwrap();
        for h in Hardness::ALL {
            write!(out, "{:>12}", m.get(&(c, h)).copied().unwrap_or(0)).unwrap();
        }
        writeln!(out).unwrap();
    }
    let by_hardness: Vec<String> = Hardness::ALL
        .iter()
        .map(|h| {
            let n: usize = m
                .iter()
                .filter(|((_, hh), _)| hh == h)
                .map(|(_, c)| c)
                .sum();
            format!("{} {}", h.name(), pct(n as f64 / total.max(1) as f64))
        })
        .collect();
    writeln!(out, "  hardness mix: {}", by_hardness.join(", ")).unwrap();
    out
}

// --------------------------------------------------------------- Figure 12

/// Figure 12 — inter-rater reliability over 50 overlapping T2 pairs.
pub fn exp_fig12(ctx: &Context) -> String {
    let ir = inter_rater(&ctx.bench, 50, 7);
    let mut out = String::new();
    writeln!(out, "Figure 12: inter-rater reliability (50 T2 pairs)").unwrap();
    writeln!(
        out,
        "  fully agree: {}  mainly agree (Δ=1): {}  disagree (Δ≥2): {}",
        ir.fully_agree, ir.mainly_agree, ir.disagree
    )
    .unwrap();
    let spreads: Vec<String> = ir.per_pair.iter().map(|(_, d)| d.to_string()).collect();
    writeln!(out, "  per-pair max rating spread: {}", spreads.join(" ")).unwrap();
    out
}

// --------------------------------------------------------------- Figure 13

/// Figure 13 — expert/crowd Likert distributions for T1 and T2.
pub fn exp_fig13(ctx: &Context) -> String {
    let study = run_study(&ctx.bench, &StudyConfig::default());
    let mut out = String::new();
    writeln!(
        out,
        "Figure 13: expert/crowd evaluation ({} sampled pairs)",
        study.sampled_pairs.len()
    )
    .unwrap();
    let fmt = |name: &str, d: &[usize; 5]| {
        format!(
            "  {name:<10} SD {} D {} N {} A {} SA {}  → positive {} negative {}",
            d[0],
            d[1],
            d[2],
            d[3],
            d[4],
            pct(StudyResult::positive_rate(d)),
            pct(StudyResult::negative_rate(d))
        )
    };
    writeln!(out, "  T1 (handwritten?):").unwrap();
    writeln!(out, "{}", fmt("experts", &study.expert_t1)).unwrap();
    writeln!(out, "{}", fmt("crowd", &study.crowd_t1)).unwrap();
    writeln!(out, "  T2 (nl matches vis?):").unwrap();
    writeln!(out, "{}", fmt("experts", &study.expert_t2)).unwrap();
    writeln!(out, "{}", fmt("crowd", &study.crowd_t2)).unwrap();
    writeln!(out, "  low-rated pairs: {}", study.low_rated_pairs.len()).unwrap();
    out
}

// --------------------------------------------------------------- Figure 14

/// Figure 14 — T3 writing time + the §3.3 man-hour comparison.
pub fn exp_fig14(ctx: &Context) -> String {
    let timing = simulate_t3(&ctx.bench, 460, 42);
    let cost = CostReport::of(&ctx.bench, CostModel::default());
    let paper = paper_reference_report();
    let mut out = String::new();
    writeln!(out, "Figure 14: T3 writing time (460 simulated tasks, seconds)").unwrap();
    writeln!(
        out,
        "  min {:.0}  median {:.0}  mean {:.0}  max {:.0}",
        timing.min, timing.median, timing.mean, timing.max
    )
    .unwrap();
    writeln!(out, "Man-hour model (§3.1/§3.3), this benchmark:").unwrap();
    writeln!(
        out,
        "  manual NL revisions: {} variants over {} vis objects → {:.2} days",
        cost.manual_nl_variants,
        cost.manual_vis_objects,
        cost.synthesizer_days()
    )
    .unwrap();
    writeln!(
        out,
        "  from scratch: {} pairs × {:.0}s → {:.1} days  (ratio {:.1}%, speedup {:.1}×)",
        cost.total_pairs,
        CostModel::default().seconds_per_scratch_query,
        cost.scratch_days(),
        cost.cost_ratio() * 100.0,
        cost.speedup()
    )
    .unwrap();
    writeln!(
        out,
        "  paper constants: {:.1} days vs {:.1} days (ratio {:.1}%, speedup {:.1}×)",
        paper.synthesizer_days(),
        paper.scratch_days(),
        paper.cost_ratio() * 100.0,
        paper.speedup()
    )
    .unwrap();
    out
}

// --------------------------------------------------------------- Figure 16

/// Figure 16 — train/test distribution heatmaps over type × hardness.
pub fn exp_fig16(ctx: &Context) -> String {
    use nvbench::core::Split;
    let mut out = String::new();
    for (name, subset) in [("train", &ctx.split.train), ("test", &ctx.split.test)] {
        let hm = Split::heatmap(&ctx.bench, subset);
        let total: usize = hm.iter().map(|(_, c)| c).sum();
        writeln!(out, "Figure 16 ({name}, n = {total}): type × hardness (%)").unwrap();
        for c in ChartType::ALL {
            write!(out, "  {:<18}", c.display_name()).unwrap();
            for h in Hardness::ALL {
                let n = hm
                    .iter()
                    .find(|((cc, hh), _)| *cc == c && *hh == h)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                write!(out, "{:>8.2}", n as f64 / total.max(1) as f64 * 100.0).unwrap();
            }
            writeln!(out).unwrap();
        }
    }
    out
}

// ---------------------------------------------- Table 4 / Figure 17 (models)

/// Train the three variants and evaluate them on the test set.
pub fn train_and_evaluate(ctx: &Context, scale: Scale) -> Vec<(Seq2Vis, EvalReport)> {
    let idx = ctx.test_idx(scale);
    ModelVariant::ALL
        .iter()
        .map(|&variant| {
            let (model, _) = train_variant(ctx, scale, variant);
            let report = evaluate(&model, &ctx.bench, &idx);
            (model, report)
        })
        .collect()
}

/// Figure 17 — tree-matching accuracy overall and by type × hardness.
pub fn exp_fig17(reports: &[(Seq2Vis, EvalReport)]) -> String {
    let mut out = String::new();
    writeln!(out, "Figure 17: vis tree matching accuracy (test set)").unwrap();
    for (_, r) in reports {
        writeln!(
            out,
            "  {:<20} overall {}  (result match {})",
            r.system,
            pct(r.tree_accuracy()),
            pct(r.result_accuracy())
        )
        .unwrap();
        let hard = r.by_hardness();
        let hard_s: Vec<String> = hard
            .iter()
            .map(|(h, a)| format!("{} {}", h.name(), pct(*a)))
            .collect();
        writeln!(out, "      by hardness: {}", hard_s.join(", ")).unwrap();
        let chart = r.by_chart();
        let chart_s: Vec<String> = chart
            .iter()
            .map(|(c, a)| format!("{} {}", c.keyword(), pct(*a)))
            .collect();
        writeln!(out, "      by type: {}", chart_s.join(", ")).unwrap();
    }
    out
}

/// Table 4 — average vis component matching accuracy.
pub fn exp_table4(reports: &[(Seq2Vis, EvalReport)]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 4: vis component matching accuracy (%)").unwrap();
    writeln!(
        out,
        "  {:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>8} {:>6}",
        "model", "VIS", "Axis", "Where", "Join", "Group", "Binning", "Order", "n"
    )
    .unwrap();
    for (_, r) in reports {
        let comp = r.component_accuracy();
        let (_, vis_all) = r.chart_type_accuracy();
        let g = |k: &str| comp.get(k).map(|a| pct(*a)).unwrap_or_else(|| "—".into());
        writeln!(
            out,
            "  {:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>8} {:>6}",
            r.system,
            pct(vis_all),
            g("axis"),
            g("where"),
            g("join"),
            g("grouping"),
            g("binning"),
            g("order"),
            r.n()
        )
        .unwrap();
    }
    // Per-chart-type VIS accuracy of the attention model (the paper's VIS
    // block).
    if let Some((_, r)) = reports.get(1) {
        let (per, _) = r.chart_type_accuracy();
        let s: Vec<String> = per
            .iter()
            .map(|(c, a)| format!("{} {}", c.keyword(), pct(*a)))
            .collect();
        writeln!(out, "  VIS per type (+attention): {}", s.join(", ")).unwrap();
    }
    out
}

// ----------------------------------------------------------------- Table 5

/// Table 5 — seq2vis vs DeepEye (top-1/3/6/all) vs NL4DV, by hardness.
pub fn exp_table5(ctx: &Context, scale: Scale, seq2vis: &(Seq2Vis, EvalReport)) -> String {
    let idx = ctx.test_idx(scale);
    let deepeye = DeepEyeBaseline::new(42);
    let nl4dv = Nl4DvBaseline::new();

    let mut out = String::new();
    writeln!(out, "Table 5: comparison with the state of the art (tree match)").unwrap();
    writeln!(
        out,
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "hardness", "DE top-1", "DE top-3", "DE top-6", "DE all", "NL4DV", "SEQ2VIS"
    )
    .unwrap();

    let de: Vec<std::collections::BTreeMap<Hardness, (usize, usize)>> = [1usize, 3, 6, 19]
        .iter()
        .map(|&k| evaluate_top_k(&deepeye, &ctx.bench, &idx, k))
        .collect();
    let nl = evaluate(&nl4dv, &ctx.bench, &idx);
    let nl_h = nl.by_hardness();
    let sv_h = seq2vis.1.by_hardness();

    let rate = |m: &std::collections::BTreeMap<Hardness, (usize, usize)>, h: Hardness| {
        m.get(&h)
            .map(|(a, b)| if *b == 0 { 0.0 } else { *a as f64 / *b as f64 })
            .unwrap_or(0.0)
    };
    for h in Hardness::ALL {
        writeln!(
            out,
            "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            h.name(),
            pct(rate(&de[0], h)),
            pct(rate(&de[1], h)),
            pct(rate(&de[2], h)),
            pct(rate(&de[3], h)),
            pct(nl_h.get(&h).copied().unwrap_or(0.0)),
            pct(sv_h.get(&h).copied().unwrap_or(0.0)),
        )
        .unwrap();
    }
    let overall = |m: &std::collections::BTreeMap<Hardness, (usize, usize)>| {
        let (a, b) = m
            .values()
            .fold((0usize, 0usize), |(x, y), (a, b)| (x + a, y + b));
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64
        }
    };
    writeln!(
        out,
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Overall",
        pct(overall(&de[0])),
        pct(overall(&de[1])),
        pct(overall(&de[2])),
        pct(overall(&de[3])),
        pct(nl.tree_accuracy()),
        pct(seq2vis.1.tree_accuracy()),
    )
    .unwrap();
    out
}

// --------------------------------------------------------------- Figure 18

/// Figure 18 — relative accuracy when injecting x% of the low-rated pairs
/// into the training set.
pub fn exp_fig18(ctx: &Context, scale: Scale) -> String {
    let study = run_study(
        &ctx.bench,
        &StudyConfig { sample_frac: 1.0, ..Default::default() },
    );
    let low: std::collections::HashSet<usize> = study.low_rated_pairs.iter().copied().collect();
    let idx = ctx.test_idx(scale);

    // A reduced training budget keeps the 6-point sweep tractable; relative
    // accuracy is what the figure reports, so the shared budget cancels out.
    let mk_cfg = |variant| {
        let mut c = scale.model_config(variant);
        c.max_epochs = c.max_epochs.min(4);
        c.patience = c.max_epochs;
        c
    };

    let mut out = String::new();
    writeln!(
        out,
        "Figure 18: relative tree accuracy vs injected low-rated pairs ({} low-rated)",
        low.len()
    )
    .unwrap();
    for variant in ModelVariant::ALL {
        let (_, dataset) = Seq2Vis::prepare(&ctx.bench, mk_cfg(variant));
        let clean: Vec<usize> = ctx
            .split
            .train
            .iter()
            .copied()
            .filter(|i| !low.contains(i))
            .collect();
        let low_train: Vec<usize> = ctx
            .split
            .train
            .iter()
            .copied()
            .filter(|i| low.contains(i))
            .collect();
        // The 6-point sweep retrains per point; cap the budget harder than
        // the main runs (relative accuracy is the reported quantity).
        let cap = scale.train_cap().unwrap_or(usize::MAX).min(900);

        let mut line = format!("  {:<20}", variant.name());
        let mut baseline_acc = None;
        for pct_inject in [0usize, 20, 40, 60, 80, 100] {
            let n_low = low_train.len() * pct_inject / 100;
            let mut train_idx: Vec<usize> = clean.iter().copied().take(cap).collect();
            train_idx.extend(low_train.iter().copied().take(n_low));
            let mut model = Seq2Vis::from_dataset(&dataset, mk_cfg(variant));
            let train = dataset.subset(&train_idx);
            let val = dataset.subset(&ctx.split.val);
            model.train_on(&train, &val);
            let acc = evaluate(&model, &ctx.bench, &idx).tree_accuracy();
            let base = *baseline_acc.get_or_insert(acc.max(1e-9));
            write!(line, " {pct_inject}%→{:+.1}pp", (acc - base) * 100.0).unwrap();
        }
        writeln!(out, "{line}").unwrap();
    }
    out
}

// --------------------------------------------------------------- Figure 19

/// Figure 19 — the COVID-19 case study: six expert NL queries.
pub fn exp_fig19(model: &Seq2Vis, _ctx: &Context) -> String {
    let db = nvbench::spider::covid_database(42);
    let cases = nvbench::spider::covid_cases();
    let mut out = String::new();
    writeln!(out, "Figure 19: COVID-19 case study ({} queries)", cases.len()).unwrap();
    let mut passed = 0;
    for case in &cases {
        let pred = model.predict(&case.nl, &db);
        let ok = match &pred {
            Some(p) => {
                *p == case.gold || {
                    match (nvbench::data::execute(&db, p), nvbench::data::execute(&db, &case.gold))
                    {
                        (Ok(a), Ok(b)) => p.chart == case.gold.chart && a.data_eq(&b),
                        _ => false,
                    }
                }
            }
            None => false,
        };
        if ok {
            passed += 1;
        }
        writeln!(
            out,
            "  [{}{}] {}",
            if ok { "PASS" } else { "FAIL" },
            if case.expect_fail { ", paper expects FAIL" } else { "" },
            case.nl
        )
        .unwrap();
    }
    writeln!(out, "  {passed}/{} succeeded (paper: 5/6)", cases.len()).unwrap();
    out
}

// ------------------------------------------------------------ §4.2 values

/// The value-filling heuristic's standalone accuracy (paper: ~92.3%).
pub fn exp_values(ctx: &Context) -> String {
    let idx: Vec<usize> = (0..ctx.bench.pairs.len()).collect();
    let (acc, n) = value_fill_accuracy(&ctx.bench, &idx);
    format!(
        "Value-filling heuristic (§4.2): {} over {n} pairs with V-slots (paper ~92.3%)\n",
        pct(acc)
    )
}

// --------------------------------------------------------------- Figure 7

/// Figure 7 — TPC-style filtering sanity: the four example charts and the
/// filter's verdicts.
pub fn exp_fig7() -> String {
    use nvbench::data::{ColumnType, Value};
    use nvbench::quality::DeepEyeFilter;
    use nvbench::render::{ChartData, ChartRow};

    let filter = DeepEyeFilter::new(42);
    let mk = |chart: ChartType, n: usize, numeric_x: bool| ChartData {
        chart,
        x_name: "x".into(),
        y_name: "y".into(),
        series_name: None,
        x_type: if numeric_x { ColumnType::Quantitative } else { ColumnType::Categorical },
        y_type: ColumnType::Quantitative,
        rows: (0..n)
            .map(|i| ChartRow {
                x: if numeric_x { Value::Int(i as i64) } else { Value::text(format!("c{i}")) },
                y: Value::Int(((i * 37) % 90 + 10) as i64),
                series: None,
            })
            .collect(),
    };

    let cases = [
        ("(a) pie with 40 slices (TPC-H Q20 style)", mk(ChartType::Pie, 40, false)),
        ("(b) bar of share by 7 years (TPC-H Q8 style)", mk(ChartType::Bar, 7, false)),
        ("(c) single-value bar (TPC-DS Q9 style)", mk(ChartType::Bar, 1, false)),
        ("(d) scatter of two correlated measures (TPC-DS Q7 style)", mk(ChartType::Scatter, 60, true)),
    ];
    let mut out = String::new();
    writeln!(out, "Figure 7: DeepEye-style filtering of TPC-style charts").unwrap();
    for (name, cd) in cases {
        let (good, reason) = filter.verdict(&cd);
        writeln!(
            out,
            "  {name}: {} ({reason})",
            if good { "KEPT" } else { "PRUNED" }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::context;

    #[test]
    fn cheap_experiments_produce_reports() {
        let ctx = context(Scale::Quick);
        for report in [
            exp_table2(ctx),
            exp_table3(ctx),
            exp_fig8(ctx),
            exp_fig9(ctx),
            exp_fig10(ctx),
            exp_fig12(ctx),
            exp_fig13(ctx),
            exp_fig14(ctx),
            exp_fig16(ctx),
            exp_values(ctx),
            exp_fig7(),
        ] {
            assert!(!report.trim().is_empty(), "empty report");
        }
    }

    #[test]
    fn fig7_prunes_the_expected_charts() {
        let r = exp_fig7();
        assert!(r.contains("(a) pie with 40 slices (TPC-H Q20 style): PRUNED"), "{r}");
        assert!(r.contains("(c) single-value bar (TPC-DS Q9 style): PRUNED"), "{r}");
        assert!(r.contains("(b) bar of share by 7 years (TPC-H Q8 style): KEPT"), "{r}");
        assert!(r.contains("(d) scatter of two correlated measures (TPC-DS Q7 style): KEPT"), "{r}");
    }

    #[test]
    fn fig14_reproduces_paper_constants() {
        let ctx = context(Scale::Quick);
        let r = exp_fig14(ctx);
        assert!(r.contains("2.4 days vs 41.7 days") || r.contains("paper constants"), "{r}");
        assert!(r.contains("speedup"), "{r}");
    }
}
