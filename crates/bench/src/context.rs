//! Shared experiment context: the synthesized benchmark, splits, trained
//! models and simulated studies, built once per scale and cached.

use nvbench::core::{Nl2SqlToNl2Vis, NvBench, QuarantineEntry, Split, SynthesizerConfig};
use nvbench::nn::ModelVariant;
use nvbench::seq2vis::{Dataset, Seq2Vis, Seq2VisConfig};
use nvbench::spider::{CorpusConfig, SpiderCorpus};
use std::sync::OnceLock;

/// Experiment scale. `Quick` keeps criterion benches snappy; `Full` is what
/// the `reproduce` binary uses to regenerate EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Quick => CorpusConfig {
                n_databases: 6,
                pairs_per_db: 25,
                seed: 42,
                query_cfg: Default::default(),
            },
            // Scaled to single-core CPU-minutes (nvBench itself has 153
            // databases / 25,750 pairs; the scaling is noted in
            // EXPERIMENTS.md).
            Scale::Full => CorpusConfig {
                n_databases: 24,
                pairs_per_db: 35,
                seed: 42,
                query_cfg: Default::default(),
            },
        }
    }

    pub fn model_config(self, variant: ModelVariant) -> Seq2VisConfig {
        match self {
            Scale::Quick => Seq2VisConfig {
                max_epochs: 2,
                patience: 2,
                ..Seq2VisConfig::tiny(variant)
            },
            Scale::Full => Seq2VisConfig {
                embed_dim: 48,
                hidden: 72,
                max_epochs: 18,
                patience: 5,
                ..Seq2VisConfig::new(variant)
            },
        }
    }

    /// Cap on the number of training samples (None = all).
    pub fn train_cap(self) -> Option<usize> {
        match self {
            Scale::Quick => Some(150),
            Scale::Full => Some(3600),
        }
    }

    /// Cap on evaluated test pairs.
    pub fn test_cap(self) -> Option<usize> {
        match self {
            Scale::Quick => Some(80),
            Scale::Full => Some(600),
        }
    }
}

/// The benchmark + split for a scale.
pub struct Context {
    pub corpus: SpiderCorpus,
    pub bench: NvBench,
    pub split: Split,
    /// Input pairs the synthesizer quarantined (empty on a healthy corpus).
    pub quarantine: Vec<QuarantineEntry>,
}

impl Context {
    pub fn build(scale: Scale) -> Context {
        Context::build_with(scale, SynthesizerConfig::default())
    }

    /// Build with an explicit synthesizer configuration (e.g. `threads` for
    /// parallel corpus synthesis — the benchmark content is identical for
    /// any thread count, only wall-clock changes).
    pub fn build_with(scale: Scale, cfg: SynthesizerConfig) -> Context {
        let mut corpus = SpiderCorpus::generate(&scale.corpus_config());
        // The §4.6 COVID-19 case study needs the covid schema in the training
        // distribution (the paper's model also saw it); append the covid
        // database with generated (NL, SQL) pairs.
        let covid = nvbench::spider::covid_database(42);
        let n_covid_pairs = match scale {
            Scale::Quick => 10,
            Scale::Full => 30,
        };
        let mut qg = nvbench::spider::QueryGen::new(
            &covid,
            4242,
            nvbench::spider::QueryGenConfig { n_pairs: n_covid_pairs, ..Default::default() },
        );
        corpus.pairs.extend(qg.generate(corpus.pairs.len()));
        corpus.databases.push(covid);

        let synth = Nl2SqlToNl2Vis::new(cfg);
        let synthesis = synth.synthesize_corpus(&corpus);
        let bench = synthesis.bench;
        let split = bench.split(42);
        Context { corpus, bench, split, quarantine: synthesis.quarantine }
    }

    /// Test-pair indices, capped per scale.
    pub fn test_idx(&self, scale: Scale) -> Vec<usize> {
        let mut idx = self.split.test.clone();
        if let Some(cap) = scale.test_cap() {
            idx.truncate(cap);
        }
        idx
    }
}

static QUICK: OnceLock<Context> = OnceLock::new();
static FULL: OnceLock<Context> = OnceLock::new();

/// Cached shared context (built on first use).
pub fn context(scale: Scale) -> &'static Context {
    match scale {
        Scale::Quick => QUICK.get_or_init(|| Context::build(Scale::Quick)),
        Scale::Full => FULL.get_or_init(|| Context::build(Scale::Full)),
    }
}

/// Train one seq2vis variant on the context's split.
pub fn train_variant(ctx: &Context, scale: Scale, variant: ModelVariant) -> (Seq2Vis, Dataset) {
    let (mut model, dataset) = Seq2Vis::prepare(&ctx.bench, scale.model_config(variant));
    let mut train_idx = ctx.split.train.clone();
    if let Some(cap) = scale.train_cap() {
        train_idx.truncate(cap);
    }
    let train = dataset.subset(&train_idx);
    let val = dataset.subset(&ctx.split.val);
    model.train_on(&train, &val);
    (model, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds_once() {
        let a = context(Scale::Quick);
        let b = context(Scale::Quick);
        assert!(std::ptr::eq(a, b));
        assert!(!a.bench.pairs.is_empty());
        assert!(!a.split.test.is_empty());
        assert!(a.test_idx(Scale::Quick).len() <= 80);
    }

    #[test]
    fn scales_differ() {
        assert!(Scale::Full.corpus_config().n_databases > Scale::Quick.corpus_config().n_databases);
        assert!(Scale::Quick.train_cap().is_some());
    }
}
