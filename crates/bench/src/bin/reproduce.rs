//! Regenerate every paper table and figure at Full scale and print the
//! combined report (tee it into EXPERIMENTS-style records):
//!
//! ```text
//! cargo run -p nv-bench --release --bin reproduce                  # everything
//! cargo run -p nv-bench --release --bin reproduce -- quick         # quick scale
//! cargo run -p nv-bench --release --bin reproduce -- data          # skip training
//! cargo run -p nv-bench --release --bin reproduce -- threads=4     # parallel synthesis
//! cargo run -p nv-bench --release --bin reproduce -- max_rows=1000000 fuel=10000000
//! cargo run -p nv-bench --release --bin reproduce -- quarantine=quarantine.json
//! cargo run -p nv-bench --release --bin reproduce -- trace=trace.json
//! ```
//!
//! `threads=N` runs corpus synthesis on N worker threads (default: all
//! available cores). The synthesized benchmark is bit-identical for any N.
//!
//! `max_rows=N` / `fuel=N` tighten the executor's resource budget (rows a
//! single operator may materialize / total row-visits per query); pairs
//! that blow the budget are quarantined instead of stalling the run.
//! `quarantine=PATH` writes the quarantine ledger as a JSON array of
//! `{pair_id, db_name, stage, error_kind, error, elapsed_us}` objects
//! (default: `quarantine.json` next to the other outputs whenever any pair
//! was quarantined).
//!
//! `trace=PATH` arms the `nv-trace` observability layer for the corpus
//! synthesis step and writes the aggregated report (executor counters,
//! worker-pool gauges, per-stage span timings) as `nv-trace/v1` JSON.

use nv_bench::experiments::*;
use nv_bench::{Context, Scale};
use nvbench::core::SynthesizerConfig;
use nvbench::data::ExecBudget;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") { Scale::Quick } else { Scale::Full };
    let data_only = args.iter().any(|a| a == "data");
    let threads = args
        .iter()
        .find_map(|a| a.strip_prefix("threads=").and_then(|n| n.parse().ok()))
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
    let arg_num = |key: &str| {
        args.iter().find_map(|a| a.strip_prefix(key).and_then(|n| n.parse::<u64>().ok()))
    };
    let mut budget = ExecBudget::default();
    if let Some(n) = arg_num("max_rows=") {
        budget.max_rows = n as usize;
    }
    if let Some(n) = arg_num("fuel=") {
        budget.fuel = n;
    }
    let quarantine_path = args
        .iter()
        .find_map(|a| a.strip_prefix("quarantine=").map(str::to_string))
        .unwrap_or_else(|| "quarantine.json".to_string());
    let trace_path = args
        .iter()
        .find_map(|a| a.strip_prefix("trace=").map(str::to_string));

    let t0 = Instant::now();
    println!("=== nvBench reproduction — scale {scale:?}, {threads} synthesis thread(s) ===\n");
    if trace_path.is_some() {
        nvbench::trace::enable();
        nvbench::trace::reset();
    }
    let ctx = &Context::build_with(
        scale,
        SynthesizerConfig { threads, budget, ..Default::default() },
    );
    if let Some(path) = &trace_path {
        nvbench::trace::disable();
        let report = nvbench::trace::report();
        match std::fs::write(path, report.to_json_string_pretty()) {
            Ok(()) => println!("[trace] synthesis trace report written to {path}\n"),
            Err(e) => println!("[trace] could not write {path}: {e}\n"),
        }
    }
    println!(
        "[setup] corpus: {} databases, {} (nl,sql) pairs → benchmark: {} vis, {} (nl,vis) pairs ({:.1}s)\n",
        ctx.corpus.databases.len(),
        ctx.corpus.pairs.len(),
        ctx.bench.vis_objects.len(),
        ctx.bench.pairs.len(),
        t0.elapsed().as_secs_f64()
    );
    if !ctx.quarantine.is_empty() {
        println!(
            "[quarantine] {} pair(s) failed synthesis and were isolated:",
            ctx.quarantine.len()
        );
        for q in ctx.quarantine.iter().take(10) {
            println!("  pair {} (db {}) at {}: {}", q.pair_id, q.db_name, q.stage.label(), q.error);
        }
        if ctx.quarantine.len() > 10 {
            println!("  … and {} more", ctx.quarantine.len() - 10);
        }
        match serde_json::to_string_pretty(&ctx.quarantine) {
            Ok(json) => match std::fs::write(&quarantine_path, json) {
                Ok(()) => println!("[quarantine] ledger written to {quarantine_path}\n"),
                Err(e) => println!("[quarantine] could not write {quarantine_path}: {e}\n"),
            },
            Err(e) => println!("[quarantine] could not serialize ledger: {e}\n"),
        }
    }

    let section = |name: &str, body: String| {
        println!("----------------------------------------------------------------");
        println!("{body}");
        let _ = name;
    };

    section("table2", exp_table2(ctx));
    section("table3", exp_table3(ctx));
    section("fig7", exp_fig7());
    section("fig8", exp_fig8(ctx));
    section("fig9", exp_fig9(ctx));
    section("fig10", exp_fig10(ctx));
    section("fig12", exp_fig12(ctx));
    section("fig13", exp_fig13(ctx));
    section("fig14", exp_fig14(ctx));
    section("fig16", exp_fig16(ctx));
    section("values", exp_values(ctx));

    if data_only {
        println!("(skipping model training: 'data' flag)");
        return;
    }

    let t1 = Instant::now();
    println!("----------------------------------------------------------------");
    println!("[training] three seq2vis variants…");
    let reports = train_and_evaluate(ctx, scale);
    println!("[training] done in {:.1}s\n", t1.elapsed().as_secs_f64());

    section("fig17", exp_fig17(&reports));
    section("table4", exp_table4(&reports));
    section("table5", exp_table5(ctx, scale, &reports[1]));
    section("fig19", exp_fig19(&reports[1].0, ctx));
    section("fig18", exp_fig18(ctx, scale));

    println!("=== total {:.1}s ===", t0.elapsed().as_secs_f64());
}
