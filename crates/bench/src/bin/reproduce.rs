//! Regenerate every paper table and figure at Full scale and print the
//! combined report (tee it into EXPERIMENTS-style records):
//!
//! ```text
//! cargo run -p nv-bench --release --bin reproduce              # everything
//! cargo run -p nv-bench --release --bin reproduce -- quick     # quick scale
//! cargo run -p nv-bench --release --bin reproduce -- data      # skip training
//! cargo run -p nv-bench --release --bin reproduce -- threads=4 # parallel synthesis
//! ```
//!
//! `threads=N` runs corpus synthesis on N worker threads (default: all
//! available cores). The synthesized benchmark is bit-identical for any N.

use nv_bench::experiments::*;
use nv_bench::{Context, Scale};
use nvbench::core::SynthesizerConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "quick") { Scale::Quick } else { Scale::Full };
    let data_only = args.iter().any(|a| a == "data");
    let threads = args
        .iter()
        .find_map(|a| a.strip_prefix("threads=").and_then(|n| n.parse().ok()))
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });

    let t0 = Instant::now();
    println!("=== nvBench reproduction — scale {scale:?}, {threads} synthesis thread(s) ===\n");
    let ctx = &Context::build_with(scale, SynthesizerConfig { threads, ..Default::default() });
    println!(
        "[setup] corpus: {} databases, {} (nl,sql) pairs → benchmark: {} vis, {} (nl,vis) pairs ({:.1}s)\n",
        ctx.corpus.databases.len(),
        ctx.corpus.pairs.len(),
        ctx.bench.vis_objects.len(),
        ctx.bench.pairs.len(),
        t0.elapsed().as_secs_f64()
    );

    let section = |name: &str, body: String| {
        println!("----------------------------------------------------------------");
        println!("{body}");
        let _ = name;
    };

    section("table2", exp_table2(ctx));
    section("table3", exp_table3(ctx));
    section("fig7", exp_fig7());
    section("fig8", exp_fig8(ctx));
    section("fig9", exp_fig9(ctx));
    section("fig10", exp_fig10(ctx));
    section("fig12", exp_fig12(ctx));
    section("fig13", exp_fig13(ctx));
    section("fig14", exp_fig14(ctx));
    section("fig16", exp_fig16(ctx));
    section("values", exp_values(ctx));

    if data_only {
        println!("(skipping model training: 'data' flag)");
        return;
    }

    let t1 = Instant::now();
    println!("----------------------------------------------------------------");
    println!("[training] three seq2vis variants…");
    let reports = train_and_evaluate(ctx, scale);
    println!("[training] done in {:.1}s\n", t1.elapsed().as_secs_f64());

    section("fig17", exp_fig17(&reports));
    section("table4", exp_table4(&reports));
    section("table5", exp_table5(ctx, scale, &reports[1]));
    section("fig19", exp_fig19(&reports[1].0, ctx));
    section("fig18", exp_fig18(ctx, scale));

    println!("=== total {:.1}s ===", t0.elapsed().as_secs_f64());
}
