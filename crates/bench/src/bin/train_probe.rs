//! Training diagnostics: learning curve + accuracy of one seq2vis variant
//! on the Quick-scale benchmark, with configurable epochs/train size.
//!
//! ```text
//! cargo run -p nv-bench --release --bin train_probe -- [epochs] [train_cap] [variant]
//! ```

use nv_bench::{context, Scale};
use nvbench::core::Nl2VisPredictor;
use nvbench::nn::ModelVariant;
use nvbench::seq2vis::{evaluate, Seq2Vis, Seq2VisConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(12);
    let cap: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(usize::MAX);
    let variant = match args.get(2).map(String::as_str) {
        Some("basic") => ModelVariant::Basic,
        Some("copy") => ModelVariant::Copy,
        _ => ModelVariant::Attention,
    };

    let ctx = context(Scale::Quick);
    println!(
        "benchmark: {} vis / {} pairs; train {} val {} test {}",
        ctx.bench.vis_objects.len(),
        ctx.bench.pairs.len(),
        ctx.split.train.len(),
        ctx.split.val.len(),
        ctx.split.test.len()
    );

    let cfg = Seq2VisConfig {
        max_epochs: epochs,
        patience: epochs,
        ..Seq2VisConfig::new(variant)
    };
    let (mut model, dataset) = Seq2Vis::prepare(&ctx.bench, cfg);
    println!("vocab {} tokens, {} parameters", model.vocab.len(), model.n_parameters());

    let train_idx: Vec<usize> = ctx.split.train.iter().copied().take(cap).collect();
    let train = dataset.subset(&train_idx);
    let val = dataset.subset(&ctx.split.val);
    let t0 = std::time::Instant::now();
    let report = model.train_on(&train, &val);
    println!(
        "trained {} epochs in {:.1}s; losses: {:?}",
        report.epochs_run,
        t0.elapsed().as_secs_f64(),
        report
            .train_losses
            .iter()
            .zip(&report.val_losses)
            .map(|(t, v)| format!("{t:.2}/{v:.2}"))
            .collect::<Vec<_>>()
    );

    let idx = ctx.test_idx(Scale::Quick);
    let eval = evaluate(&model, &ctx.bench, &idx);
    println!(
        "test: tree {:.1}% result {:.1}% over {} pairs",
        eval.tree_accuracy() * 100.0,
        eval.result_accuracy() * 100.0,
        eval.n()
    );
    let comp = eval.component_accuracy();
    println!("components: {comp:?}");

    // Show a few predictions vs gold.
    for &pi in idx.iter().take(5) {
        let pair = &ctx.bench.pairs[pi];
        let vis = &ctx.bench.vis_objects[pair.vis_id];
        let db = ctx.bench.database(&vis.db_name).unwrap();
        println!("\nNL  : {}", pair.nl);
        println!("gold: {}", vis.vql);
        match model.predict(&pair.nl, db) {
            Some(t) => println!("pred: {}", t.to_vql()),
            None => println!(
                "pred: <unparseable> {:?}",
                model.predict_tokens(&pair.nl, db).join(" ")
            ),
        }
    }
}
