//! Regenerates the §4.2 value-filling accuracy (paper ~92.3%).
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_values;
use nv_bench::{context, Scale};

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    println!("{}", exp_values(ctx));
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_values", |b| b.iter(|| exp_values(ctx)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
