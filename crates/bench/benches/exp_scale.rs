//! exp_scale — corpus-synthesis throughput.
//!
//! Measures the sequential uncached oracle against the cached engine
//! (1 thread) and the parallel cached engine (4 threads) on a 48-pair
//! corpus, asserts the outputs are identical, and records pairs/sec plus
//! the speedup into `BENCH_synth.json` at the repo root.
//!
//! Set `NV_EXP_SCALE_QUICK=1` to cut repetitions (used by
//! `scripts/bench_smoke.sh`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvbench::core::{Nl2SqlToNl2Vis, SynthesizerConfig};
use nvbench::spider::{CorpusConfig, SpiderCorpus};
use std::time::Instant;

const THREADS: usize = 4;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn time_runs(reps: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warm-up, then the median of `reps` runs.
    f();
    median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("NV_EXP_SCALE_QUICK").is_ok();
    let reps = if quick { 3 } else { 7 };

    let corpus = SpiderCorpus::generate(&CorpusConfig::small(32));
    let n_pairs = corpus.pairs.len();
    let sequential = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
    let cached1 = Nl2SqlToNl2Vis::new(SynthesizerConfig { threads: 1, ..Default::default() });
    let parallel =
        Nl2SqlToNl2Vis::new(SynthesizerConfig { threads: THREADS, ..Default::default() });

    // Correctness first: the engine under measurement must reproduce the
    // oracle exactly.
    let oracle = sequential.synthesize_corpus_sequential(&corpus).bench;
    let fast = parallel.synthesize_corpus(&corpus).bench;
    assert_eq!(oracle.pairs, fast.pairs, "parallel output diverged from the oracle");
    assert_eq!(oracle.vis_objects.len(), fast.vis_objects.len());

    let t_seq = time_runs(reps, || {
        black_box(sequential.synthesize_corpus_sequential(&corpus));
    });
    let t_cached = time_runs(reps, || {
        black_box(cached1.synthesize_corpus(&corpus));
    });
    let t_par = time_runs(reps, || {
        black_box(parallel.synthesize_corpus(&corpus));
    });

    // One extra *traced* parallel run for stage/cache attribution. Tracing
    // stays disarmed during every timed run above, so the probes cannot
    // skew the throughput numbers they sit next to in the report.
    nvbench::trace::reset();
    nvbench::trace::enable();
    black_box(parallel.synthesize_corpus(&corpus));
    nvbench::trace::disable();
    let trace = nvbench::trace::report();
    nvbench::trace::reset();

    let stage = |name: &str| {
        let s = trace.span_stat(&format!("pair/{name}")).unwrap_or_default();
        let mean_us =
            if s.count == 0 { 0.0 } else { s.total_ns as f64 / s.count as f64 / 1e3 };
        serde_json::json!({
            "count": s.count,
            "total_ms": s.total_ns as f64 / 1e6,
            "mean_us": mean_us,
        })
    };
    let cache_layer = |layer: &str| {
        let hits = trace.counter(&format!("data.cache.{layer}.hits"));
        let misses = trace.counter(&format!("data.cache.{layer}.misses"));
        let total = hits + misses;
        let rate = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
        serde_json::json!({ "hits": hits, "misses": misses, "hit_rate": rate })
    };

    let pairs_per_sec = |t: f64| n_pairs as f64 / t;
    let speedup = t_seq / t_par;
    let report = serde_json::json!({
        "benchmark": "exp_scale",
        "corpus": { "databases": corpus.databases.len(), "nl_sql_pairs": n_pairs },
        "reps": reps,
        "threads": THREADS,
        "sequential_uncached": {
            "secs": t_seq,
            "pairs_per_sec": pairs_per_sec(t_seq),
        },
        "cached_1_thread": {
            "secs": t_cached,
            "pairs_per_sec": pairs_per_sec(t_cached),
            "speedup_vs_sequential": t_seq / t_cached,
        },
        "parallel_cached": {
            "secs": t_par,
            "pairs_per_sec": pairs_per_sec(t_par),
            "speedup_vs_sequential": speedup,
        },
        // From the separate traced run (not the timed ones): wall time per
        // pipeline stage and executor-cache effectiveness, via nv-trace.
        "traced_parallel_run": {
            "stages": {
                "parse": stage("parse"),
                "edits": stage("edits"),
                "filter": stage("filter"),
                "nledit": stage("nledit"),
            },
            "cache_hit_rates": {
                "scan": cache_layer("scan"),
                "group": cache_layer("group"),
                "result": cache_layer("result"),
            },
            "exec_fuel_used": trace.counter("data.exec.fuel_used"),
            "exec_scan_rows": trace.counter("data.exec.scan_rows"),
        },
        "outputs_identical": true,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_synth.json");

    println!(
        "exp_scale: {n_pairs} pairs | sequential {:.1} pairs/s | cached(1t) {:.1} pairs/s \
         | parallel({THREADS}t) {:.1} pairs/s | speedup {speedup:.2}x → {path}",
        pairs_per_sec(t_seq),
        pairs_per_sec(t_cached),
        pairs_per_sec(t_par),
    );

    let mut g = c.benchmark_group("scale");
    g.sample_size(if quick { 2 } else { 5 });
    g.bench_function("synthesize_sequential", |b| {
        b.iter(|| sequential.synthesize_corpus_sequential(&corpus))
    });
    g.bench_function("synthesize_parallel4", |b| {
        b.iter(|| parallel.synthesize_corpus(&corpus))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
