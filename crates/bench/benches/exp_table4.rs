//! Regenerates Table 4 (vis component matching accuracy) at Quick scale:
//! trains the three seq2vis variants once, prints the table, and times the
//! component-metric evaluation pass.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::{exp_table4, train_and_evaluate};
use nv_bench::{context, Scale};
use nvbench::seq2vis::evaluate;

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    let reports = train_and_evaluate(ctx, Scale::Quick);
    println!("{}", exp_table4(&reports));
    let idx = ctx.test_idx(Scale::Quick);
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_table4_eval", |b| {
        b.iter(|| evaluate(&reports[1].0, &ctx.bench, &idx))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
