//! Regenerates Figure 18 (effect of injecting low-rated pairs) at Quick
//! scale and times the low-rated-pair identification study.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_fig18;
use nv_bench::{context, Scale};
use nvbench::eval::{run_study, StudyConfig};

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    println!("{}", exp_fig18(ctx, Scale::Quick));
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_fig18_study", |b| {
        b.iter(|| run_study(&ctx.bench, &StudyConfig { sample_frac: 1.0, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
