//! Regenerates Table 5 (seq2vis vs DeepEye vs NL4DV) at Quick scale and
//! times the baseline evaluation.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::{exp_table5, train_and_evaluate};
use nv_bench::{context, Scale};
use nvbench::baselines::DeepEyeBaseline;
use nvbench::seq2vis::evaluate_top_k;

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    let mut reports = train_and_evaluate(ctx, Scale::Quick);
    let attn = reports.remove(1);
    println!("{}", exp_table5(ctx, Scale::Quick, &attn));
    let idx = ctx.test_idx(Scale::Quick);
    let deepeye = DeepEyeBaseline::new(42);
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_table5_deepeye_top6", |b| {
        b.iter(|| evaluate_top_k(&deepeye, &ctx.bench, &idx, 6))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
