//! Regenerates Figure 19 (COVID-19 case study) at Quick scale and times the
//! six-query prediction pass.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_fig19;
use nv_bench::{context, train_variant, Scale};
use nvbench::core::Nl2VisPredictor;
use nvbench::nn::ModelVariant;

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    let (model, _) = train_variant(ctx, Scale::Quick, ModelVariant::Attention);
    println!("{}", exp_fig19(&model, ctx));
    let db = nvbench::spider::covid_database(42);
    let cases = nvbench::spider::covid_cases();
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_fig19_predict6", |b| {
        b.iter(|| {
            cases
                .iter()
                .filter(|case| model.predict(&case.nl, &db).is_some())
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
