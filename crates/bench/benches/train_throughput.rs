//! train_throughput — nv-nn training-kernel throughput.
//!
//! Measures forward+backward training tokens/sec for each seq2vis variant
//! under the fast fused/blocked kernels and under the pre-rewrite
//! `KernelPolicy::NaiveOracle` twin, asserts the two are bit-identical
//! before timing anything, and records per-variant tokens/sec plus the
//! speedup into `BENCH_train.json` at the repo root. A separate traced
//! run attributes GEMM flops, tape nodes and step time via nv-trace.
//!
//! Set `NV_EXP_TRAIN_QUICK=1` to cut repetitions (used by
//! `scripts/bench_smoke.sh`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvbench::nn::seq2seq::{ModelVariant, Sample, Seq2Seq, Seq2SeqConfig};
use nvbench::nn::KernelPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const VOCAB: usize = 64;

fn corpus(n: usize) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|_| {
            let len = rng.random_range(6..13);
            let src: Vec<usize> = (0..len).map(|_| rng.random_range(5..VOCAB)).collect();
            let mut tgt = src.clone();
            tgt.reverse();
            tgt.truncate(rng.random_range(4..10));
            Sample { src, tgt }
        })
        .collect()
}

fn cfg(variant: ModelVariant, kernel: KernelPolicy) -> Seq2SeqConfig {
    Seq2SeqConfig {
        vocab: VOCAB,
        embed_dim: 48,
        hidden: 64,
        variant,
        seed: 5,
        lr: 2e-3,
        clip: 2.0,
        batch: 16,
        bos: 0,
        eos: 1,
        max_decode_len: 16,
        threads: 1,
        kernel,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median wall time of `reps` training epochs (one untimed warm-up).
fn time_epochs(model: &mut Seq2Seq, samples: &[Sample], reps: usize) -> f64 {
    model.train_epoch(samples);
    median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                black_box(model.train_epoch(samples));
                t.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("NV_EXP_TRAIN_QUICK").is_ok();
    let reps = if quick { 3 } else { 5 };
    let samples = corpus(48);
    // Source and target tokens both pass through the LSTM stack each
    // forward+backward step (+1 for the EOS the decoder must emit).
    let tokens_per_epoch: usize =
        samples.iter().map(|s| s.src.len() + s.tgt.len() + 1).sum();

    let mut variants = serde_json::Map::new();
    let mut min_speedup = f64::INFINITY;
    for variant in ModelVariant::ALL {
        // Correctness gate first: the kernels under measurement must be
        // bit-identical to the naive oracle (losses AND parameters).
        let mut fast_probe = Seq2Seq::new(cfg(variant, KernelPolicy::Fast));
        let mut naive_probe = Seq2Seq::new(cfg(variant, KernelPolicy::NaiveOracle));
        for _ in 0..2 {
            let lf = fast_probe.train_epoch(&samples).to_bits();
            let ln = naive_probe.train_epoch(&samples).to_bits();
            assert_eq!(lf, ln, "{variant:?}: fast loss diverged from naive oracle");
        }
        assert_eq!(
            fast_probe.params_checksum(),
            naive_probe.params_checksum(),
            "{variant:?}: fast parameters diverged from naive oracle"
        );

        let mut fast = Seq2Seq::new(cfg(variant, KernelPolicy::Fast));
        let mut naive = Seq2Seq::new(cfg(variant, KernelPolicy::NaiveOracle));
        let t_fast = time_epochs(&mut fast, &samples, reps);
        let t_naive = time_epochs(&mut naive, &samples, reps);
        let speedup = t_naive / t_fast;
        min_speedup = min_speedup.min(speedup);
        variants.insert(
            variant.name().to_string(),
            serde_json::json!({
                "fast": {
                    "secs_per_epoch": t_fast,
                    "tokens_per_sec": tokens_per_epoch as f64 / t_fast,
                },
                "naive_oracle": {
                    "secs_per_epoch": t_naive,
                    "tokens_per_sec": tokens_per_epoch as f64 / t_naive,
                },
                "speedup": speedup,
                "bit_identical": true,
            }),
        );
        println!(
            "train_throughput: {:<18} fast {:>8.0} tok/s | naive {:>8.0} tok/s | {speedup:.2}x",
            variant.name(),
            tokens_per_epoch as f64 / t_fast,
            tokens_per_epoch as f64 / t_naive,
        );
    }

    // One extra *traced* fast-path epoch for attribution; tracing stays
    // disarmed during the timed runs above.
    nvbench::trace::reset();
    nvbench::trace::enable();
    let mut traced = Seq2Seq::new(cfg(ModelVariant::Copy, KernelPolicy::Fast));
    black_box(traced.train_epoch(&samples));
    nvbench::trace::disable();
    let trace = nvbench::trace::report();
    nvbench::trace::reset();
    let step = trace.span_stat("nn.step").unwrap_or_default();

    let report = serde_json::json!({
        "benchmark": "train_throughput",
        "corpus": { "samples": samples.len(), "tokens_per_epoch": tokens_per_epoch },
        "model": { "vocab": VOCAB, "embed_dim": 48, "hidden": 64, "batch": 16, "threads": 1 },
        "reps": reps,
        "variants": variants,
        "min_speedup": min_speedup,
        // From the separate traced run (copy variant, fast kernels).
        "traced_epoch": {
            "gemm_flops": trace.counter("nn.gemm.flops"),
            "tape_nodes": trace.counter("nn.tape.nodes"),
            "train_samples": trace.counter("nn.train.samples"),
            "steps": step.count,
            "step_total_ms": step.total_ns as f64 / 1e6,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap())
        .expect("write BENCH_train.json");
    println!("train_throughput: min speedup {min_speedup:.2}x → {path}");

    let mut g = c.benchmark_group("train");
    g.sample_size(if quick { 2 } else { 5 });
    let mut fast = Seq2Seq::new(cfg(ModelVariant::Copy, KernelPolicy::Fast));
    g.bench_function("epoch_copy_fast", |b| b.iter(|| fast.train_epoch(&samples)));
    let mut naive = Seq2Seq::new(cfg(ModelVariant::Copy, KernelPolicy::NaiveOracle));
    g.bench_function("epoch_copy_naive", |b| b.iter(|| naive.train_epoch(&samples)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
