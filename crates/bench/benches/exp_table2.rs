//! Regenerates the paper's table2 artifact (Quick scale) and
//! times the computation.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_table2;
use nv_bench::{context, Scale};

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    println!("{}", exp_table2(ctx));
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_table2", |b| b.iter(|| exp_table2(ctx)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
