//! Regenerates the paper's Figure 13 artifact (Quick scale) and
//! times the computation.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_fig13;
use nv_bench::{context, Scale};

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    println!("{}", exp_fig13(ctx));
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_fig13", |b| b.iter(|| exp_fig13(ctx)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
