//! Regenerates Figure 17 (tree accuracy by type × hardness, 3 variants) at
//! Quick scale and times one greedy decode.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::{exp_fig17, train_and_evaluate};
use nv_bench::{context, Scale};
use nvbench::core::Nl2VisPredictor;

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    let reports = train_and_evaluate(ctx, Scale::Quick);
    println!("{}", exp_fig17(&reports));
    let pair = &ctx.bench.pairs[ctx.split.test[0]];
    let vis = &ctx.bench.vis_objects[pair.vis_id];
    let db = ctx.bench.database(&vis.db_name).unwrap();
    let mut g = c.benchmark_group("paper");
    g.sample_size(20);
    g.bench_function("exp_fig17_decode_one", |b| {
        b.iter(|| reports[1].0.predict(&pair.nl, db))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
