//! Regenerates the Figure-7 TPC-style chart filtering sanity check.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_fig7;

fn bench(c: &mut Criterion) {
    println!("{}", exp_fig7());
    let mut g = c.benchmark_group("paper");
    g.sample_size(20);
    g.bench_function("exp_fig7", |b| b.iter(exp_fig7));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
