//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **NL smoothing strength** (the back-translation substitute): its
//!    effect on the Table-3 BLEU diversity metric — stronger smoothing must
//!    lower pairwise BLEU (more diverse variants).
//! 2. **Chart-quality filter stages**: what the expert rules alone prune vs
//!    rules + classifier (the §2.4 two-stage design).
//! 3. **Deletion-aware candidate ranking**: how many vis objects need manual
//!    NL revision with and without the deletion-free ranking bonus (the
//!    §3.1 man-hour driver).
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::{context, Scale};
use nvbench::ast::ChartType;
use nvbench::data::{ColumnType, Value};
use nvbench::quality::{expert_rules, ChartFeatures, DeepEyeFilter};
use nvbench::render::{ChartData, ChartRow};
use nvbench::stats::{avg_pairwise_bleu, simple_tokens};
use nvbench::synth::smooth;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoothing_ablation() -> String {
    let base = [
        "Show the total sales for each region in a bar chart.",
        "Show the total sales for each region in a bar chart.",
        "Show the total sales for each region in a bar chart.",
        "Show the total sales for each region in a bar chart.",
    ];
    let mut out = String::from("Ablation 1: smoothing strength vs pairwise BLEU\n");
    for strength in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let variants: Vec<Vec<String>> = base
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut rng = StdRng::seed_from_u64(i as u64 * 31 + 7);
                simple_tokens(&smooth(&mut rng, s, strength))
            })
            .collect();
        let refs: Vec<Vec<&str>> = variants
            .iter()
            .map(|v| v.iter().map(String::as_str).collect())
            .collect();
        let bleu = avg_pairwise_bleu(&refs, 4);
        out.push_str(&format!("  strength {strength:.2} → BLEU {bleu:.3}\n"));
    }
    out
}

fn filter_stage_ablation() -> String {
    let filter = DeepEyeFilter::new(42);
    let mut rules_only = 0usize;
    let mut both = 0usize;
    let mut total = 0usize;
    // A sweep of synthetic charts across cardinalities and types.
    for chart in ChartType::ALL {
        for k in [1usize, 2, 4, 8, 15, 30, 60, 120] {
            let grouped = chart.is_grouped();
            let cd = ChartData {
                chart,
                x_name: "x".into(),
                y_name: "y".into(),
                series_name: grouped.then(|| "s".into()),
                x_type: if matches!(chart, ChartType::Scatter | ChartType::GroupingScatter) {
                    ColumnType::Quantitative
                } else {
                    ColumnType::Categorical
                },
                y_type: ColumnType::Quantitative,
                rows: (0..k * if grouped { 3 } else { 1 })
                    .map(|i| ChartRow {
                        x: if matches!(chart, ChartType::Scatter | ChartType::GroupingScatter) {
                            Value::Int((i % k) as i64)
                        } else {
                            Value::text(format!("c{}", i % k))
                        },
                        y: Value::Int(((i * 31) % 97 + 1) as i64),
                        series: grouped.then(|| Value::text(format!("g{}", i / k))),
                    })
                    .collect(),
            };
            total += 1;
            let f = ChartFeatures::of(&cd);
            if !expert_rules(&f).is_pass() {
                rules_only += 1;
                both += 1;
            } else if !filter.is_good(&cd) {
                both += 1;
            }
        }
    }
    format!(
        "Ablation 2: filter stages over {total} synthetic charts\n  \
         expert rules alone prune {rules_only}; rules + classifier prune {both}\n"
    )
}

fn ranking_ablation() -> String {
    // The shipped pipeline ranks deletion-free candidates higher; measure
    // the manual-revision share it achieves on the Quick benchmark.
    let ctx = context(Scale::Quick);
    let manual = ctx
        .bench
        .vis_objects
        .iter()
        .filter(|v| v.needed_manual_nl)
        .count();
    format!(
        "Ablation 3: deletion-aware ranking → {manual}/{} vis objects need manual NL \
         ({:.1}%; paper: 25.4%)\n",
        ctx.bench.vis_objects.len(),
        manual as f64 / ctx.bench.vis_objects.len().max(1) as f64 * 100.0
    )
}

fn bench(c: &mut Criterion) {
    println!("{}", smoothing_ablation());
    println!("{}", filter_stage_ablation());
    println!("{}", ranking_ablation());
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("smoothing_sweep", |b| b.iter(smoothing_ablation));
    g.bench_function("filter_stage_sweep", |b| b.iter(filter_stage_ablation));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
