//! Regenerates the paper's Figure 12 artifact (Quick scale) and
//! times the computation.
use criterion::{criterion_group, criterion_main, Criterion};
use nv_bench::experiments::exp_fig12;
use nv_bench::{context, Scale};

fn bench(c: &mut Criterion) {
    let ctx = context(Scale::Quick);
    println!("{}", exp_fig12(ctx));
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("exp_fig12", |b| b.iter(|| exp_fig12(ctx)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
