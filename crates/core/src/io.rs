//! Benchmark (de)serialization: save a synthesized NvBench to JSON and load
//! it back — the release format a downstream consumer (or a training
//! pipeline on another machine) would use.

use crate::benchmark::{NlVisPair, NvBench, VisObject};
use nv_data::Database;
use serde::{Deserialize, Serialize};

/// Versioned on-disk envelope.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    format: String,
    version: u32,
    databases: Vec<Database>,
    vis_objects: Vec<VisObject>,
    pairs: Vec<NlVisPair>,
}

const FORMAT: &str = "nvbench-rs";
const VERSION: u32 = 1;

/// Serialization/IO error.
#[derive(Debug)]
pub enum IoError {
    Json(String),
    BadFormat(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(m) => write!(f, "benchmark JSON error: {m}"),
            IoError::BadFormat(m) => write!(f, "bad benchmark file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serialize a benchmark to a JSON string.
pub fn to_json(bench: &NvBench) -> Result<String, IoError> {
    let env = Envelope {
        format: FORMAT.into(),
        version: VERSION,
        databases: bench.databases.clone(),
        vis_objects: bench.vis_objects.clone(),
        pairs: bench.pairs.clone(),
    };
    serde_json::to_string(&env).map_err(|e| IoError::Json(e.to_string()))
}

/// Load a benchmark from a JSON string, validating the envelope and the
/// internal index invariants.
pub fn from_json(json: &str) -> Result<NvBench, IoError> {
    let env: Envelope =
        serde_json::from_str(json).map_err(|e| IoError::Json(e.to_string()))?;
    if env.format != FORMAT {
        return Err(IoError::BadFormat(format!("unknown format '{}'", env.format)));
    }
    if env.version != VERSION {
        return Err(IoError::BadFormat(format!(
            "unsupported version {} (expected {VERSION})",
            env.version
        )));
    }
    // Integrity checks: dense ids and valid cross-references.
    for (i, v) in env.vis_objects.iter().enumerate() {
        if v.vis_id != i {
            return Err(IoError::BadFormat(format!("vis id {} at index {i}", v.vis_id)));
        }
        if !env
            .databases
            .iter()
            .any(|d| d.name.eq_ignore_ascii_case(&v.db_name))
        {
            return Err(IoError::BadFormat(format!("vis {} references unknown db {}", i, v.db_name)));
        }
    }
    for (i, p) in env.pairs.iter().enumerate() {
        if p.pair_id != i || p.vis_id >= env.vis_objects.len() {
            return Err(IoError::BadFormat(format!("bad pair at index {i}")));
        }
    }
    Ok(NvBench {
        databases: env.databases,
        vis_objects: env.vis_objects,
        pairs: env.pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(19));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn round_trips_fully() {
        let b = bench();
        let json = to_json(&b).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.pairs, b.pairs);
        assert_eq!(back.vis_objects.len(), b.vis_objects.len());
        assert_eq!(back.databases, b.databases);
        // Trees survive (vql strings and parsed trees both).
        for (a, c) in b.vis_objects.iter().zip(&back.vis_objects) {
            assert_eq!(a.tree, c.tree);
            assert_eq!(a.vql, c.vql);
            assert_eq!(a.hardness, c.hardness);
        }
        // And the loaded benchmark is immediately usable.
        let split = back.split(42);
        assert_eq!(split.len(), back.pairs.len());
    }

    #[test]
    fn rejects_corrupt_envelopes() {
        let b = bench();
        let json = to_json(&b).unwrap();
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
        let wrong_fmt = json.replacen("nvbench-rs", "other-fmt", 1);
        assert!(matches!(from_json(&wrong_fmt), Err(IoError::BadFormat(_))));
        let wrong_ver = json.replacen("\"version\":1", "\"version\":9", 1);
        assert!(matches!(from_json(&wrong_ver), Err(IoError::BadFormat(_))));
    }

    #[test]
    fn detects_dangling_references() {
        let mut b = bench();
        b.pairs[0].vis_id = 99_999;
        let json = to_json(&b).unwrap();
        let e = from_json(&json).unwrap_err();
        assert!(e.to_string().contains("bad pair"), "{e}");
    }
}
