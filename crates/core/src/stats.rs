//! Benchmark statistics — the computations behind Table 2, Table 3 and
//! Figures 8–10 of the paper.

use crate::benchmark::NvBench;
use nv_ast::{ChartType, Hardness};
use nv_data::ColumnType;
use nv_stats::{avg_pairwise_bleu, fit_best, outlier_fraction, simple_tokens, DistFamily, OutlierClass, SkewClass, Summary};
use std::collections::BTreeMap;

/// Table-2 style dataset statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub n_databases: usize,
    pub n_tables: usize,
    pub n_domains: usize,
    /// Domain → table count, sorted descending (the "Top-5 domains" row).
    pub domain_tables: Vec<(String, usize)>,
    pub n_columns: usize,
    pub avg_columns: f64,
    pub max_columns: usize,
    pub min_columns: usize,
    pub n_rows: usize,
    pub avg_rows: f64,
    pub max_rows: usize,
    pub min_rows: usize,
    /// Column-type counts (C, T, Q).
    pub type_counts: BTreeMap<char, usize>,
}

impl DatasetStats {
    pub fn of(bench: &NvBench) -> DatasetStats {
        let mut domain_tables: BTreeMap<String, usize> = BTreeMap::new();
        let mut cols_per_table = Vec::new();
        let mut rows_per_table = Vec::new();
        let mut type_counts: BTreeMap<char, usize> = BTreeMap::new();
        let mut domains: std::collections::HashSet<&str> = Default::default();
        for db in &bench.databases {
            domains.insert(&db.domain);
            *domain_tables.entry(db.domain.clone()).or_insert(0) += db.tables.len();
            for t in &db.tables {
                cols_per_table.push(t.n_cols());
                rows_per_table.push(t.n_rows());
                for c in &t.schema.columns {
                    *type_counts.entry(c.ctype.letter()).or_insert(0) += 1;
                }
            }
        }
        let mut domain_tables: Vec<(String, usize)> = domain_tables.into_iter().collect();
        domain_tables.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let n_tables = cols_per_table.len();
        let n_columns: usize = cols_per_table.iter().sum();
        let n_rows: usize = rows_per_table.iter().sum();
        DatasetStats {
            n_databases: bench.databases.len(),
            n_tables,
            n_domains: domains.len(),
            domain_tables,
            n_columns,
            avg_columns: n_columns as f64 / n_tables.max(1) as f64,
            max_columns: cols_per_table.iter().copied().max().unwrap_or(0),
            min_columns: cols_per_table.iter().copied().min().unwrap_or(0),
            n_rows,
            avg_rows: n_rows as f64 / n_tables.max(1) as f64,
            max_rows: rows_per_table.iter().copied().max().unwrap_or(0),
            min_rows: rows_per_table.iter().copied().min().unwrap_or(0),
            type_counts,
        }
    }

    /// Fraction of columns with the given class letter.
    pub fn type_pct(&self, letter: char) -> f64 {
        let total: usize = self.type_counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.type_counts.get(&letter).unwrap_or(&0) as f64 / total as f64 * 100.0
    }
}

/// One Table-3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartTypeRow {
    pub chart: ChartType,
    pub n_vis: usize,
    pub n_pairs: usize,
    pub pairs_per_vis: f64,
    pub avg_words: f64,
    pub max_words: usize,
    pub min_words: usize,
    /// Average pairwise BLEU of the NL variants for each vis (lower = more
    /// diverse).
    pub avg_bleu: f64,
}

/// Compute Table 3 (per chart type, plus an "All" row at the end).
pub fn table3(bench: &NvBench) -> Vec<ChartTypeRow> {
    let mut rows = Vec::new();
    let mut all_charts: Vec<Option<ChartType>> =
        ChartType::ALL.iter().copied().map(Some).collect();
    all_charts.push(None); // the "All types" row
    for chart in all_charts {
        let vis_ids: Vec<usize> = bench
            .vis_objects
            .iter()
            .filter(|v| chart.is_none() || Some(v.chart) == chart)
            .map(|v| v.vis_id)
            .collect();
        let vis_set: std::collections::HashSet<usize> = vis_ids.iter().copied().collect();
        let pairs: Vec<&crate::benchmark::NlVisPair> = bench
            .pairs
            .iter()
            .filter(|p| vis_set.contains(&p.vis_id))
            .collect();
        let word_counts: Vec<usize> =
            pairs.iter().map(|p| p.nl.split_whitespace().count()).collect();
        // BLEU: average over vis objects of the pairwise BLEU among their
        // variants.
        let mut bleu_sum = 0.0;
        let mut bleu_n = 0usize;
        for &vid in &vis_ids {
            let toks: Vec<Vec<String>> = pairs
                .iter()
                .filter(|p| p.vis_id == vid)
                .map(|p| simple_tokens(&p.nl))
                .collect();
            if toks.len() >= 2 {
                let refs: Vec<Vec<&str>> = toks
                    .iter()
                    .map(|t| t.iter().map(String::as_str).collect())
                    .collect();
                bleu_sum += avg_pairwise_bleu(&refs, 4);
                bleu_n += 1;
            }
        }
        rows.push(ChartTypeRow {
            chart: chart.unwrap_or(ChartType::Bar),
            n_vis: vis_ids.len(),
            n_pairs: pairs.len(),
            pairs_per_vis: pairs.len() as f64 / vis_ids.len().max(1) as f64,
            avg_words: word_counts.iter().sum::<usize>() as f64
                / word_counts.len().max(1) as f64,
            max_words: word_counts.iter().copied().max().unwrap_or(0),
            min_words: word_counts.iter().copied().min().unwrap_or(0),
            avg_bleu: if bleu_n > 0 { bleu_sum / bleu_n as f64 } else { 0.0 },
        });
    }
    rows
}

/// Figure-10 matrix: vis counts by (chart type, hardness).
pub fn type_hardness_matrix(bench: &NvBench) -> BTreeMap<(ChartType, Hardness), usize> {
    let mut m = BTreeMap::new();
    for v in &bench.vis_objects {
        *m.entry((v.chart, v.hardness)).or_insert(0) += 1;
    }
    m
}

/// Figure-9 column-level census over the quantitative columns of the
/// benchmark's databases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnCensus {
    /// Distribution family → column count; `None` bucket under key `"None"`.
    pub fits: BTreeMap<String, usize>,
    pub skew: BTreeMap<SkewClass, usize>,
    pub outliers: BTreeMap<OutlierClass, usize>,
    pub n_quant_columns: usize,
}

pub fn column_census(bench: &NvBench) -> ColumnCensus {
    let mut census = ColumnCensus::default();
    for db in &bench.databases {
        for t in &db.tables {
            for (ci, col) in t.schema.columns.iter().enumerate() {
                if col.ctype != ColumnType::Quantitative {
                    continue;
                }
                let values: Vec<f64> = t
                    .rows
                    .iter()
                    .filter_map(|r| r[ci].as_f64())
                    .collect();
                if values.len() < 5 {
                    continue;
                }
                census.n_quant_columns += 1;
                let fit = fit_best(&values);
                let key = fit
                    .best
                    .map(|f: DistFamily| f.abbrev().to_string())
                    .unwrap_or_else(|| "None".into());
                *census.fits.entry(key).or_insert(0) += 1;
                if let Some(s) = Summary::of(&values) {
                    *census.skew.entry(s.skew_class()).or_insert(0) += 1;
                }
                let of = outlier_fraction(&values);
                *census.outliers.entry(OutlierClass::of(of)).or_insert(0) += 1;
            }
        }
    }
    census
}

/// Labeled histogram buckets: `(label, count)` per bucket.
pub type LabeledCounts = Vec<(String, usize)>;

/// Figure-8 histograms: tables bucketed by #columns and by #rows.
pub fn size_histograms(bench: &NvBench) -> (LabeledCounts, LabeledCounts) {
    let col_buckets = [(2usize, 3usize), (4, 5), (6, 7), (8, 10), (11, 1000)];
    let row_buckets: [(usize, usize); 6] =
        [(1, 4), (5, 20), (21, 100), (101, 500), (501, 2000), (2001, usize::MAX)];
    let mut cols: Vec<(String, usize)> = col_buckets
        .iter()
        .map(|(lo, hi)| {
            (
                if *hi >= 1000 { format!("{lo}+") } else { format!("{lo}-{hi}") },
                0,
            )
        })
        .collect();
    let mut rows: Vec<(String, usize)> = row_buckets
        .iter()
        .map(|(lo, hi)| {
            (
                if *hi == usize::MAX { format!("{lo}+") } else { format!("{lo}-{hi}") },
                0,
            )
        })
        .collect();
    for db in &bench.databases {
        for t in &db.tables {
            for (i, (lo, hi)) in col_buckets.iter().enumerate() {
                if (*lo..=*hi).contains(&t.n_cols()) {
                    cols[i].1 += 1;
                    break;
                }
            }
            for (i, (lo, hi)) in row_buckets.iter().enumerate() {
                if (*lo..=*hi).contains(&t.n_rows()) {
                    rows[i].1 += 1;
                    break;
                }
            }
        }
    }
    (cols, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(7));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn dataset_stats_consistent() {
        let b = bench();
        let s = DatasetStats::of(&b);
        assert_eq!(s.n_databases, 4);
        assert!(s.n_tables >= 12);
        assert!(s.n_columns > s.n_tables);
        assert!(s.avg_columns >= 2.0);
        assert!(s.min_columns >= 2);
        assert!(s.max_rows >= s.min_rows);
        let total_pct = s.type_pct('C') + s.type_pct('T') + s.type_pct('Q');
        assert!((total_pct - 100.0).abs() < 1e-9);
        // Categorical-heavy mix like the paper's.
        assert!(s.type_pct('C') > 50.0, "C = {}", s.type_pct('C'));
        assert!(!s.domain_tables.is_empty());
    }

    #[test]
    fn table3_rows_sum_to_all() {
        let b = bench();
        let rows = table3(&b);
        assert_eq!(rows.len(), 8);
        let all = rows.last().unwrap();
        let sum_vis: usize = rows[..7].iter().map(|r| r.n_vis).sum();
        let sum_pairs: usize = rows[..7].iter().map(|r| r.n_pairs).sum();
        assert_eq!(sum_vis, all.n_vis);
        assert_eq!(sum_pairs, all.n_pairs);
        assert!(all.n_vis > 0);
        assert!(all.avg_words > 5.0, "avg words {}", all.avg_words);
        assert!(all.avg_bleu > 0.0 && all.avg_bleu < 1.0, "bleu {}", all.avg_bleu);
    }

    #[test]
    fn type_hardness_matrix_covers_all_vis() {
        let b = bench();
        let m = type_hardness_matrix(&b);
        let total: usize = m.values().sum();
        assert_eq!(total, b.vis_objects.len());
    }

    #[test]
    fn census_runs_over_quant_columns() {
        let b = bench();
        let c = column_census(&b);
        assert!(c.n_quant_columns > 0);
        let fit_total: usize = c.fits.values().sum();
        assert_eq!(fit_total, c.n_quant_columns);
        let skew_total: usize = c.skew.values().sum();
        assert_eq!(skew_total, c.n_quant_columns);
    }

    #[test]
    fn histograms_cover_every_table() {
        let b = bench();
        let (cols, rows) = size_histograms(&b);
        let n_tables: usize = b.databases.iter().map(|d| d.tables.len()).sum();
        assert_eq!(cols.iter().map(|(_, c)| c).sum::<usize>(), n_tables);
        assert_eq!(rows.iter().map(|(_, c)| c).sum::<usize>(), n_tables);
    }
}
