//! A minimal deterministic work-queue thread pool (no dependencies).
//!
//! [`map_ordered`] fans a function over a slice from a shared atomic work
//! queue and returns the results **in input order**, so callers observe
//! exactly what a sequential `iter().map()` would have produced no matter
//! how the OS schedules the workers. Each worker owns a private state value
//! (built by `init`) that lives for the whole run — the synthesizer uses it
//! to hold per-database execution caches.
//!
//! Design notes:
//! * scheduling is a single `AtomicUsize` fetch-add — workers race for the
//!   next index, which balances uneven per-item cost better than static
//!   chunking (synthesis cost varies wildly with SQL complexity);
//! * results flow back over an `mpsc` channel tagged with their index and
//!   are written into a pre-sized slot vector, so the merge is O(n) and
//!   allocation-free;
//! * `std::thread::scope` lets workers borrow the input slice and the
//!   closures directly — no `Arc`, no `'static` bounds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Apply `work` to every item of `items` using up to `threads` workers,
/// returning results in input order.
///
/// `init` runs once per worker to build its private mutable state; `work`
/// receives that state plus the item's index. With `threads <= 1` (or one
/// item) everything runs inline on the caller's thread — same code path,
/// no pool.
pub fn map_ordered<T, R, S, I, F>(items: &[T], threads: usize, init: I, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| work(&mut state, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, init, work) = (&next, &init, &work);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = work(&mut state, i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the remaining senders; dropping ours lets `rx`
        // close once they all finish.
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index is processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_ordered(&items, 4, || (), |_, i, x| (i, x * 3));
        for (i, (idx, v)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, items[i] * 3);
        }
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let seq = map_ordered(&items, 1, || (), |_, i, x| x.wrapping_mul(i as u64 + 7));
        for threads in [2, 3, 4, 8, 64] {
            let par = map_ordered(&items, threads, || (), |_, i, x| {
                x.wrapping_mul(i as u64 + 7)
            });
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts its own items; the counts must total the input
        // and every worker that ran processed at least one item.
        let items: Vec<u32> = (0..40).collect();
        let inits = AtomicUsize::new(0);
        let out = map_ordered(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        assert!(out.iter().all(|&c| c >= 1 && c <= items.len()));
        let workers = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&workers), "{workers} workers");
    }

    #[test]
    fn empty_and_oversized() {
        let none: Vec<u8> = vec![];
        assert!(map_ordered(&none, 8, || (), |_, _, x| *x).is_empty());
        let one = [5u8];
        assert_eq!(map_ordered(&one, 8, || (), |_, _, x| *x), vec![5]);
    }

    #[test]
    fn borrows_captured_environment() {
        let base = vec![10u64, 20, 30];
        let items = [0usize, 1, 2, 1];
        let out = map_ordered(&items, 2, || (), |_, _, &i| base[i]);
        assert_eq!(out, vec![10, 20, 30, 20]);
    }
}
