//! A minimal deterministic work-queue thread pool (no dependencies).
//!
//! [`map_ordered`] fans a function over a slice from a shared atomic work
//! queue and returns the results **in input order**, so callers observe
//! exactly what a sequential `iter().map()` would have produced no matter
//! how the OS schedules the workers. Each worker owns a private state value
//! (built by `init`) that lives for the whole run — the synthesizer uses it
//! to hold per-database execution caches.
//!
//! Design notes:
//! * scheduling is a single `AtomicUsize` fetch-add — workers race for the
//!   next index, which balances uneven per-item cost better than static
//!   chunking (synthesis cost varies wildly with SQL complexity);
//! * results flow back over an `mpsc` channel tagged with their index and
//!   are written into a pre-sized slot vector, so the merge is O(n) and
//!   allocation-free;
//! * `std::thread::scope` lets workers borrow the input slice and the
//!   closures directly — no `Arc`, no `'static` bounds.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Record the shape of one fan-out when tracing is armed.
fn trace_job(items: usize, threads: usize) {
    if nv_trace::enabled() {
        nv_trace::count("par.jobs", 1);
        nv_trace::count("par.tasks", items as u64);
        nv_trace::gauge_max("par.threads", threads as u64);
    }
}

/// Record how deep the shared queue still is at the moment index `i` is
/// claimed. `gauge_max` keeps the peak, which for a fetch-add queue is the
/// depth seen by the very first dequeue — but recording every claim keeps
/// the probe honest if the scheduling strategy ever changes.
fn trace_queue_depth(items: usize, i: usize) {
    if nv_trace::enabled() {
        nv_trace::gauge_max("par.queue.peak_depth", items.saturating_sub(i) as u64);
    }
}

/// Times one work item and reports it both pool-wide (`par/task`) and
/// per-worker (`par/worker<w>/task`) so skew between workers is visible.
/// All cost is behind the armed check: disabled tracing takes no timestamp.
struct TaskTimer {
    start: Option<(Instant, usize)>,
}

impl TaskTimer {
    fn start(worker: usize) -> Self {
        Self {
            start: nv_trace::enabled().then(|| (Instant::now(), worker)),
        }
    }

    /// Report a measurement taken elsewhere (isolated items already time
    /// themselves for `Isolated::elapsed_us`) without double-clocking.
    fn report(worker: usize, elapsed_ns: u64) {
        if nv_trace::enabled() {
            nv_trace::record_span("par/task", elapsed_ns);
            nv_trace::record_span(&format!("par/worker{worker}/task"), elapsed_ns);
        }
    }

    fn finish(self) {
        if let Some((start, worker)) = self.start {
            Self::report(worker, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Count a caught panic and (if the worker's private state was rebuilt or
/// the worker retired) the replacement event that followed it.
fn trace_panic_outcome(rebuilt: bool) {
    if nv_trace::enabled() {
        nv_trace::count("par.panics", 1);
        if rebuilt {
            nv_trace::count("par.worker_replacements", 1);
        } else {
            nv_trace::count("par.worker_retirements", 1);
        }
    }
}

/// Apply `work` to every item of `items` using up to `threads` workers,
/// returning results in input order.
///
/// `init` runs once per worker to build its private mutable state; `work`
/// receives that state plus the item's index. With `threads <= 1` (or one
/// item) everything runs inline on the caller's thread — same code path,
/// no pool.
pub fn map_ordered<T, R, S, I, F>(items: &[T], threads: usize, init: I, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    trace_job(items.len(), threads);
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let timer = TaskTimer::start(0);
                let r = work(&mut state, i, item);
                timer.finish();
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let (next, init, work) = (&next, &init, &work);
            scope.spawn(move || {
                // Flushing inside the closure (not from the TLS destructor,
                // which is not ordered before the scoped join) makes the
                // worker's trace data visible to a report taken right after
                // this pool returns.
                let _flush = nv_trace::flush_on_exit();
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    trace_queue_depth(items.len(), i);
                    let timer = TaskTimer::start(w);
                    let r = work(&mut state, i, &items[i]);
                    timer.finish();
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the remaining senders; dropping ours lets `rx`
        // close once they all finish.
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index is processed exactly once"))
        .collect()
}

/// Reduce `items` with a **fixed-order pairwise tree**: round after round,
/// neighbors `(0,1), (2,3), …` merge (an odd tail carries over) until one
/// value remains. The combination tree depends only on `items.len()`, never
/// on thread count or scheduling — which is what makes parallel gradient
/// accumulation bit-identical across 1/2/4 workers: [`map_ordered`] returns
/// per-item results in input order, and this folds them along one fixed
/// tree regardless of which worker produced what.
///
/// Returns `None` for an empty input. `merge(a, b)` must treat `a` as the
/// left (lower-index) operand — float addition is commutative per element,
/// but keeping the convention makes the tree order self-documenting.
pub fn tree_reduce<T>(mut items: Vec<T>, mut merge: impl FnMut(T, T) -> T) -> Option<T> {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

/// The outcome of one item processed by [`map_ordered_isolated`]: the work
/// closure's return value, or the message of the panic it was killed by,
/// plus the wall-clock time the item took either way.
#[derive(Debug, Clone, PartialEq)]
pub struct Isolated<R> {
    /// `Ok` is the work's result; `Err` carries the caught panic's payload
    /// (or a placeholder when the worker died before reaching the item).
    pub result: Result<R, String>,
    /// Wall-clock time spent on this item, in microseconds.
    pub elapsed_us: u64,
}

thread_local! {
    /// Set while a worker runs one item inside `catch_unwind`, so the
    /// chained panic hook stays silent for panics we capture and report.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for panics occurring inside [`map_ordered_isolated`]
/// items — they are caught and surfaced in the return value, so the noise
/// would be duplicate and, under fault injection, overwhelming. Panics on
/// any other thread still reach the previously installed hook.
fn install_capturing_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Render a caught panic payload as a message string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run `work` on one item with panic isolation: the panic (if any) is
/// caught, its worker-private state is assumed poisoned and rebuilt by the
/// caller, and the item reports `Err(message)` instead of killing the run.
fn run_isolated<T, R, S>(
    state: &mut S,
    i: usize,
    item: &T,
    work: &(impl Fn(&mut S, usize, &T) -> R + Sync),
) -> Isolated<R> {
    let start = Instant::now();
    CAPTURING.with(|c| c.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| work(state, i, item)));
    CAPTURING.with(|c| c.set(false));
    Isolated {
        result: outcome.map_err(panic_message),
        elapsed_us: start.elapsed().as_micros() as u64,
    }
}

/// [`map_ordered`] with per-item panic isolation: a panicking item becomes
/// `Err(panic message)` in its slot instead of tearing the run down, and
/// every other item still produces its normal result.
///
/// Fault containment, in order of severity:
/// * a panic inside `work` is caught per item (`catch_unwind`); the worker
///   survives, but its private state — which the panic may have left
///   half-updated — is discarded and rebuilt with `init()` before the next
///   item;
/// * if that re-`init` itself panics, the worker exits; the shared atomic
///   queue means its remaining items are simply claimed by sibling workers
///   (nothing is pre-assigned, so nothing is lost);
/// * if *every* worker dies this way (or `init` fails at startup), unclaimed
///   items report `Err` with a placeholder message rather than hanging.
///
/// Caught panics are reported in the return value, so the default panic
/// hook's stderr print is suppressed for them (see
/// [`install_capturing_hook`]); panics anywhere else in the process print
/// as usual. Aborts — stack overflow, `panic = "abort"` — cannot be caught
/// by design; callers must bound recursion themselves (the SQL parser's
/// depth limit exists for exactly this reason).
pub fn map_ordered_isolated<T, R, S, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    work: F,
) -> Vec<Isolated<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    install_capturing_hook();
    let threads = threads.max(1).min(items.len().max(1));
    trace_job(items.len(), threads);
    if threads == 1 {
        let mut state = match catch_unwind(AssertUnwindSafe(&init)) {
            Ok(s) => Some(s),
            Err(_) => None,
        };
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let Some(st) = state.as_mut() else {
                    return Isolated {
                        result: Err("worker state initialization panicked".to_string()),
                        elapsed_us: 0,
                    };
                };
                let out = run_isolated(st, i, item, &work);
                TaskTimer::report(0, out.elapsed_us.saturating_mul(1_000));
                if out.result.is_err() {
                    state = catch_unwind(AssertUnwindSafe(&init)).ok();
                    trace_panic_outcome(state.is_some());
                }
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Isolated<R>)>();
    let mut slots: Vec<Option<Isolated<R>>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let (next, init, work) = (&next, &init, &work);
            scope.spawn(move || {
                // See map_ordered: flush before the scoped join, on every
                // exit path including retirement.
                let _flush = nv_trace::flush_on_exit();
                let Ok(mut state) = catch_unwind(AssertUnwindSafe(init)) else {
                    return; // siblings drain the queue
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    trace_queue_depth(items.len(), i);
                    let out = run_isolated(&mut state, i, &items[i], work);
                    TaskTimer::report(w, out.elapsed_us.saturating_mul(1_000));
                    let poisoned = out.result.is_err();
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                    if poisoned {
                        // The panic may have left the state half-updated;
                        // rebuild it. If rebuilding panics too, this worker
                        // retires and siblings take over.
                        match catch_unwind(AssertUnwindSafe(init)) {
                            Ok(s) => {
                                state = s;
                                trace_panic_outcome(true);
                            }
                            Err(_) => {
                                trace_panic_outcome(false);
                                return;
                            }
                        }
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or(Isolated {
                result: Err("worker died before processing this item".to_string()),
                elapsed_us: 0,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_ordered(&items, 4, || (), |_, i, x| (i, x * 3));
        for (i, (idx, v)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, items[i] * 3);
        }
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let seq = map_ordered(&items, 1, || (), |_, i, x| x.wrapping_mul(i as u64 + 7));
        for threads in [2, 3, 4, 8, 64] {
            let par = map_ordered(&items, threads, || (), |_, i, x| {
                x.wrapping_mul(i as u64 + 7)
            });
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker counts its own items; the counts must total the input
        // and every worker that ran processed at least one item.
        let items: Vec<u32> = (0..40).collect();
        let inits = AtomicUsize::new(0);
        let out = map_ordered(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        assert!(out.iter().all(|&c| c >= 1 && c <= items.len()));
        let workers = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&workers), "{workers} workers");
    }

    #[test]
    fn empty_and_oversized() {
        let none: Vec<u8> = vec![];
        assert!(map_ordered(&none, 8, || (), |_, _, x| *x).is_empty());
        let one = [5u8];
        assert_eq!(map_ordered(&one, 8, || (), |_, _, x| *x), vec![5]);
    }

    #[test]
    fn borrows_captured_environment() {
        let base = vec![10u64, 20, 30];
        let items = [0usize, 1, 2, 1];
        let out = map_ordered(&items, 2, || (), |_, _, &i| base[i]);
        assert_eq!(out, vec![10, 20, 30, 20]);
    }

    #[test]
    fn isolated_captures_panics_without_losing_other_items() {
        let items: Vec<u32> = (0..50).collect();
        for threads in [1, 4] {
            let out = map_ordered_isolated(&items, threads, || (), |_, _, &x| {
                if x % 7 == 3 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, iso) in out.iter().enumerate() {
                let x = items[i];
                match &iso.result {
                    Ok(v) => {
                        assert_ne!(x % 7, 3, "item {x} should have panicked");
                        assert_eq!(*v, x * 2);
                    }
                    Err(m) => {
                        assert_eq!(x % 7, 3, "item {x} should not have panicked");
                        assert_eq!(m, &format!("boom at {x}"), "threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn isolated_rebuilds_worker_state_after_a_panic() {
        // State counts items since (re)init; a panic must reset the count,
        // so no item after a panic ever observes stale state.
        let items: Vec<u32> = (0..30).collect();
        for threads in [1, 3] {
            let out = map_ordered_isolated(
                &items,
                threads,
                || 0usize,
                |since_init, _, &x| {
                    *since_init += 1;
                    if x == 10 || x == 20 {
                        panic!("die");
                    }
                    *since_init
                },
            );
            // Items processed right after a panic see a freshly built state
            // (count restarts at 1).
            for (i, iso) in out.iter().enumerate() {
                if let Ok(count) = iso.result {
                    assert!(count >= 1 && count <= items.len(), "item {i}: {count}");
                }
            }
            let panics = out.iter().filter(|o| o.result.is_err()).count();
            assert_eq!(panics, 2, "threads={threads}");
        }
    }

    #[test]
    fn isolated_matches_plain_map_when_nothing_panics() {
        let items: Vec<u64> = (0..40).collect();
        let plain = map_ordered(&items, 3, || (), |_, i, x| x.wrapping_mul(i as u64 + 1));
        let iso = map_ordered_isolated(&items, 3, || (), |_, i, x| {
            x.wrapping_mul(i as u64 + 1)
        });
        let unwrapped: Vec<u64> = iso.into_iter().map(|o| o.result.unwrap()).collect();
        assert_eq!(plain, unwrapped);
    }

    #[test]
    fn isolated_survives_init_panics() {
        // An init that always panics must not hang or abort the run — every
        // slot reports an error instead.
        let items: Vec<u8> = vec![1, 2, 3];
        for threads in [1, 2] {
            let out = map_ordered_isolated(
                &items,
                threads,
                || -> () { panic!("init dies") },
                |_, _, &x| x,
            );
            assert_eq!(out.len(), 3);
            assert!(out.iter().all(|o| o.result.is_err()), "threads={threads}");
        }
    }

    #[test]
    fn tree_reduce_pairs_in_fixed_order() {
        // Strings expose the combination tree: ((a·b)·(c·d))·e for 5 items.
        let items: Vec<String> = ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect();
        let out = tree_reduce(items, |a, b| format!("({a}{b})"));
        assert_eq!(out.unwrap(), "(((ab)(cd))e)");
        // Degenerate sizes.
        assert_eq!(tree_reduce(Vec::<u8>::new(), |a, _| a), None);
        assert_eq!(tree_reduce(vec![7u8], |a, _| a), Some(7));
        assert_eq!(tree_reduce(vec![1u32, 2], |a, b| a + b), Some(3));
    }

    #[test]
    fn isolated_records_elapsed_time() {
        let items = [1u8, 2];
        let out = map_ordered_isolated(&items, 1, || (), |_, _, &x| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            x
        });
        assert!(out.iter().all(|o| o.elapsed_us >= 1_000), "{out:?}");
    }
}
