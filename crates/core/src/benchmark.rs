//! The nvBench container: synthesized visualizations, their (NL, VIS) pairs,
//! and dataset splits.

use nv_ast::{ChartType, Hardness, TreeEdit, VisQuery};
use nv_data::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One distinct synthesized visualization (a *vis object*).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisObject {
    /// Dense id within the benchmark.
    pub vis_id: usize,
    pub db_name: String,
    /// The id of the source (NL, SQL) pair in the input corpus.
    pub source_pair_id: usize,
    /// The VIS tree.
    pub tree: VisQuery,
    /// Canonical VQL string of `tree` (the dedup key).
    pub vql: String,
    pub chart: ChartType,
    pub hardness: Hardness,
    /// The tree-edit record Δ that produced this tree.
    pub edit: TreeEdit,
    /// Whether NL synthesis required the (simulated) manual revision pass.
    pub needed_manual_nl: bool,
}

/// One (NL, VIS) pair of the benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NlVisPair {
    /// Dense id within the benchmark.
    pub pair_id: usize,
    /// Index into [`NvBench::vis_objects`].
    pub vis_id: usize,
    pub nl: String,
}

/// The synthesized NL2VIS benchmark.
#[derive(Debug, Clone)]
pub struct NvBench {
    pub databases: Vec<Database>,
    pub vis_objects: Vec<VisObject>,
    pub pairs: Vec<NlVisPair>,
}

impl NvBench {
    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }

    pub fn vis(&self, vis_id: usize) -> &VisObject {
        &self.vis_objects[vis_id]
    }

    /// All pairs sharing one vis object.
    pub fn pairs_of_vis(&self, vis_id: usize) -> Vec<&NlVisPair> {
        self.pairs.iter().filter(|p| p.vis_id == vis_id).collect()
    }

    /// Average NL variants per vis — Table 3's `#-(nl,vis)/#-vis`.
    pub fn variants_per_vis(&self) -> f64 {
        if self.vis_objects.is_empty() {
            return 0.0;
        }
        self.pairs.len() as f64 / self.vis_objects.len() as f64
    }

    /// Random pair-level split (Figure 16 / §4.2: 80% train, 4.5% val,
    /// 15.5% test).
    pub fn split(&self, seed: u64) -> Split {
        self.split_with(seed, 0.80, 0.045)
    }

    /// Split with explicit train/val fractions (test takes the remainder).
    pub fn split_with(&self, seed: u64, train_frac: f64, val_frac: f64) -> Split {
        let mut idx: Vec<usize> = (0..self.pairs.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let n = idx.len();
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let train = idx[..n_train.min(n)].to_vec();
        let val = idx[n_train.min(n)..(n_train + n_val).min(n)].to_vec();
        let test = idx[(n_train + n_val).min(n)..].to_vec();
        Split { train, val, test }
    }
}

/// Pair-index split of the benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

impl Split {
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distribution of (chart type, hardness) over a subset of pairs — the
    /// Figure-16 heatmap.
    pub fn heatmap(bench: &NvBench, subset: &[usize]) -> Vec<((ChartType, Hardness), usize)> {
        let mut counts: std::collections::BTreeMap<(ChartType, Hardness), usize> =
            Default::default();
        for &pi in subset {
            let vis = &bench.vis_objects[bench.pairs[pi].vis_id];
            *counts.entry((vis.chart, vis.hardness)).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::parse_vql_str;

    fn mini_bench() -> NvBench {
        let tree = parse_vql_str(
            "visualize bar select t.a , count ( t.* ) from t group by t.a",
        )
        .unwrap();
        let vis_objects: Vec<VisObject> = (0..10)
            .map(|i| VisObject {
                vis_id: i,
                db_name: "db".into(),
                source_pair_id: i,
                vql: tree.to_vql(),
                chart: if i % 2 == 0 { ChartType::Bar } else { ChartType::Pie },
                hardness: Hardness::of(&tree),
                tree: tree.clone(),
                edit: TreeEdit::default(),
                needed_manual_nl: i % 3 == 0,
            })
            .collect();
        let pairs: Vec<NlVisPair> = (0..40)
            .map(|i| NlVisPair {
                pair_id: i,
                vis_id: i % 10,
                nl: format!("query {i}"),
            })
            .collect();
        NvBench { databases: vec![], vis_objects, pairs }
    }

    #[test]
    fn split_fractions() {
        let b = mini_bench();
        let s = b.split(42);
        assert_eq!(s.len(), 40);
        assert_eq!(s.train.len(), 32);
        assert_eq!(s.val.len(), 2);
        assert_eq!(s.test.len(), 6);
        // No overlap.
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seeded() {
        let b = mini_bench();
        assert_eq!(b.split(1), b.split(1));
        assert_ne!(b.split(1).train, b.split(2).train);
    }

    #[test]
    fn heatmap_counts_pairs() {
        let b = mini_bench();
        let s = b.split(42);
        let hm = Split::heatmap(&b, &s.train);
        let total: usize = hm.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.train.len());
        assert!(hm.iter().any(|((c, _), _)| *c == ChartType::Pie));
    }

    #[test]
    fn accessors() {
        let b = mini_bench();
        assert_eq!(b.variants_per_vis(), 4.0);
        assert_eq!(b.pairs_of_vis(3).len(), 4);
        assert!(b.database("nope").is_none());
        assert_eq!(b.vis(2).vis_id, 2);
    }
}
