//! The man-hour cost model (§3.1 and §3.3 / Figure 14).
//!
//! The paper's accounting:
//!
//! * NL edits after tree **deletions** need a human pass — the two PhD
//!   students spent ~1 minute per revised NL variant (3,500 variants for
//!   1,838 vis objects ⇒ ~2.4 days);
//! * building nvBench **from scratch** would take the measured average T3
//!   writing time, 140 seconds, per (NL, VIS) pair
//!   (140 s × 25,750 ⇒ ~1,001 hours ≈ 42 days);
//! * hence the synthesizer needs 5.7% of the from-scratch man-hours
//!   ("building from scratch takes 17.5× of our method").

use crate::benchmark::NvBench;

/// Tunable time constants (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds to manually revise one NL variant after deletions (§3.1).
    pub seconds_per_manual_edit: f64,
    /// Average seconds for an expert to write one NL query from scratch
    /// (measured in task T3, Figure 14).
    pub seconds_per_scratch_query: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { seconds_per_manual_edit: 60.0, seconds_per_scratch_query: 140.0 }
    }
}

/// The cost comparison for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Vis objects whose NL required manual revision.
    pub manual_vis_objects: usize,
    /// NL variants belonging to those vis objects.
    pub manual_nl_variants: usize,
    /// Total (NL, VIS) pairs.
    pub total_pairs: usize,
    /// Man-hours with the synthesizer (manual revisions only).
    pub synthesizer_hours: f64,
    /// Man-hours to write every NL query from scratch.
    pub scratch_hours: f64,
}

impl CostReport {
    pub fn of(bench: &NvBench, model: CostModel) -> CostReport {
        let manual_vis: Vec<usize> = bench
            .vis_objects
            .iter()
            .filter(|v| v.needed_manual_nl)
            .map(|v| v.vis_id)
            .collect();
        let manual_set: std::collections::HashSet<usize> = manual_vis.iter().copied().collect();
        let manual_nl_variants = bench
            .pairs
            .iter()
            .filter(|p| manual_set.contains(&p.vis_id))
            .count();
        let synthesizer_hours =
            manual_nl_variants as f64 * model.seconds_per_manual_edit / 3600.0;
        let scratch_hours =
            bench.pairs.len() as f64 * model.seconds_per_scratch_query / 3600.0;
        CostReport {
            manual_vis_objects: manual_vis.len(),
            manual_nl_variants,
            total_pairs: bench.pairs.len(),
            synthesizer_hours,
            scratch_hours,
        }
    }

    /// Synthesizer cost as a fraction of from-scratch cost (the paper's
    /// 5.7%).
    pub fn cost_ratio(&self) -> f64 {
        if self.scratch_hours <= 0.0 {
            return 0.0;
        }
        self.synthesizer_hours / self.scratch_hours
    }

    /// From-scratch cost as a multiple of the synthesizer cost (the paper's
    /// 17.5×).
    pub fn speedup(&self) -> f64 {
        if self.synthesizer_hours <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_hours / self.synthesizer_hours
    }

    /// Man-days at 24 h/day, matching the paper's "2.4 days"/"42 days"
    /// arithmetic (3500 min ÷ 60 ÷ 24 ≈ 2.4).
    pub fn synthesizer_days(&self) -> f64 {
        self.synthesizer_hours / 24.0
    }

    pub fn scratch_days(&self) -> f64 {
        self.scratch_hours / 24.0
    }
}

/// Reproduce the paper's own arithmetic with its published constants —
/// 1,838 manual vis objects / 3,500 variants / 25,750 pairs.
pub fn paper_reference_report() -> CostReport {
    CostReport {
        manual_vis_objects: 1838,
        manual_nl_variants: 3500,
        total_pairs: 25_750,
        synthesizer_hours: 3500.0 * 60.0 / 3600.0,
        scratch_hours: 25_750.0 * 140.0 / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::{NlVisPair, VisObject};
    use nv_ast::{ChartType, Hardness, TreeEdit};

    #[test]
    fn paper_numbers_reproduce() {
        let r = paper_reference_report();
        // ~2.4 days and ~42 days, 5.7% ratio, 17.5× speedup.
        assert!((r.synthesizer_days() - 2.43).abs() < 0.05, "{}", r.synthesizer_days());
        assert!((r.scratch_days() - 41.7).abs() < 0.5, "{}", r.scratch_days());
        assert!((r.cost_ratio() - 0.057).abs() < 0.003, "{}", r.cost_ratio());
        assert!((r.speedup() - 17.2).abs() < 0.6, "{}", r.speedup());
    }

    #[test]
    fn report_counts_manual_variants() {
        let tree = nv_ast::tokens::parse_vql_str(
            "visualize bar select t.a , count ( t.* ) from t group by t.a",
        )
        .unwrap();
        let mk_vis = |id: usize, manual: bool| VisObject {
            vis_id: id,
            db_name: "d".into(),
            source_pair_id: 0,
            vql: tree.to_vql(),
            chart: ChartType::Bar,
            hardness: Hardness::Easy,
            tree: tree.clone(),
            edit: TreeEdit::default(),
            needed_manual_nl: manual,
        };
        let bench = crate::benchmark::NvBench {
            databases: vec![],
            vis_objects: vec![mk_vis(0, true), mk_vis(1, false)],
            pairs: (0..6)
                .map(|i| NlVisPair { pair_id: i, vis_id: i % 2, nl: "q".into() })
                .collect(),
        };
        let r = CostReport::of(&bench, CostModel::default());
        assert_eq!(r.manual_vis_objects, 1);
        assert_eq!(r.manual_nl_variants, 3);
        assert_eq!(r.total_pairs, 6);
        assert!(r.cost_ratio() < 1.0);
        assert!(r.speedup() > 1.0);
    }

    #[test]
    fn zero_manual_cost() {
        let bench = crate::benchmark::NvBench {
            databases: vec![],
            vis_objects: vec![],
            pairs: vec![],
        };
        let r = CostReport::of(&bench, CostModel::default());
        assert_eq!(r.cost_ratio(), 0.0);
        assert_eq!(r.speedup(), f64::INFINITY);
    }
}
