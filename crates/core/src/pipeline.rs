//! The end-to-end nl2sql-to-nl2vis pipeline (paper Figure 3).
//!
//! Input: an (NL, SQL) pair plus its database. Output: a set of (NL, VIS)
//! pairs. Per pair: parse the SQL into the unified AST (`nv-sql`), generate
//! candidate VIS trees by tree edits (`nv-synth::edits`), prune bad charts
//! with the DeepEye-style filter (`nv-synth::filter`), keep the top
//! candidates, and synthesize NL variants for each surviving tree
//! (`nv-synth::nledit`). Corpus-level driving assembles the [`NvBench`]
//! benchmark with global vis deduplication.

use crate::benchmark::{NlVisPair, NvBench, VisObject};
use crate::par;
use nv_ast::Hardness;
use nv_data::{Database, ExecCache};
use nv_quality::DeepEyeFilter;
use nv_spider::SpiderCorpus;
use nv_sql::{parse_sql, SqlError};
use nv_synth::{
    filter_candidates, filter_candidates_cached, generate_candidates, FilterStats, GoodVis,
    NlSynthesizer,
};
use std::collections::{HashMap, HashSet};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SynthesizerConfig {
    pub seed: u64,
    /// Keep at most this many good vis per input (NL, SQL) pair, picked by
    /// filter score (the paper nets ~0.7 vis per Spider pair after
    /// filtering; the cap keeps candidate-rich pairs from dominating).
    pub max_vis_per_pair: usize,
    /// Worker threads for corpus synthesis (1 = run on the caller's
    /// thread). Output is bit-identical for any value: pairs are merged in
    /// input order and all randomness is seeded per pair.
    pub threads: usize,
}

impl Default for SynthesizerConfig {
    fn default() -> Self {
        SynthesizerConfig { seed: 42, max_vis_per_pair: 3, threads: 1 }
    }
}

/// Errors from synthesizing one pair.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    Sql(SqlError),
    UnknownDatabase(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sql(e) => write!(f, "{e}"),
            PipelineError::UnknownDatabase(d) => write!(f, "unknown database '{d}'"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SqlError> for PipelineError {
    fn from(e: SqlError) -> Self {
        PipelineError::Sql(e)
    }
}

/// The result of synthesizing one (NL, SQL) pair.
#[derive(Debug, Clone)]
pub struct PairSynthesis {
    /// Kept visualizations with their NL variants.
    pub outputs: Vec<(GoodVis, Vec<String>, bool)>,
    pub filter_stats: FilterStats,
}

/// The nl2sql-to-nl2vis synthesizer.
pub struct Nl2SqlToNl2Vis {
    filter: DeepEyeFilter,
    cfg: SynthesizerConfig,
}

impl Nl2SqlToNl2Vis {
    pub fn new(cfg: SynthesizerConfig) -> Nl2SqlToNl2Vis {
        Nl2SqlToNl2Vis { filter: DeepEyeFilter::new(cfg.seed), cfg }
    }

    /// Synthesize the (NL, VIS) pairs for one input pair.
    pub fn synthesize_pair(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
    ) -> Result<PairSynthesis, PipelineError> {
        self.synthesize_pair_impl(db, nl, sql, nl_seed, None)
    }

    /// [`synthesize_pair`](Self::synthesize_pair) executing candidates
    /// through a per-database [`ExecCache`]; identical output, shared scan
    /// work across the pair's candidates (and across pairs on the same
    /// database when the cache is reused).
    pub fn synthesize_pair_cached(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
        cache: &mut ExecCache,
    ) -> Result<PairSynthesis, PipelineError> {
        self.synthesize_pair_impl(db, nl, sql, nl_seed, Some(cache))
    }

    fn synthesize_pair_impl(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
        cache: Option<&mut ExecCache>,
    ) -> Result<PairSynthesis, PipelineError> {
        let sql_tree = parse_sql(db, sql)?;
        let candidates = generate_candidates(db, &sql_tree);
        let (good, filter_stats) = match cache {
            Some(c) => filter_candidates_cached(db, candidates, &self.filter, c),
            None => filter_candidates(db, candidates, &self.filter),
        };

        // Rank survivors by filter score (carried from the filtering pass,
        // not recomputed), with a bonus for deletion-free edits (their NL
        // needs no manual revision — the paper's synthesizer keeps manual
        // work at ~25% of vis objects) — then select with chart-type
        // diversity: the best chart of each distinct type first, remaining
        // slots by score.
        let mut scored: Vec<(f64, GoodVis)> = good
            .into_iter()
            .map(|g| {
                let rank =
                    g.score + if g.candidate.edit.deletion_count() == 0 { 0.5 } else { 0.0 };
                (rank, g)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut kept: Vec<GoodVis> = Vec::new();
        let mut seen_types: std::collections::HashSet<_> = Default::default();
        let mut leftovers: Vec<GoodVis> = Vec::new();
        for (_, g) in scored {
            if kept.len() >= self.cfg.max_vis_per_pair {
                break;
            }
            if seen_types.insert(g.data.chart) {
                kept.push(g);
            } else {
                leftovers.push(g);
            }
        }
        for g in leftovers {
            if kept.len() >= self.cfg.max_vis_per_pair {
                break;
            }
            kept.push(g);
        }

        let mut synth = NlSynthesizer::new(self.cfg.seed ^ nl_seed);
        let outputs = kept
            .into_iter()
            .map(|g| {
                let res = synth.synthesize(db, nl, &g.candidate);
                let mut variants = res.variants;
                // Deletion-edited vis get fewer NL variants — mirroring the
                // paper, where the manual pass wrote ~1.9 variants per such
                // vis against ~3.75 overall.
                if res.needs_manual_revision {
                    variants.truncate(2);
                }
                (g, variants, res.needs_manual_revision)
            })
            .collect();
        Ok(PairSynthesis { outputs, filter_stats })
    }

    /// Drive the pipeline over a whole corpus, assembling the benchmark with
    /// global (db, VQL) deduplication of vis objects.
    ///
    /// Pairs are synthesized by `cfg.threads` workers pulling from a shared
    /// work queue, each holding one [`ExecCache`] per database it touches;
    /// results are merged in input order, so the benchmark — vis ids, pair
    /// ids, dedup outcomes, NL variants — is bit-identical to
    /// [`synthesize_corpus_sequential`](Self::synthesize_corpus_sequential)
    /// for any thread count.
    pub fn synthesize_corpus(&self, corpus: &SpiderCorpus) -> NvBench {
        let results = par::map_ordered(
            &corpus.pairs,
            self.cfg.threads,
            HashMap::<String, ExecCache>::new,
            |caches, _i, pair| {
                let db = corpus.database(&pair.db_name)?;
                let cache = caches.entry(pair.db_name.clone()).or_default();
                self.synthesize_pair_cached(db, &pair.nl, &pair.sql, pair.id as u64, cache)
                    .ok()
            },
        );
        self.assemble(corpus, results)
    }

    /// The single-threaded, uncached reference path — the oracle the
    /// parallel engine is tested against.
    pub fn synthesize_corpus_sequential(&self, corpus: &SpiderCorpus) -> NvBench {
        let results = corpus
            .pairs
            .iter()
            .map(|pair| {
                let db = corpus.database(&pair.db_name)?;
                self.synthesize_pair(db, &pair.nl, &pair.sql, pair.id as u64).ok()
            })
            .collect();
        self.assemble(corpus, results)
    }

    /// Merge per-pair results (in corpus order) into the benchmark with
    /// global (db, VQL) deduplication — shared by the sequential and
    /// parallel drivers so they cannot drift apart.
    fn assemble(&self, corpus: &SpiderCorpus, results: Vec<Option<PairSynthesis>>) -> NvBench {
        let mut vis_objects: Vec<VisObject> = Vec::new();
        let mut pairs: Vec<NlVisPair> = Vec::new();
        let mut seen: HashSet<(String, String)> = HashSet::new();

        for (pair, result) in corpus.pairs.iter().zip(results) {
            let Some(result) = result else { continue };
            for (good, variants, needed_manual) in result.outputs {
                let vql = good.candidate.tree.to_vql();
                if !seen.insert((pair.db_name.clone(), vql.clone())) {
                    continue; // identical vis already synthesized from another pair
                }
                let vis_id = vis_objects.len();
                vis_objects.push(VisObject {
                    vis_id,
                    db_name: pair.db_name.clone(),
                    source_pair_id: pair.id,
                    chart: good.data.chart,
                    hardness: Hardness::of(&good.candidate.tree),
                    vql,
                    tree: good.candidate.tree,
                    edit: good.candidate.edit,
                    needed_manual_nl: needed_manual,
                });
                for nl in variants {
                    pairs.push(NlVisPair { pair_id: pairs.len(), vis_id, nl });
                }
            }
        }

        NvBench { databases: corpus.databases.clone(), vis_objects, pairs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, ColumnType, Value};
    use nv_spider::CorpusConfig;

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "student",
            &[
                ("major", ColumnType::Categorical),
                ("gpa", ColumnType::Quantitative),
                ("age", ColumnType::Quantitative),
            ],
            (0..30)
                .map(|i| {
                    vec![
                        Value::text(["cs", "math", "bio", "art"][i % 4]),
                        Value::Float(2.0 + (i % 8) as f64 / 4.0),
                        Value::Int(18 + (i % 10) as i64),
                    ]
                })
                .collect(),
        ));
        db
    }

    #[test]
    fn pair_synthesis_produces_nl_vis_pairs() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let result = s
            .synthesize_pair(
                &db(),
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
            )
            .unwrap();
        assert!(!result.outputs.is_empty());
        assert!(result.filter_stats.total > 0);
        for (good, variants, _) in &result.outputs {
            assert!(good.candidate.tree.is_vis());
            assert!(!variants.is_empty());
        }
    }

    #[test]
    fn per_pair_cap_respected() {
        let cfg = SynthesizerConfig { max_vis_per_pair: 2, ..Default::default() };
        let s = Nl2SqlToNl2Vis::new(cfg);
        let result = s
            .synthesize_pair(
                &db(),
                "Show major, gpa and age of students.",
                "SELECT major, gpa, age FROM student",
                1,
            )
            .unwrap();
        assert!(result.outputs.len() <= 2);
    }

    #[test]
    fn bad_sql_is_an_error() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let e = s.synthesize_pair(&db(), "x", "SELECT nothing FROM ghost", 1);
        assert!(matches!(e, Err(PipelineError::Sql(_))));
    }

    #[test]
    fn corpus_synthesis_dedups_and_indexes() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(3));
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let bench = s.synthesize_corpus(&corpus);
        assert!(!bench.vis_objects.is_empty());
        assert!(bench.pairs.len() >= bench.vis_objects.len());
        // Dense ids.
        for (i, v) in bench.vis_objects.iter().enumerate() {
            assert_eq!(v.vis_id, i);
        }
        for (i, p) in bench.pairs.iter().enumerate() {
            assert_eq!(p.pair_id, i);
            assert!(p.vis_id < bench.vis_objects.len());
        }
        // (db, vql) unique.
        let mut keys = HashSet::new();
        for v in &bench.vis_objects {
            assert!(keys.insert((v.db_name.clone(), v.vql.clone())));
        }
        // Average variants per vis in the paper's ballpark (2–6).
        let vpv = bench.variants_per_vis();
        assert!((2.0..=6.0).contains(&vpv), "{vpv}");
    }

    #[test]
    fn corpus_synthesis_is_deterministic() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(4));
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let a = s.synthesize_corpus(&corpus);
        let b = s.synthesize_corpus(&corpus);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.vis_objects.len(), b.vis_objects.len());
    }

    /// The tentpole guarantee: the parallel + cached engine reproduces the
    /// sequential uncached oracle pair-for-pair and vis-for-vis.
    #[test]
    fn parallel_matches_sequential_oracle() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(8));
        let oracle = Nl2SqlToNl2Vis::new(SynthesizerConfig::default())
            .synthesize_corpus_sequential(&corpus);
        for threads in [1, 4] {
            let cfg = SynthesizerConfig { threads, ..Default::default() };
            let got = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(&corpus);
            assert_eq!(got.pairs, oracle.pairs, "threads={threads}");
            assert_eq!(got.vis_objects.len(), oracle.vis_objects.len());
            for (a, b) in got.vis_objects.iter().zip(&oracle.vis_objects) {
                assert_eq!(a.vis_id, b.vis_id);
                assert_eq!(a.db_name, b.db_name);
                assert_eq!(a.source_pair_id, b.source_pair_id);
                assert_eq!(a.vql, b.vql);
                assert_eq!(a.chart, b.chart);
                assert_eq!(a.hardness, b.hardness);
                assert_eq!(a.needed_manual_nl, b.needed_manual_nl);
            }
        }
    }

    /// Cached pair synthesis is output-identical to the plain path.
    #[test]
    fn cached_pair_matches_uncached() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let d = db();
        let plain = s
            .synthesize_pair(
                &d,
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
            )
            .unwrap();
        let mut cache = ExecCache::new();
        let cached = s
            .synthesize_pair_cached(
                &d,
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
                &mut cache,
            )
            .unwrap();
        assert_eq!(plain.filter_stats, cached.filter_stats);
        assert_eq!(plain.outputs.len(), cached.outputs.len());
        for ((ga, va, ma), (gb, vb, mb)) in plain.outputs.iter().zip(&cached.outputs) {
            assert_eq!(ga.candidate.tree.to_vql(), gb.candidate.tree.to_vql());
            assert_eq!(ga.score, gb.score);
            assert_eq!(va, vb);
            assert_eq!(ma, mb);
        }
        assert!(cache.stats.hits() + cache.stats.misses() > 0);
    }

    /// The parallel driver requires these to cross threads by reference.
    #[test]
    fn synthesis_types_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<SpiderCorpus>();
        assert_sync::<Nl2SqlToNl2Vis>();
        assert_sync::<Database>();
    }
}
