//! The end-to-end nl2sql-to-nl2vis pipeline (paper Figure 3).
//!
//! Input: an (NL, SQL) pair plus its database. Output: a set of (NL, VIS)
//! pairs. Per pair: parse the SQL into the unified AST (`nv-sql`), generate
//! candidate VIS trees by tree edits (`nv-synth::edits`), prune bad charts
//! with the DeepEye-style filter (`nv-synth::filter`), keep the top
//! candidates, and synthesize NL variants for each surviving tree
//! (`nv-synth::nledit`). Corpus-level driving assembles the [`NvBench`]
//! benchmark with global vis deduplication.

use crate::benchmark::{NlVisPair, NvBench, VisObject};
use crate::error::{NvError, NvErrorKind};
use crate::par;
use nv_ast::Hardness;
use nv_data::{Database, ExecBudget, ExecCache, ExecError};
use nv_quality::DeepEyeFilter;
use nv_spider::SpiderCorpus;
use nv_sql::{parse_sql, SqlError};
use nv_synth::{
    filter_candidates_budgeted, filter_candidates_cached_budgeted, generate_candidates,
    FilterStats, GoodVis, NlSynthesizer,
};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct SynthesizerConfig {
    pub seed: u64,
    /// Keep at most this many good vis per input (NL, SQL) pair, picked by
    /// filter score (the paper nets ~0.7 vis per Spider pair after
    /// filtering; the cap keeps candidate-rich pairs from dominating).
    pub max_vis_per_pair: usize,
    /// Worker threads for corpus synthesis (1 = run on the caller's
    /// thread). Output is bit-identical for any value: pairs are merged in
    /// input order and all randomness is seeded per pair.
    pub threads: usize,
    /// Executor resource budget applied to every candidate execution. The
    /// default is generous enough to be invisible on realistic corpora; a
    /// pair that exhausts it is quarantined instead of hanging the run.
    pub budget: ExecBudget,
}

impl Default for SynthesizerConfig {
    fn default() -> Self {
        SynthesizerConfig {
            seed: 42,
            max_vis_per_pair: 3,
            threads: 1,
            budget: ExecBudget::default(),
        }
    }
}

/// Errors from synthesizing one pair.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    Sql(SqlError),
    UnknownDatabase(String),
    /// Candidate execution blew a resource budget or hit an internal
    /// invariant violation — systemic, so the whole pair is abandoned.
    Exec(ExecError),
    /// A panic was caught while synthesizing the pair (payload message).
    Panic(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sql(e) => write!(f, "{e}"),
            PipelineError::UnknownDatabase(d) => write!(f, "unknown database '{d}'"),
            PipelineError::Exec(e) => write!(f, "{e}"),
            PipelineError::Panic(m) => write!(f, "caught panic: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SqlError> for PipelineError {
    fn from(e: SqlError) -> Self {
        PipelineError::Sql(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

impl PipelineError {
    /// The pipeline stage the error surfaced in (recorded in quarantine).
    pub fn stage(&self) -> SynthStage {
        match self {
            PipelineError::UnknownDatabase(_) => SynthStage::Lookup,
            PipelineError::Sql(_) => SynthStage::Parse,
            PipelineError::Exec(_) => SynthStage::Filter,
            PipelineError::Panic(_) => SynthStage::Isolation,
        }
    }
}

/// Where in the per-pair pipeline a quarantined failure surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SynthStage {
    /// Resolving the pair's database by name.
    Lookup,
    /// Parsing the pair's SQL into the unified AST.
    Parse,
    /// Executing and filtering candidate visualizations.
    Filter,
    /// A caught panic — the precise stage inside the pair is unknown; the
    /// panic-isolation layer attributes it to the pair as a whole.
    Isolation,
}

impl SynthStage {
    /// Stable lower-snake-case label (what quarantine.json records).
    pub fn label(self) -> &'static str {
        match self {
            SynthStage::Lookup => "lookup",
            SynthStage::Parse => "parse",
            SynthStage::Filter => "filter",
            SynthStage::Isolation => "isolation",
        }
    }
}

/// One quarantined input pair: why it was dropped and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuarantineEntry {
    /// Id of the input (NL, SQL) pair in the source corpus.
    pub pair_id: usize,
    pub db_name: String,
    pub stage: SynthStage,
    /// Failure family from the workspace error taxonomy.
    pub error_kind: NvErrorKind,
    /// The rendered error (or panic payload) message.
    pub error: String,
    /// Wall-clock time spent on the pair before it failed, in microseconds.
    pub elapsed_us: u64,
}

/// The result of corpus synthesis: the benchmark plus the fault ledger.
///
/// Every input pair is accounted for exactly once: it either contributed a
/// digest in [`pair_digests`](CorpusSynthesis::pair_digests) (possibly an
/// empty synthesis — digests exist even for pairs yielding zero vis) or an
/// entry in [`quarantine`](CorpusSynthesis::quarantine), never both.
#[derive(Debug, Clone)]
pub struct CorpusSynthesis {
    pub bench: NvBench,
    /// Pairs that failed (bad SQL, blown budget, caught panic …), with the
    /// stage, classified error, and elapsed time of each — in corpus order.
    pub quarantine: Vec<QuarantineEntry>,
    /// Per input pair (position `i` ↔ `corpus.pairs[i]`): a digest of the
    /// pair's *pre-deduplication* synthesis output, or `None` if the pair
    /// was quarantined. Because the benchmark applies global (db, VQL)
    /// deduplication, a quarantined pair can shift which later pair "wins"
    /// a duplicate vis — these digests let tests assert that clean pairs
    /// are bit-identical between runs even when the quarantine set differs.
    pub pair_digests: Vec<Option<u64>>,
}

impl CorpusSynthesis {
    /// Count of quarantined pairs per error kind, in label order — the
    /// one-line summary tools print after a run.
    pub fn quarantine_summary(&self) -> Vec<(NvErrorKind, usize)> {
        let mut counts: HashMap<NvErrorKind, usize> = HashMap::new();
        for q in &self.quarantine {
            *counts.entry(q.error_kind).or_default() += 1;
        }
        let mut out: Vec<(NvErrorKind, usize)> = counts.into_iter().collect();
        out.sort_by_key(|(k, _)| k.label());
        out
    }
}

/// The result of synthesizing one (NL, SQL) pair.
#[derive(Debug, Clone)]
pub struct PairSynthesis {
    /// Kept visualizations with their NL variants.
    pub outputs: Vec<(GoodVis, Vec<String>, bool)>,
    pub filter_stats: FilterStats,
}

/// The nl2sql-to-nl2vis synthesizer.
pub struct Nl2SqlToNl2Vis {
    filter: DeepEyeFilter,
    cfg: SynthesizerConfig,
}

impl Nl2SqlToNl2Vis {
    pub fn new(cfg: SynthesizerConfig) -> Nl2SqlToNl2Vis {
        Nl2SqlToNl2Vis { filter: DeepEyeFilter::new(cfg.seed), cfg }
    }

    /// Synthesize the (NL, VIS) pairs for one input pair.
    pub fn synthesize_pair(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
    ) -> Result<PairSynthesis, PipelineError> {
        self.synthesize_pair_impl(db, nl, sql, nl_seed, None)
    }

    /// [`synthesize_pair`](Self::synthesize_pair) executing candidates
    /// through a per-database [`ExecCache`]; identical output, shared scan
    /// work across the pair's candidates (and across pairs on the same
    /// database when the cache is reused).
    pub fn synthesize_pair_cached(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
        cache: &mut ExecCache,
    ) -> Result<PairSynthesis, PipelineError> {
        self.synthesize_pair_impl(db, nl, sql, nl_seed, Some(cache))
    }

    fn synthesize_pair_impl(
        &self,
        db: &Database,
        nl: &str,
        sql: &str,
        nl_seed: u64,
        cache: Option<&mut ExecCache>,
    ) -> Result<PairSynthesis, PipelineError> {
        let _pair = nv_trace::span("pair");
        let sql_tree = {
            let _s = nv_trace::span("parse");
            parse_sql(db, sql)?
        };
        let candidates = {
            let _s = nv_trace::span("edits");
            generate_candidates(db, &sql_tree)
        };
        let (good, filter_stats) = {
            let _s = nv_trace::span("filter");
            match cache {
                Some(c) => filter_candidates_cached_budgeted(
                    db,
                    candidates,
                    &self.filter,
                    c,
                    self.cfg.budget,
                )?,
                None => filter_candidates_budgeted(db, candidates, &self.filter, self.cfg.budget)?,
            }
        };

        // Rank survivors by filter score (carried from the filtering pass,
        // not recomputed), with a bonus for deletion-free edits (their NL
        // needs no manual revision — the paper's synthesizer keeps manual
        // work at ~25% of vis objects) — then select with chart-type
        // diversity: the best chart of each distinct type first, remaining
        // slots by score.
        let mut scored: Vec<(f64, GoodVis)> = good
            .into_iter()
            .map(|g| {
                let rank =
                    g.score + if g.candidate.edit.deletion_count() == 0 { 0.5 } else { 0.0 };
                (rank, g)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut kept: Vec<GoodVis> = Vec::new();
        let mut seen_types: std::collections::HashSet<_> = Default::default();
        let mut leftovers: Vec<GoodVis> = Vec::new();
        for (_, g) in scored {
            if kept.len() >= self.cfg.max_vis_per_pair {
                break;
            }
            if seen_types.insert(g.data.chart) {
                kept.push(g);
            } else {
                leftovers.push(g);
            }
        }
        for g in leftovers {
            if kept.len() >= self.cfg.max_vis_per_pair {
                break;
            }
            kept.push(g);
        }

        let mut synth = NlSynthesizer::new(self.cfg.seed ^ nl_seed);
        let _nledit = nv_trace::span("nledit");
        let outputs = kept
            .into_iter()
            .map(|g| {
                let res = synth.synthesize(db, nl, &g.candidate);
                let mut variants = res.variants;
                // Deletion-edited vis get fewer NL variants — mirroring the
                // paper, where the manual pass wrote ~1.9 variants per such
                // vis against ~3.75 overall.
                if res.needs_manual_revision {
                    variants.truncate(2);
                }
                (g, variants, res.needs_manual_revision)
            })
            .collect();
        drop(_nledit);
        Ok(PairSynthesis { outputs, filter_stats })
    }

    /// Drive the pipeline over a whole corpus, assembling the benchmark with
    /// global (db, VQL) deduplication of vis objects and a quarantine ledger
    /// for every pair that failed.
    ///
    /// Pairs are synthesized by `cfg.threads` workers pulling from a shared
    /// work queue, each holding one [`ExecCache`] per database it touches;
    /// results are merged in input order, so the benchmark — vis ids, pair
    /// ids, dedup outcomes, NL variants — is bit-identical to
    /// [`synthesize_corpus_sequential`](Self::synthesize_corpus_sequential)
    /// for any thread count.
    ///
    /// Fault isolation: each pair runs under `catch_unwind`; a panicking
    /// pair is quarantined (stage [`SynthStage::Isolation`]) and its
    /// worker's caches are rebuilt, so one poisoned pair can never take
    /// down the run or corrupt a neighbour's output.
    pub fn synthesize_corpus(&self, corpus: &SpiderCorpus) -> CorpusSynthesis {
        let results = par::map_ordered_isolated(
            &corpus.pairs,
            self.cfg.threads,
            HashMap::<String, ExecCache>::new,
            |caches, _i, pair| {
                let db = corpus
                    .database(&pair.db_name)
                    .ok_or_else(|| PipelineError::UnknownDatabase(pair.db_name.clone()))?;
                let cache = caches.entry(pair.db_name.clone()).or_default();
                self.synthesize_pair_cached(db, &pair.nl, &pair.sql, pair.id as u64, cache)
            },
        );
        self.quarantine_and_assemble(corpus, results)
    }

    /// The single-threaded, uncached reference path — the oracle the
    /// parallel engine is tested against. Shares the isolation, quarantine,
    /// and assembly code with [`synthesize_corpus`](Self::synthesize_corpus)
    /// so the two cannot drift apart.
    pub fn synthesize_corpus_sequential(&self, corpus: &SpiderCorpus) -> CorpusSynthesis {
        let results = par::map_ordered_isolated(
            &corpus.pairs,
            1,
            || (),
            |_, _i, pair| {
                let db = corpus
                    .database(&pair.db_name)
                    .ok_or_else(|| PipelineError::UnknownDatabase(pair.db_name.clone()))?;
                self.synthesize_pair(db, &pair.nl, &pair.sql, pair.id as u64)
            },
        );
        self.quarantine_and_assemble(corpus, results)
    }

    /// Classify per-pair outcomes into kept results + quarantine entries,
    /// digest the kept ones, and assemble the benchmark.
    fn quarantine_and_assemble(
        &self,
        corpus: &SpiderCorpus,
        results: Vec<par::Isolated<Result<PairSynthesis, PipelineError>>>,
    ) -> CorpusSynthesis {
        let mut quarantine: Vec<QuarantineEntry> = Vec::new();
        let mut pair_digests: Vec<Option<u64>> = Vec::with_capacity(results.len());
        let mut kept: Vec<Option<PairSynthesis>> = Vec::with_capacity(results.len());

        for (pair, iso) in corpus.pairs.iter().zip(results) {
            let outcome = match iso.result {
                Ok(r) => r,
                Err(panic_msg) => Err(PipelineError::Panic(panic_msg)),
            };
            nv_trace::count("synth.pairs", 1);
            match outcome {
                Ok(ps) => {
                    pair_digests.push(Some(pair_digest(&ps)));
                    kept.push(Some(ps));
                }
                Err(e) => {
                    let stage = e.stage();
                    let nv = NvError::from(e);
                    if nv_trace::enabled() {
                        nv_trace::count(&format!("synth.quarantined.{}", nv.kind().label()), 1);
                    }
                    quarantine.push(QuarantineEntry {
                        pair_id: pair.id,
                        db_name: pair.db_name.clone(),
                        stage,
                        error_kind: nv.kind(),
                        error: nv.to_string(),
                        elapsed_us: iso.elapsed_us,
                    });
                    pair_digests.push(None);
                    kept.push(None);
                }
            }
        }

        let bench = self.assemble(corpus, kept);
        CorpusSynthesis { bench, quarantine, pair_digests }
    }

    /// Merge per-pair results (in corpus order) into the benchmark with
    /// global (db, VQL) deduplication — shared by the sequential and
    /// parallel drivers so they cannot drift apart.
    fn assemble(&self, corpus: &SpiderCorpus, results: Vec<Option<PairSynthesis>>) -> NvBench {
        let mut vis_objects: Vec<VisObject> = Vec::new();
        let mut pairs: Vec<NlVisPair> = Vec::new();
        let mut seen: HashSet<(String, String)> = HashSet::new();

        for (pair, result) in corpus.pairs.iter().zip(results) {
            let Some(result) = result else { continue };
            for (good, variants, needed_manual) in result.outputs {
                let vql = good.candidate.tree.to_vql();
                if !seen.insert((pair.db_name.clone(), vql.clone())) {
                    continue; // identical vis already synthesized from another pair
                }
                let vis_id = vis_objects.len();
                vis_objects.push(VisObject {
                    vis_id,
                    db_name: pair.db_name.clone(),
                    source_pair_id: pair.id,
                    chart: good.data.chart,
                    hardness: Hardness::of(&good.candidate.tree),
                    vql,
                    tree: good.candidate.tree,
                    edit: good.candidate.edit,
                    needed_manual_nl: needed_manual,
                });
                for nl in variants {
                    pairs.push(NlVisPair { pair_id: pairs.len(), vis_id, nl });
                }
            }
        }

        nv_trace::count("synth.vis", vis_objects.len() as u64);
        nv_trace::count("synth.nl", pairs.len() as u64);
        NvBench { databases: corpus.databases.clone(), vis_objects, pairs }
    }
}

/// Digest one pair's pre-deduplication synthesis output (FNV-1a over the
/// kept VQL strings, scores, NL variants, manual flags, and filter stats).
/// Two runs in which a pair saw identical inputs and took identical
/// decisions produce the same digest — regardless of what *other* pairs did.
fn pair_digest(ps: &PairSynthesis) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn bytes(&mut self, b: &[u8]) {
            for &x in b {
                self.0 ^= x as u64;
                self.0 = self.0.wrapping_mul(PRIME);
            }
        }
        fn u64(&mut self, v: u64) {
            self.bytes(&v.to_le_bytes());
        }
        fn str(&mut self, s: &str) {
            self.u64(s.len() as u64);
            self.bytes(s.as_bytes());
        }
    }
    let mut h = Fnv(BASIS);
    h.u64(ps.outputs.len() as u64);
    for (good, variants, manual) in &ps.outputs {
        h.str(&good.candidate.tree.to_vql());
        h.u64(good.score.to_bits());
        h.u64(variants.len() as u64);
        for v in variants {
            h.str(v);
        }
        h.u64(*manual as u64);
    }
    for n in [
        ps.filter_stats.total,
        ps.filter_stats.kept,
        ps.filter_stats.failed_exec,
        ps.filter_stats.pruned,
    ] {
        h.u64(n as u64);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, ColumnType, Value};
    use nv_spider::CorpusConfig;

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "student",
            &[
                ("major", ColumnType::Categorical),
                ("gpa", ColumnType::Quantitative),
                ("age", ColumnType::Quantitative),
            ],
            (0..30)
                .map(|i| {
                    vec![
                        Value::text(["cs", "math", "bio", "art"][i % 4]),
                        Value::Float(2.0 + (i % 8) as f64 / 4.0),
                        Value::Int(18 + (i % 10) as i64),
                    ]
                })
                .collect(),
        ));
        db
    }

    #[test]
    fn pair_synthesis_produces_nl_vis_pairs() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let result = s
            .synthesize_pair(
                &db(),
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
            )
            .unwrap();
        assert!(!result.outputs.is_empty());
        assert!(result.filter_stats.total > 0);
        for (good, variants, _) in &result.outputs {
            assert!(good.candidate.tree.is_vis());
            assert!(!variants.is_empty());
        }
    }

    #[test]
    fn per_pair_cap_respected() {
        let cfg = SynthesizerConfig { max_vis_per_pair: 2, ..Default::default() };
        let s = Nl2SqlToNl2Vis::new(cfg);
        let result = s
            .synthesize_pair(
                &db(),
                "Show major, gpa and age of students.",
                "SELECT major, gpa, age FROM student",
                1,
            )
            .unwrap();
        assert!(result.outputs.len() <= 2);
    }

    #[test]
    fn bad_sql_is_an_error() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let e = s.synthesize_pair(&db(), "x", "SELECT nothing FROM ghost", 1);
        assert!(matches!(e, Err(PipelineError::Sql(_))));
    }

    #[test]
    fn corpus_synthesis_dedups_and_indexes() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(3));
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let synthesis = s.synthesize_corpus(&corpus);
        // Every input pair is accounted for exactly once.
        assert_eq!(synthesis.pair_digests.len(), corpus.pairs.len());
        let quarantined = synthesis.pair_digests.iter().filter(|d| d.is_none()).count();
        assert_eq!(quarantined, synthesis.quarantine.len());
        let bench = synthesis.bench;
        assert!(!bench.vis_objects.is_empty());
        assert!(bench.pairs.len() >= bench.vis_objects.len());
        // Dense ids.
        for (i, v) in bench.vis_objects.iter().enumerate() {
            assert_eq!(v.vis_id, i);
        }
        for (i, p) in bench.pairs.iter().enumerate() {
            assert_eq!(p.pair_id, i);
            assert!(p.vis_id < bench.vis_objects.len());
        }
        // (db, vql) unique.
        let mut keys = HashSet::new();
        for v in &bench.vis_objects {
            assert!(keys.insert((v.db_name.clone(), v.vql.clone())));
        }
        // Average variants per vis in the paper's ballpark (2–6).
        let vpv = bench.variants_per_vis();
        assert!((2.0..=6.0).contains(&vpv), "{vpv}");
    }

    #[test]
    fn corpus_synthesis_is_deterministic() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(4));
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let a = s.synthesize_corpus(&corpus);
        let b = s.synthesize_corpus(&corpus);
        assert_eq!(a.bench.pairs, b.bench.pairs);
        assert_eq!(a.bench.vis_objects.len(), b.bench.vis_objects.len());
        assert_eq!(a.pair_digests, b.pair_digests);
        // Quarantine is deterministic up to elapsed time.
        let key = |q: &QuarantineEntry| (q.pair_id, q.stage, q.error_kind, q.error.clone());
        assert_eq!(
            a.quarantine.iter().map(key).collect::<Vec<_>>(),
            b.quarantine.iter().map(key).collect::<Vec<_>>()
        );
    }

    /// The tentpole guarantee: the parallel + cached engine reproduces the
    /// sequential uncached oracle pair-for-pair and vis-for-vis.
    #[test]
    fn parallel_matches_sequential_oracle() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(8));
        let oracle = Nl2SqlToNl2Vis::new(SynthesizerConfig::default())
            .synthesize_corpus_sequential(&corpus);
        for threads in [1, 4] {
            let cfg = SynthesizerConfig { threads, ..Default::default() };
            let synthesis = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(&corpus);
            assert_eq!(synthesis.pair_digests, oracle.pair_digests, "threads={threads}");
            let (got, oracle) = (&synthesis.bench, &oracle.bench);
            assert_eq!(got.pairs, oracle.pairs, "threads={threads}");
            assert_eq!(got.vis_objects.len(), oracle.vis_objects.len());
            for (a, b) in got.vis_objects.iter().zip(&oracle.vis_objects) {
                assert_eq!(a.vis_id, b.vis_id);
                assert_eq!(a.db_name, b.db_name);
                assert_eq!(a.source_pair_id, b.source_pair_id);
                assert_eq!(a.vql, b.vql);
                assert_eq!(a.chart, b.chart);
                assert_eq!(a.hardness, b.hardness);
                assert_eq!(a.needed_manual_nl, b.needed_manual_nl);
            }
        }
    }

    /// Cached pair synthesis is output-identical to the plain path.
    #[test]
    fn cached_pair_matches_uncached() {
        let s = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
        let d = db();
        let plain = s
            .synthesize_pair(
                &d,
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
            )
            .unwrap();
        let mut cache = ExecCache::new();
        let cached = s
            .synthesize_pair_cached(
                &d,
                "What is the average gpa for each major?",
                "SELECT major, AVG(gpa) FROM student GROUP BY major",
                1,
                &mut cache,
            )
            .unwrap();
        assert_eq!(plain.filter_stats, cached.filter_stats);
        assert_eq!(plain.outputs.len(), cached.outputs.len());
        for ((ga, va, ma), (gb, vb, mb)) in plain.outputs.iter().zip(&cached.outputs) {
            assert_eq!(ga.candidate.tree.to_vql(), gb.candidate.tree.to_vql());
            assert_eq!(ga.score, gb.score);
            assert_eq!(va, vb);
            assert_eq!(ma, mb);
        }
        assert!(cache.stats.hits() + cache.stats.misses() > 0);
    }

    /// The parallel driver requires these to cross threads by reference.
    #[test]
    fn synthesis_types_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<SpiderCorpus>();
        assert_sync::<Nl2SqlToNl2Vis>();
        assert_sync::<Database>();
    }

    /// A corpus with poisoned pairs: the bad pairs land in quarantine with
    /// the right stage and kind, the good pairs still synthesize, and the
    /// accounting (digests + quarantine = corpus) balances.
    #[test]
    fn bad_pairs_are_quarantined_not_fatal() {
        let mut corpus = SpiderCorpus::generate(&CorpusConfig::small(3));
        let n = corpus.pairs.len();
        assert!(n >= 2, "need at least two pairs");
        corpus.pairs[0].sql = "SELECT FROM WHERE (((".to_string(); // parse failure
        corpus.pairs[1].db_name = "no_such_db".to_string(); // lookup failure

        for threads in [1, 4] {
            let cfg = SynthesizerConfig { threads, ..Default::default() };
            let out = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(&corpus);
            assert_eq!(out.pair_digests.len(), n);
            assert_eq!(out.quarantine.len(), 2, "threads={threads}");
            assert_eq!(out.quarantine[0].pair_id, corpus.pairs[0].id);
            assert_eq!(out.quarantine[0].stage, SynthStage::Parse);
            assert_eq!(out.quarantine[0].error_kind, NvErrorKind::Parse);
            assert_eq!(out.quarantine[1].pair_id, corpus.pairs[1].id);
            assert_eq!(out.quarantine[1].stage, SynthStage::Lookup);
            assert_eq!(out.quarantine[1].error_kind, NvErrorKind::Schema);
            assert!(out.pair_digests[0].is_none());
            assert!(out.pair_digests[1].is_none());
            assert!(out.pair_digests[2..].iter().all(|d| d.is_some()));
            assert!(!out.bench.vis_objects.is_empty());

            let summary = out.quarantine_summary();
            let total: usize = summary.iter().map(|(_, c)| c).sum();
            assert_eq!(total, 2);
        }
    }

    /// A starved executor budget quarantines the pair with a retryable
    /// `ResourceExhausted` instead of hanging or panicking.
    #[test]
    fn exhausted_budget_quarantines_the_pair() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(2));
        let cfg = SynthesizerConfig {
            budget: nv_data::ExecBudget { fuel: 1, ..Default::default() },
            ..Default::default()
        };
        let out = Nl2SqlToNl2Vis::new(cfg).synthesize_corpus(&corpus);
        assert!(!out.quarantine.is_empty());
        for q in &out.quarantine {
            assert_eq!(q.stage, SynthStage::Filter);
            assert_eq!(q.error_kind, NvErrorKind::ResourceExhausted);
            assert!(q.error_kind.is_retryable());
        }
    }

    /// Quarantine entries serialize to the documented JSON shape.
    #[test]
    fn quarantine_entry_serializes() {
        let q = QuarantineEntry {
            pair_id: 7,
            db_name: "d".into(),
            stage: SynthStage::Parse,
            error_kind: NvErrorKind::Parse,
            error: "boom".into(),
            elapsed_us: 12,
        };
        let v = serde_json::to_value(&q).unwrap();
        assert_eq!(v["pair_id"], serde_json::json!(7));
        assert_eq!(v["stage"], serde_json::json!("Parse"));
        assert_eq!(v["error_kind"], serde_json::json!("Parse"));
    }
}
