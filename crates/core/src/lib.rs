//! # nv-core — the nl2sql-to-nl2vis synthesizer (the paper's primary
//! contribution)
//!
//! End-to-end pipeline (Figure 3): an (NL, SQL) pair and its database go in;
//! a set of (NL, VIS) pairs comes out.
//!
//! ```
//! use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
//! use nv_data::{table_from, ColumnType, Database, Value};
//!
//! let mut db = Database::new("college", "College");
//! let ranks = ["assistant", "associate", "full", "adjunct", "emeritus"];
//! db.add_table(table_from(
//!     "faculty",
//!     &[("rank", ColumnType::Categorical), ("salary", ColumnType::Quantitative)],
//!     (0..40)
//!         .map(|i| vec![Value::text(ranks[i % 5]), Value::Int(80 + (i as i64 * 7) % 60)])
//!         .collect(),
//! ));
//! let synth = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
//! let out = synth
//!     .synthesize_pair(
//!         &db,
//!         "How many faculties do we have for each rank?",
//!         "SELECT rank, COUNT(*) FROM faculty GROUP BY rank",
//!         7,
//!     )
//!     .unwrap();
//! assert!(!out.outputs.is_empty());
//! ```
//!
//! * [`pipeline`] — the synthesizer itself;
//! * [`benchmark`] — the [`NvBench`] container, vis objects, pair splits;
//! * [`stats`] — Table 2 / Table 3 / Figures 8–10 computations;
//! * [`cost`] — the §3.3 man-hour model (2.4 days vs 42 days; 5.7%).

pub mod benchmark;
pub mod cost;
pub mod error;
pub mod io;
pub mod par;
pub mod pipeline;
pub mod predictor;
pub mod stats;

/// Deterministic fault injection (re-export of the zero-dependency
/// `nv-fault` crate, so sites in lower crates and tests here share one
/// process-global plan).
pub mod fault {
    pub use nv_fault::*;
}

pub use benchmark::{NlVisPair, NvBench, Split, VisObject};
pub use error::{NvError, NvErrorKind};
pub use io::{from_json, to_json, IoError};
pub use cost::{paper_reference_report, CostModel, CostReport};
pub use pipeline::{
    CorpusSynthesis, Nl2SqlToNl2Vis, PairSynthesis, PipelineError, QuarantineEntry,
    SynthStage, SynthesizerConfig,
};
pub use predictor::Nl2VisPredictor;
pub use stats::{column_census, size_histograms, table3, type_hardness_matrix, ChartTypeRow, ColumnCensus, DatasetStats};
