//! The NL2VIS predictor interface shared by the neural translator and the
//! rule-based baselines, so the §4 evaluation harness can score them
//! uniformly.

use nv_ast::VisQuery;
use nv_data::Database;

/// Anything that turns an NL query (plus the database schema/content) into a
/// VIS tree.
pub trait Nl2VisPredictor {
    /// Human-readable system name ("seq2vis+attention", "DeepEye", "NL4DV").
    fn name(&self) -> String;

    /// Predict the top-1 visualization; `None` when the system cannot
    /// produce one (e.g. a rule-based baseline facing a join it does not
    /// support).
    fn predict(&self, nl: &str, db: &Database) -> Option<VisQuery>;

    /// Top-k predictions, best first. The default wraps [`predict`].
    ///
    /// [`predict`]: Nl2VisPredictor::predict
    fn predict_top_k(&self, nl: &str, db: &Database, k: usize) -> Vec<VisQuery> {
        if k == 0 {
            return vec![];
        }
        self.predict(nl, db).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::parse_vql_str;

    struct Fixed;

    impl Nl2VisPredictor for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn predict(&self, _nl: &str, _db: &Database) -> Option<VisQuery> {
            Some(parse_vql_str("visualize bar select t.a , count ( t.* ) from t group by t.a").unwrap())
        }
    }

    #[test]
    fn default_top_k_wraps_predict() {
        let f = Fixed;
        let db = Database::new("d", "x");
        assert_eq!(f.predict_top_k("q", &db, 3).len(), 1);
        assert_eq!(f.predict_top_k("q", &db, 0).len(), 0);
        assert_eq!(f.name(), "fixed");
    }
}
