//! The workspace-wide error taxonomy.
//!
//! Every fallible layer of the synthesis stack keeps its own precise error
//! type (`SqlError`, `ExecError`, `CsvError`, `RenderError`,
//! `PipelineError`) — those are the types to match on near the failure.
//! [`NvError`] is the *classification* layer above them: one kind per broad
//! failure family, plus a human-readable message and a breadcrumb context
//! chain, so corpus-scale tooling (quarantine logs, dashboards, retries) can
//! aggregate failures without knowing every crate's enum.

use nv_data::{CsvError, ExecError};
use nv_render::RenderError;
use nv_sql::SqlError;
use serde::Serialize;

/// The failure family of an [`NvError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum NvErrorKind {
    /// Malformed input text: lexing or parsing failed.
    Parse,
    /// Query execution failed (type errors, unsupported shapes).
    Exec,
    /// Name resolution failed: unknown table, column, or database.
    Schema,
    /// Malformed data (CSV rows, values) rejected at ingestion.
    Data,
    /// An executor budget was hit: rows, subquery depth, or fuel.
    ResourceExhausted,
    /// Invariant violation, caught panic, or injected fault.
    Internal,
}

impl NvErrorKind {
    /// Stable lower-snake-case label (what quarantine.json records).
    pub fn label(self) -> &'static str {
        match self {
            NvErrorKind::Parse => "parse",
            NvErrorKind::Exec => "exec",
            NvErrorKind::Schema => "schema",
            NvErrorKind::Data => "data",
            NvErrorKind::ResourceExhausted => "resource_exhausted",
            NvErrorKind::Internal => "internal",
        }
    }

    /// Is this failure family worth retrying with a larger budget?
    pub fn is_retryable(self) -> bool {
        matches!(self, NvErrorKind::ResourceExhausted)
    }
}

impl std::fmt::Display for NvErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A classified error with a source-chain of context breadcrumbs.
#[derive(Debug, Clone, PartialEq)]
pub struct NvError {
    pub kind: NvErrorKind,
    pub message: String,
    /// Outer-to-inner breadcrumbs added via [`NvError::context`].
    pub context: Vec<String>,
}

impl NvError {
    pub fn new(kind: NvErrorKind, message: impl Into<String>) -> NvError {
        NvError { kind, message: message.into(), context: Vec::new() }
    }

    /// Attach a breadcrumb describing where the error surfaced (pair id,
    /// stage, file…). Breadcrumbs render outermost-first.
    pub fn context(mut self, ctx: impl Into<String>) -> NvError {
        self.context.insert(0, ctx.into());
        self
    }

    pub fn kind(&self) -> NvErrorKind {
        self.kind
    }

    /// An internal error from a caught panic payload.
    pub fn from_panic(message: impl Into<String>) -> NvError {
        NvError::new(NvErrorKind::Internal, message)
    }
}

impl std::fmt::Display for NvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind.label(), self.message)?;
        for c in &self.context {
            write!(f, " ({c})")?;
        }
        Ok(())
    }
}

impl std::error::Error for NvError {}

impl From<SqlError> for NvError {
    fn from(e: SqlError) -> NvError {
        let kind = match &e {
            SqlError::Resolve(_) => NvErrorKind::Schema,
            _ => NvErrorKind::Parse,
        };
        NvError::new(kind, e.to_string())
    }
}

impl From<ExecError> for NvError {
    fn from(e: ExecError) -> NvError {
        let kind = match &e {
            ExecError::UnknownTable(_) | ExecError::UnknownColumn(_) => NvErrorKind::Schema,
            ExecError::ResourceExhausted(_) => NvErrorKind::ResourceExhausted,
            ExecError::Internal(_) => NvErrorKind::Internal,
            _ => NvErrorKind::Exec,
        };
        NvError::new(kind, e.to_string())
    }
}

impl From<CsvError> for NvError {
    fn from(e: CsvError) -> NvError {
        NvError::new(NvErrorKind::Data, e.to_string())
    }
}

impl From<RenderError> for NvError {
    fn from(e: RenderError) -> NvError {
        match e {
            RenderError::Exec(inner) => NvError::from(inner).context("while rendering chart"),
            other => NvError::new(NvErrorKind::Exec, other.to_string()),
        }
    }
}

impl From<crate::pipeline::PipelineError> for NvError {
    fn from(e: crate::pipeline::PipelineError) -> NvError {
        use crate::pipeline::PipelineError as P;
        match e {
            P::Sql(s) => NvError::from(s),
            P::UnknownDatabase(d) => {
                NvError::new(NvErrorKind::Schema, format!("unknown database '{d}'"))
            }
            P::Exec(x) => NvError::from(x),
            P::Panic(m) => NvError::from_panic(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_from_source_errors() {
        let e = NvError::from(SqlError::Parse { at: 3, message: "boom".into() });
        assert_eq!(e.kind(), NvErrorKind::Parse);
        let e = NvError::from(SqlError::Resolve("no col".into()));
        assert_eq!(e.kind(), NvErrorKind::Schema);
        let e = NvError::from(ExecError::ResourceExhausted("fuel".into()));
        assert_eq!(e.kind(), NvErrorKind::ResourceExhausted);
        assert!(e.kind().is_retryable());
        let e = NvError::from(ExecError::UnknownTable("t".into()));
        assert_eq!(e.kind(), NvErrorKind::Schema);
        let e = NvError::from(ExecError::Internal("injected".into()));
        assert_eq!(e.kind(), NvErrorKind::Internal);
        let e = NvError::from(CsvError { line: 2, message: "bad row".into() });
        assert_eq!(e.kind(), NvErrorKind::Data);
        assert!(!e.kind().is_retryable());
    }

    #[test]
    fn context_chain_renders_outermost_first() {
        let e = NvError::new(NvErrorKind::Exec, "type error")
            .context("candidate 4")
            .context("pair 17");
        let s = e.to_string();
        assert!(s.contains("[exec] type error"), "{s}");
        let pair = s.find("pair 17").unwrap();
        let cand = s.find("candidate 4").unwrap();
        assert!(pair < cand, "{s}");
    }

    #[test]
    fn render_exec_errors_unwrap_to_inner_kind() {
        let e = NvError::from(RenderError::Exec(ExecError::ResourceExhausted("rows".into())));
        assert_eq!(e.kind(), NvErrorKind::ResourceExhausted);
        let e = NvError::from(RenderError::Shape("bad arity".into()));
        assert_eq!(e.kind(), NvErrorKind::Exec);
    }

    #[test]
    fn labels_are_stable() {
        for (k, l) in [
            (NvErrorKind::Parse, "parse"),
            (NvErrorKind::ResourceExhausted, "resource_exhausted"),
            (NvErrorKind::Internal, "internal"),
        ] {
            assert_eq!(k.label(), l);
            assert_eq!(k.to_string(), l);
        }
    }
}
