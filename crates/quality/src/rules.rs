//! Expert rules (rules-of-thumb from the visualization community) — the
//! first stage of the DeepEye filter (§2.4).
//!
//! The paper names four pruned patterns observed on TPC-H/TPC-DS:
//! (1) single-value results, (2) pie charts with many slices, (3) bar charts
//! with too many categories, (4) line charts over two qualitative variables.
//! Plus the Table-1 channel-type validity rules.

use crate::features::ChartFeatures;
use nv_ast::ChartType;
use nv_data::ColumnType;

/// Slice/category limits. Thresholds follow common vis practice (DeepEye's
/// own defaults are in this range).
pub const MAX_PIE_SLICES: usize = 12;
pub const MAX_BAR_CATEGORIES: usize = 50;
pub const MAX_SERIES: usize = 10;

/// Outcome of the rule stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleVerdict {
    /// Violates a hard validity rule (cannot be rendered meaningfully).
    Invalid(&'static str),
    /// Renderable but obviously bad (the paper's Figure-7(a)/(c) cases).
    Bad(&'static str),
    /// Passes the rule stage; the classifier decides.
    Pass,
}

impl RuleVerdict {
    pub fn is_pass(self) -> bool {
        self == RuleVerdict::Pass
    }
}

/// Apply the expert rules to a chart's features.
pub fn expert_rules(f: &ChartFeatures) -> RuleVerdict {
    use ColumnType::*;
    use RuleVerdict::*;

    // (1) Single value: better shown as a table (Figure 7(c)).
    if f.n_tuples == 0 {
        return Invalid("empty result");
    }
    if f.n_tuples == 1 {
        return Bad("single value result");
    }

    // Channel validity (Table 1): the y channel must be quantitative for
    // every chart type; scatter additionally needs quantitative x.
    if f.y_type != Quantitative {
        if f.chart == ChartType::Line && f.x_type == Categorical {
            return Invalid("line chart with two qualitative variables");
        }
        return Invalid("y channel must be quantitative");
    }
    match f.chart {
        ChartType::Scatter | ChartType::GroupingScatter
            if f.x_type != Quantitative => {
                return Invalid("scatter needs a quantitative x");
            }
        ChartType::Line | ChartType::GroupingLine
            // Lines over an unordered nominal axis with high cardinality are
            // meaningless; temporal or quantitative x is fine.
            if f.x_type == Categorical && f.unique_ratio >= 0.999 && f.n_distinct_x > 20 => {
                return Bad("line over high-cardinality nominal axis");
            }
        ChartType::Pie => {
            if f.x_type == Quantitative && f.unique_ratio >= 0.999 && f.n_distinct_x > MAX_PIE_SLICES
            {
                return Invalid("pie over a continuous variable");
            }
            if f.y_min < 0.0 {
                return Invalid("pie with negative slice values");
            }
        }
        _ => {}
    }

    // (2) Pie charts with many slices (Figure 7(a)).
    if f.chart == ChartType::Pie && f.n_distinct_x > MAX_PIE_SLICES {
        return Bad("too many pie slices");
    }
    // (3) Bar charts with too many categories.
    if matches!(f.chart, ChartType::Bar | ChartType::StackedBar)
        && f.n_distinct_x > MAX_BAR_CATEGORIES
    {
        return Bad("too many bar categories");
    }
    // Grouped charts need a real grouping, and not too many series.
    if f.chart.is_grouped() {
        if f.n_series < 2 {
            return Bad("grouped chart with fewer than two series");
        }
        if f.n_series > MAX_SERIES {
            return Bad("too many series");
        }
    }
    RuleVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(chart: ChartType) -> ChartFeatures {
        ChartFeatures {
            chart,
            n_tuples: 8,
            n_distinct_x: 8,
            unique_ratio: 1.0,
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            y_min: 0.0,
            y_max: 100.0,
            correlation: None,
            n_series: 0,
        }
    }

    #[test]
    fn reasonable_bar_passes() {
        assert!(expert_rules(&feats(ChartType::Bar)).is_pass());
    }

    #[test]
    fn single_value_is_bad() {
        let mut f = feats(ChartType::Bar);
        f.n_tuples = 1;
        f.n_distinct_x = 1;
        assert_eq!(expert_rules(&f), RuleVerdict::Bad("single value result"));
        f.n_tuples = 0;
        assert!(matches!(expert_rules(&f), RuleVerdict::Invalid(_)));
    }

    #[test]
    fn many_pie_slices_bad() {
        let mut f = feats(ChartType::Pie);
        f.n_distinct_x = 30;
        f.n_tuples = 30;
        assert_eq!(expert_rules(&f), RuleVerdict::Bad("too many pie slices"));
        f.n_distinct_x = 6;
        f.n_tuples = 6;
        assert!(expert_rules(&f).is_pass());
    }

    #[test]
    fn many_bar_categories_bad() {
        let mut f = feats(ChartType::Bar);
        f.n_distinct_x = 300;
        f.n_tuples = 300;
        assert_eq!(expert_rules(&f), RuleVerdict::Bad("too many bar categories"));
    }

    #[test]
    fn line_two_qualitative_invalid() {
        let mut f = feats(ChartType::Line);
        f.y_type = ColumnType::Categorical;
        assert_eq!(
            expert_rules(&f),
            RuleVerdict::Invalid("line chart with two qualitative variables")
        );
    }

    #[test]
    fn scatter_needs_numeric_x() {
        let f = feats(ChartType::Scatter);
        assert!(matches!(expert_rules(&f), RuleVerdict::Invalid(_)));
        let mut f = feats(ChartType::Scatter);
        f.x_type = ColumnType::Quantitative;
        assert!(expert_rules(&f).is_pass());
    }

    #[test]
    fn grouped_series_bounds() {
        let mut f = feats(ChartType::StackedBar);
        f.n_series = 1;
        assert!(matches!(expert_rules(&f), RuleVerdict::Bad(_)));
        f.n_series = 4;
        assert!(expert_rules(&f).is_pass());
        f.n_series = 40;
        assert_eq!(expert_rules(&f), RuleVerdict::Bad("too many series"));
    }

    #[test]
    fn negative_pie_invalid() {
        let mut f = feats(ChartType::Pie);
        f.y_min = -5.0;
        assert!(matches!(expert_rules(&f), RuleVerdict::Invalid(_)));
    }
}
