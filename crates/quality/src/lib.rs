//! # nv-quality — filtering bad visualizations (§2.4)
//!
//! A reimplementation of the DeepEye filtering pipeline the paper uses to
//! prune bad candidate visualizations:
//!
//! 1. **expert rules** ([`expert_rules`]) remove invalid and obviously bad
//!    charts (single values, many-slice pies, many-category bars, lines over
//!    two qualitative variables — the exact patterns §2.4 reports pruning on
//!    TPC-H/TPC-DS);
//! 2. a **binary classifier** ([`ChartClassifier`]) over the published
//!    DeepEye feature set decides the remaining candidates.

pub mod classifier;
pub mod features;
pub mod rules;

pub use classifier::{expert_score, synthetic_training_set, ChartClassifier};
pub use features::ChartFeatures;
pub use rules::{expert_rules, RuleVerdict, MAX_BAR_CATEGORIES, MAX_PIE_SLICES, MAX_SERIES};

use nv_render::ChartData;

/// The combined DeepEye-style filter: rules first, then the classifier.
#[derive(Debug, Clone)]
pub struct DeepEyeFilter {
    classifier: ChartClassifier,
}

impl DeepEyeFilter {
    /// Train the classifier stage deterministically from `seed`.
    pub fn new(seed: u64) -> DeepEyeFilter {
        DeepEyeFilter { classifier: ChartClassifier::train_default(seed) }
    }

    /// M(v): true ⇔ the chart is good (paper §2.4).
    pub fn is_good(&self, cd: &ChartData) -> bool {
        self.verdict(cd).0
    }

    /// Verdict plus a human-readable reason for pruned charts.
    pub fn verdict(&self, cd: &ChartData) -> (bool, &'static str) {
        let f = ChartFeatures::of(cd);
        match expert_rules(&f) {
            RuleVerdict::Invalid(r) | RuleVerdict::Bad(r) => (false, r),
            RuleVerdict::Pass => {
                if self.classifier.predict(&f.vector()) {
                    (true, "good")
                } else {
                    (false, "classifier: low quality")
                }
            }
        }
    }

    /// Ranking score in [0, 1] (rule failures score 0) — used by the DeepEye
    /// keyword-search baseline to order its top-k charts.
    pub fn score(&self, cd: &ChartData) -> f64 {
        self.evaluate(cd).1
    }

    /// One pass over the features: (M(v) verdict, ranking score). Equivalent
    /// to calling [`is_good`](Self::is_good) and [`score`](Self::score) but
    /// extracts the feature vector once — the synthesis pipeline evaluates
    /// dozens of candidates per pair, so the doubled extraction showed up.
    pub fn evaluate(&self, cd: &ChartData) -> (bool, f64) {
        let f = ChartFeatures::of(cd);
        match expert_rules(&f) {
            RuleVerdict::Invalid(_) => (false, 0.0),
            RuleVerdict::Bad(_) => (false, 0.05),
            RuleVerdict::Pass => {
                let v = f.vector();
                (self.classifier.predict(&v), self.classifier.prob(&v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::ChartType;
    use nv_data::{ColumnType, Value};
    use nv_render::ChartRow;

    fn chart(n: usize, chart: ChartType) -> ChartData {
        ChartData {
            chart,
            x_name: "x".into(),
            y_name: "y".into(),
            series_name: None,
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            rows: (0..n)
                .map(|i| ChartRow {
                    x: Value::text(format!("c{i}")),
                    y: Value::Int((i % 7 + 1) as i64),
                    series: None,
                })
                .collect(),
        }
    }

    #[test]
    fn filter_accepts_reasonable_bar() {
        let f = DeepEyeFilter::new(42);
        assert!(f.is_good(&chart(6, ChartType::Bar)), "{:?}", f.verdict(&chart(6, ChartType::Bar)));
    }

    #[test]
    fn filter_rejects_single_value_and_many_slices() {
        let f = DeepEyeFilter::new(42);
        assert!(!f.is_good(&chart(1, ChartType::Bar)));
        assert!(!f.is_good(&chart(40, ChartType::Pie)));
    }

    #[test]
    fn scores_are_ordered() {
        let f = DeepEyeFilter::new(42);
        let good = f.score(&chart(6, ChartType::Bar));
        let bad = f.score(&chart(200, ChartType::Bar));
        assert!(good > bad, "{good} vs {bad}");
        assert!(f.score(&chart(0, ChartType::Bar)) == 0.0);
    }
}
