//! Binary good/bad chart classifier.
//!
//! The paper reuses DeepEye's model, trained on 2,520 good / 30,892 bad
//! human-labeled charts. Those labels are not publicly downloadable, so —
//! per the substitution policy in DESIGN.md — we train the same *kind* of
//! model (a binary classifier over the same feature set) on a synthetic
//! corpus labeled by a soft expert-scoring function with injected label
//! noise. The classifier is logistic regression with L2, fit by mini-batch
//! gradient descent, implemented here from scratch.

use crate::features::ChartFeatures;
use nv_ast::ChartType;
use nv_data::ColumnType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Logistic-regression chart classifier.
#[derive(Debug, Clone)]
pub struct ChartClassifier {
    weights: Vec<f64>,
    bias: f64,
}

impl ChartClassifier {
    pub fn zeroed() -> ChartClassifier {
        ChartClassifier { weights: vec![0.0; ChartFeatures::DIM], bias: 0.0 }
    }

    /// P(good | features).
    pub fn prob(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        let z: f64 = self.bias + x.iter().zip(&self.weights).map(|(a, w)| a * w).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    pub fn predict(&self, x: &[f64]) -> bool {
        self.prob(x) >= 0.5
    }

    /// Fit with full-batch gradient descent + L2.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool], epochs: usize, lr: f64, l2: f64) {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return;
        }
        let n = xs.len() as f64;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = 0.0;
            for (x, &y) in xs.iter().zip(ys) {
                let err = self.prob(x) - f64::from(y);
                for (g, &xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= lr * (g / n + l2 * *w);
            }
            self.bias -= lr * grad_b / n;
        }
    }

    /// Accuracy on a labeled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    /// Train a classifier on the synthetic labeled corpus (seeded, so the
    /// filter is deterministic across runs).
    pub fn train_default(seed: u64) -> ChartClassifier {
        let (xs, ys) = synthetic_training_set(seed, 4000);
        let mut c = ChartClassifier::zeroed();
        c.fit(&xs, &ys, 800, 0.8, 1e-5);
        c
    }
}

/// Soft expert score in [0, 1]: the label-generating process for the
/// synthetic corpus. Encodes the community rules-of-thumb the real DeepEye
/// labels reflect (readability degrades with cardinality; scatter is about
/// correlation; pies want few slices; etc.).
pub fn expert_score(f: &ChartFeatures) -> f64 {
    let mut s: f64 = 0.8;
    let k = f.n_distinct_x as f64;
    match f.chart {
        ChartType::Pie => {
            // Small pies read fine (Example 5 is a two-slice pie); many
            // slices degrade fast.
            if k > 8.0 {
                s -= ((k - 8.0) / 10.0).min(0.6);
            }
            if k < 2.0 {
                s -= 0.5;
            }
        }
        ChartType::Bar | ChartType::StackedBar => {
            if k > 25.0 {
                s -= ((k - 25.0) / 50.0).min(0.6);
            }
            if k < 2.0 {
                s -= 0.5;
            }
        }
        ChartType::Line | ChartType::GroupingLine => {
            if f.x_type == ColumnType::Categorical {
                s -= 0.35;
            }
            if k < 3.0 {
                s -= 0.4;
            }
        }
        ChartType::Scatter | ChartType::GroupingScatter => {
            // A scatter is informative when the variables co-vary.
            s -= 0.3;
            s += 0.5 * f.correlation.map_or(0.0, f64::abs);
            if f.n_tuples < 5 {
                s -= 0.3;
            }
        }
    }
    if f.n_tuples <= 1 {
        s -= 0.8;
    }
    if f.chart.is_grouped() {
        if f.n_series < 2 {
            s -= 0.5;
        } else if f.n_series > 8 {
            s -= 0.3;
        }
    }
    if (f.y_max - f.y_min).abs() < 1e-9 {
        // A flat y axis carries no information.
        s -= 0.3;
    }
    s.clamp(0.0, 1.0)
}

/// Generate a synthetic labeled corpus: random plausible chart features,
/// labeled by thresholding [`expert_score`] with 5% label noise — imitating
/// the noisy human labels the real model was trained on.
pub fn synthetic_training_set(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let f = random_features(&mut rng);
        let score = expert_score(&f);
        let mut label = score >= 0.55;
        if rng.random::<f64>() < 0.05 {
            label = !label;
        }
        xs.push(f.vector());
        ys.push(label);
    }
    (xs, ys)
}

fn random_features(rng: &mut StdRng) -> ChartFeatures {
    let chart = ChartType::ALL[rng.random_range(0..7usize)];
    // Half the corpus concentrates on small cardinalities, where the
    // keep/prune boundary actually lives.
    let n_distinct_x = if rng.random::<f64>() < 0.5 {
        1 + rng.random_range(0..12usize)
    } else {
        1 + rng.random_range(0..80usize)
    };
    let n_series = if chart.is_grouped() { rng.random_range(1..12) } else { 0 };
    let n_tuples = n_distinct_x * n_series.max(1);
    let x_type = match chart {
        ChartType::Scatter | ChartType::GroupingScatter => ColumnType::Quantitative,
        _ => {
            if rng.random::<f64>() < 0.7 {
                ColumnType::Categorical
            } else {
                ColumnType::Temporal
            }
        }
    };
    let y_max = rng.random::<f64>() * 1000.0;
    ChartFeatures {
        chart,
        n_tuples,
        n_distinct_x,
        unique_ratio: n_distinct_x as f64 / n_tuples.max(1) as f64,
        x_type,
        y_type: ColumnType::Quantitative,
        y_min: 0.0,
        y_max,
        correlation: if x_type == ColumnType::Quantitative {
            Some(rng.random::<f64>() * 2.0 - 1.0)
        } else {
            None
        },
        n_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_separates_good_from_bad() {
        let (xs, ys) = synthetic_training_set(1, 3000);
        let mut c = ChartClassifier::zeroed();
        c.fit(&xs, &ys, 800, 0.8, 1e-5);
        let acc = c.accuracy(&xs, &ys);
        assert!(acc > 0.8, "training accuracy {acc}");
        // Held-out set from a different seed.
        let (txs, tys) = synthetic_training_set(2, 1000);
        let test_acc = c.accuracy(&txs, &tys);
        assert!(test_acc > 0.75, "test accuracy {test_acc}");
    }

    #[test]
    fn default_classifier_prefers_small_pies() {
        let c = ChartClassifier::train_default(42);
        let mut good = random_like_pie(5);
        let mut bad = random_like_pie(60);
        good.n_tuples = 5;
        bad.n_tuples = 60;
        assert!(c.prob(&good.vector()) > c.prob(&bad.vector()));
    }

    fn random_like_pie(slices: usize) -> ChartFeatures {
        ChartFeatures {
            chart: ChartType::Pie,
            n_tuples: slices,
            n_distinct_x: slices,
            unique_ratio: 1.0,
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            y_min: 0.0,
            y_max: 10.0,
            correlation: None,
            n_series: 0,
        }
    }

    #[test]
    fn two_slice_pie_survives() {
        // The paper's Example 5 is a male/female pie — it must classify good.
        let c = ChartClassifier::train_default(42);
        let f = random_like_pie(2);
        assert!(c.predict(&f.vector()), "p = {}", c.prob(&f.vector()));
    }

    #[test]
    fn expert_score_ranges() {
        let f = random_like_pie(5);
        let s = expert_score(&f);
        assert!((0.0..=1.0).contains(&s));
        let mut single = f.clone();
        single.n_tuples = 1;
        single.n_distinct_x = 1;
        assert!(expert_score(&single) < 0.3);
    }

    #[test]
    fn fit_on_empty_is_noop() {
        let mut c = ChartClassifier::zeroed();
        c.fit(&[], &[], 10, 0.1, 0.0);
        assert_eq!(c.bias, 0.0);
        assert_eq!(c.accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn prob_is_probability() {
        let c = ChartClassifier::train_default(7);
        let f = random_like_pie(8);
        let p = c.prob(&f.vector());
        assert!((0.0..=1.0).contains(&p));
    }
}
