//! Chart feature extraction — the DeepEye classifier's published feature
//! set (§2.4): number of distinct values, number of tuples, ratio of unique
//! values, max and min values, data type, attribute correlation, vis type.

use nv_ast::ChartType;
use nv_data::ColumnType;
use nv_render::ChartData;
use nv_stats::pearson;

/// Features of one candidate chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartFeatures {
    pub chart: ChartType,
    /// Number of data points.
    pub n_tuples: usize,
    /// Distinct x values.
    pub n_distinct_x: usize,
    /// `n_distinct_x / n_tuples` (1.0 when every x is unique).
    pub unique_ratio: f64,
    pub x_type: ColumnType,
    pub y_type: ColumnType,
    /// Min/max of the y channel (0 when y is not numeric).
    pub y_min: f64,
    pub y_max: f64,
    /// Pearson correlation of (x, y) when both are numeric.
    pub correlation: Option<f64>,
    /// Distinct series values (0 for ungrouped charts).
    pub n_series: usize,
}

impl ChartFeatures {
    pub fn of(cd: &ChartData) -> ChartFeatures {
        let n_tuples = cd.rows.len();
        let n_distinct_x = cd.n_categories();
        let ys: Vec<f64> = cd.rows.iter().filter_map(|r| r.y.as_f64()).collect();
        let xs: Vec<f64> = cd.rows.iter().filter_map(|r| r.x.as_f64()).collect();
        let correlation = if xs.len() == n_tuples && ys.len() == n_tuples {
            pearson(&xs, &ys)
        } else {
            None
        };
        ChartFeatures {
            chart: cd.chart,
            n_tuples,
            n_distinct_x,
            unique_ratio: if n_tuples > 0 {
                n_distinct_x as f64 / n_tuples as f64
            } else {
                0.0
            },
            x_type: cd.x_type,
            y_type: cd.y_type,
            y_min: ys.iter().copied().fold(f64::INFINITY, f64::min).clamp(-1e12, 0.0),
            y_max: ys.iter().copied().fold(0.0, f64::max).min(1e12),
            correlation,
            n_series: cd.n_series(),
        }
    }

    /// Dense feature vector for the classifier. Layout:
    /// `[log1p(tuples)/5, log1p(distinct_x)/5, unique_ratio, log1p(y_range)/7,
    ///   |corr|, has_corr, n_series/10, cardinality-threshold indicators ×4,
    ///   x_type one-hot ×3, y_type one-hot ×3, chart one-hot ×7]` → 24 dims.
    ///
    /// The threshold indicators (`<2`, `>12`, `>25`, `>50` distinct x) make
    /// the community cardinality rules-of-thumb linearly separable for the
    /// logistic-regression stage — the same trick DeepEye's hand-designed
    /// features play.
    pub fn vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(Self::DIM);
        let k = self.n_distinct_x;
        v.push((self.n_tuples as f64).ln_1p() / 5.0);
        v.push((k as f64).ln_1p() / 5.0);
        v.push(self.unique_ratio);
        v.push((self.y_max - self.y_min).max(0.0).ln_1p() / 7.0);
        v.push(self.correlation.map_or(0.0, f64::abs));
        v.push(f64::from(self.correlation.is_some()));
        v.push(self.n_series as f64 / 10.0);
        v.push(f64::from(k < 2));
        v.push(f64::from(k > 12));
        v.push(f64::from(k > 25));
        v.push(f64::from(k > 50));
        for t in [ColumnType::Categorical, ColumnType::Temporal, ColumnType::Quantitative] {
            v.push(f64::from(self.x_type == t));
        }
        for t in [ColumnType::Categorical, ColumnType::Temporal, ColumnType::Quantitative] {
            v.push(f64::from(self.y_type == t));
        }
        for c in ChartType::ALL {
            v.push(f64::from(self.chart == c));
        }
        // Chart-type × cardinality/correlation interactions: the community
        // rules are per-chart-type thresholds, which a linear model can only
        // express with these crossed features.
        for c in ChartType::ALL {
            let on = f64::from(self.chart == c);
            v.push(on * (k as f64).ln_1p() / 5.0);
            v.push(on * f64::from(k < 2));
            v.push(on * f64::from(k > 12));
            v.push(on * f64::from(k > 25));
            v.push(on * self.correlation.map_or(0.0, f64::abs));
        }
        debug_assert_eq!(v.len(), Self::DIM);
        v
    }

    /// Dimensionality of [`ChartFeatures::vector`].
    pub const DIM: usize = 24 + 7 * 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::Value;
    use nv_render::ChartRow;

    fn cd(n: usize, chart: ChartType) -> ChartData {
        ChartData {
            chart,
            x_name: "x".into(),
            y_name: "y".into(),
            series_name: None,
            x_type: ColumnType::Categorical,
            y_type: ColumnType::Quantitative,
            rows: (0..n)
                .map(|i| ChartRow {
                    x: Value::text(format!("c{i}")),
                    y: Value::Int(i as i64),
                    series: None,
                })
                .collect(),
        }
    }

    #[test]
    fn basic_features() {
        let f = ChartFeatures::of(&cd(5, ChartType::Bar));
        assert_eq!(f.n_tuples, 5);
        assert_eq!(f.n_distinct_x, 5);
        assert_eq!(f.unique_ratio, 1.0);
        assert_eq!(f.y_max, 4.0);
        assert!(f.correlation.is_none()); // x is text
        assert_eq!(f.n_series, 0);
    }

    #[test]
    fn correlation_for_numeric_x() {
        let mut c = cd(5, ChartType::Scatter);
        c.x_type = ColumnType::Quantitative;
        for (i, r) in c.rows.iter_mut().enumerate() {
            r.x = Value::Int(i as i64);
        }
        let f = ChartFeatures::of(&c);
        assert!((f.correlation.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vector_dim_and_onehots() {
        let f = ChartFeatures::of(&cd(3, ChartType::Pie));
        let v = f.vector();
        assert_eq!(v.len(), ChartFeatures::DIM);
        // x one-hot: categorical.
        assert_eq!(&v[11..14], &[1.0, 0.0, 0.0]);
        // y one-hot: quantitative.
        assert_eq!(&v[14..17], &[0.0, 0.0, 1.0]);
        // chart one-hot: pie is index 1.
        assert_eq!(v[17 + 1], 1.0);
        assert!(v[17..24].iter().sum::<f64>() == 1.0);
        // Cardinality indicators for k == 3: none fire.
        assert_eq!(&v[7..11], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_chart_is_safe() {
        let f = ChartFeatures::of(&cd(0, ChartType::Bar));
        assert_eq!(f.unique_ratio, 0.0);
        assert_eq!(f.vector().len(), ChartFeatures::DIM);
    }
}
