//! Distribution samplers, implemented directly (Box–Muller / inverse CDF)
//! so the workspace needs no sampling crate beyond `rand`'s uniform source.
//!
//! These drive the synthetic Spider data generator: the paper's Figure 9(a)
//! reports that nvBench's quantitative columns are predominantly log-normal,
//! with normal / exponential / power-law minorities and a long "none of the
//! six" tail — `nv-spider` samples column data from these generators with
//! matching proportions.

use rand::Rng;

/// A sampleable distribution family with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// N(mean, sd²)
    Normal { mean: f64, sd: f64 },
    /// exp(N(mu, sigma²))
    LogNormal { mu: f64, sigma: f64 },
    /// rate λ
    Exponential { rate: f64 },
    /// Pareto with scale x_min and shape alpha
    PowerLaw { x_min: f64, alpha: f64 },
    /// U[lo, hi)
    Uniform { lo: f64, hi: f64 },
    /// χ²(k)
    ChiSquare { k: f64 },
}

impl Dist {
    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Normal { mean, sd } => mean + sd * std_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            Dist::Exponential { rate } => {
                let u: f64 = rng.random::<f64>().max(1e-12);
                -u.ln() / rate
            }
            Dist::PowerLaw { x_min, alpha } => {
                let u: f64 = rng.random::<f64>().max(1e-12);
                x_min * u.powf(-1.0 / (alpha - 1.0))
            }
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
            Dist::ChiSquare { k } => {
                // Sum of squared standard normals for integer part; the
                // fractional part is approximated by a gamma-ish draw via
                // one extra scaled square.
                let whole = k.floor() as usize;
                let mut s = 0.0;
                for _ in 0..whole {
                    let z = std_normal(rng);
                    s += z * z;
                }
                let frac = k - whole as f64;
                if frac > 0.0 {
                    let z = std_normal(rng);
                    s += frac * z * z;
                }
                s
            }
        }
    }

    /// Draw `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The distribution's CDF at `x` (used by the KS test).
    pub fn cdf(&self, x: f64) -> f64 {
        use crate::special::{chi2_cdf, std_normal_cdf};
        match *self {
            Dist::Normal { mean, sd } => std_normal_cdf((x - mean) / sd),
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    std_normal_cdf((x.ln() - mu) / sigma)
                }
            }
            Dist::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            Dist::PowerLaw { x_min, alpha } => {
                if x <= x_min {
                    0.0
                } else {
                    1.0 - (x_min / x).powf(alpha - 1.0)
                }
            }
            Dist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            Dist::ChiSquare { k } => chi2_cdf(x, k),
        }
    }

    /// The family name used in Figure-9 reporting.
    pub fn family(&self) -> DistFamily {
        match self {
            Dist::Normal { .. } => DistFamily::Normal,
            Dist::LogNormal { .. } => DistFamily::LogNormal,
            Dist::Exponential { .. } => DistFamily::Exponential,
            Dist::PowerLaw { .. } => DistFamily::PowerLaw,
            Dist::Uniform { .. } => DistFamily::Uniform,
            Dist::ChiSquare { .. } => DistFamily::ChiSquare,
        }
    }
}

/// The six families tested in Figure 9(a), plus `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistFamily {
    Normal,
    LogNormal,
    Exponential,
    PowerLaw,
    Uniform,
    ChiSquare,
}

impl DistFamily {
    pub const ALL: [DistFamily; 6] = [
        DistFamily::Normal,
        DistFamily::LogNormal,
        DistFamily::Exponential,
        DistFamily::PowerLaw,
        DistFamily::Uniform,
        DistFamily::ChiSquare,
    ];

    /// The paper's abbreviation (Norm, L-N, Exp, Pow, Unif, Chi-2).
    pub fn abbrev(self) -> &'static str {
        match self {
            DistFamily::Normal => "Norm",
            DistFamily::LogNormal => "L-N",
            DistFamily::Exponential => "Exp",
            DistFamily::PowerLaw => "Pow",
            DistFamily::Uniform => "Unif",
            DistFamily::ChiSquare => "Chi-2",
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let s = Dist::Normal { mean: 10.0, sd: 2.0 }.sample_n(&mut r, 20_000);
        assert!((mean(&s) - 10.0).abs() < 0.1);
        let var = s.iter().map(|x| (x - 10.0).powi(2)).sum::<f64>() / s.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_positive_and_skewed() {
        let mut r = rng();
        let s = Dist::LogNormal { mu: 1.0, sigma: 0.8 }.sample_n(&mut r, 10_000);
        assert!(s.iter().all(|&x| x > 0.0));
        let m = mean(&s);
        let med = {
            let mut t = s.clone();
            t.sort_by(f64::total_cmp);
            t[t.len() / 2]
        };
        assert!(m > med, "log-normal mean {m} should exceed median {med}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let s = Dist::Exponential { rate: 0.5 }.sample_n(&mut r, 20_000);
        assert!((mean(&s) - 2.0).abs() < 0.1);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn powerlaw_min_respected() {
        let mut r = rng();
        let s = Dist::PowerLaw { x_min: 3.0, alpha: 2.5 }.sample_n(&mut r, 5_000);
        assert!(s.iter().all(|&x| x >= 3.0));
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        let s = Dist::Uniform { lo: -1.0, hi: 4.0 }.sample_n(&mut r, 10_000);
        assert!(s.iter().all(|&x| (-1.0..4.0).contains(&x)));
        assert!((mean(&s) - 1.5).abs() < 0.1);
    }

    #[test]
    fn chi_square_mean_is_k() {
        let mut r = rng();
        let s = Dist::ChiSquare { k: 4.0 }.sample_n(&mut r, 20_000);
        assert!((mean(&s) - 4.0).abs() < 0.15);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let dists = [
            Dist::Normal { mean: 0.0, sd: 1.0 },
            Dist::LogNormal { mu: 0.0, sigma: 1.0 },
            Dist::Exponential { rate: 1.0 },
            Dist::PowerLaw { x_min: 1.0, alpha: 2.0 },
            Dist::Uniform { lo: 0.0, hi: 1.0 },
            Dist::ChiSquare { k: 3.0 },
        ];
        for d in dists {
            let mut prev = 0.0;
            for i in 0..100 {
                let x = -5.0 + i as f64 * 0.2;
                let p = d.cdf(x);
                assert!((0.0..=1.0).contains(&p), "{d:?} cdf({x}) = {p}");
                assert!(p >= prev - 1e-12, "{d:?} not monotone at {x}");
                prev = p;
            }
        }
    }

    #[test]
    fn family_abbrevs() {
        assert_eq!(DistFamily::LogNormal.abbrev(), "L-N");
        assert_eq!(DistFamily::ALL.len(), 6);
        assert_eq!(
            Dist::Normal { mean: 0.0, sd: 1.0 }.family(),
            DistFamily::Normal
        );
    }
}
