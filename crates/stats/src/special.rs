//! Special functions needed by the distribution CDFs: the error function and
//! the regularized lower incomplete gamma. Implemented from scratch
//! (Abramowitz & Stegun 7.1.26; Numerical-Recipes-style series / continued
//! fraction), accurate to ~1e-7 — far below the KS resolution we need.

/// Error function, |error| ≤ 1.5e-7 (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// ln Γ(x) via the Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        #[allow(clippy::inconsistent_digit_grouping)]
        -1259.139_216_722_403_f64,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..200 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..200 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-12 {
                break;
            }
        }
        1.0 - h * (-x + a * x.ln() - ln_gamma(a)).exp()
    }
}

/// Chi-square CDF with `k` degrees of freedom.
pub fn chi2_cdf(x: f64, k: f64) -> f64 {
    gamma_p(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        let p = std_normal_cdf(1.96);
        assert!((p - 0.975).abs() < 1e-3, "{p}");
        assert!((std_normal_cdf(-1.96) - (1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(2.0)).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(1.0, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert!(gamma_p(3.0, 100.0) > 0.999_999);
    }

    #[test]
    fn chi2_cdf_median() {
        // Median of chi2(k) ≈ k(1 - 2/(9k))^3.
        let k: f64 = 5.0;
        let med = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
        let p = chi2_cdf(med, k);
        assert!((p - 0.5).abs() < 0.01, "{p}");
    }
}
