//! Goodness-of-fit: Kolmogorov–Smirnov tests against the six Figure-9(a)
//! distribution families, with moment/MLE parameter estimation.

use crate::describe::Summary;
use crate::sample::{Dist, DistFamily};

/// One-sample KS statistic D = sup |F_emp(x) − F(x)|.
pub fn ks_statistic(values: &[f64], dist: &Dist) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// 5%-level KS critical value (asymptotic): `1.358 / √n`.
pub fn ks_critical(n: usize, _alpha: f64) -> f64 {
    1.358 / (n as f64).sqrt()
}

/// Estimate the family's parameters from data (moments / MLE).
/// Returns `None` when the family cannot fit the sample support at all
/// (e.g. log-normal over non-positive data).
pub fn estimate(family: DistFamily, values: &[f64]) -> Option<Dist> {
    let s = Summary::of(values)?;
    match family {
        DistFamily::Normal => {
            if s.sd <= 1e-12 {
                return None;
            }
            Some(Dist::Normal { mean: s.mean, sd: s.sd })
        }
        DistFamily::LogNormal => {
            if s.min <= 0.0 {
                return None;
            }
            let logs: Vec<f64> = values.iter().map(|v| v.ln()).collect();
            let ls = Summary::of(&logs)?;
            if ls.sd <= 1e-12 {
                return None;
            }
            Some(Dist::LogNormal { mu: ls.mean, sigma: ls.sd })
        }
        DistFamily::Exponential => {
            if s.min < 0.0 || s.mean <= 1e-12 {
                return None;
            }
            Some(Dist::Exponential { rate: 1.0 / s.mean })
        }
        DistFamily::PowerLaw => {
            if s.min <= 0.0 {
                return None;
            }
            // Hill/MLE estimator: α = 1 + n / Σ ln(x / x_min).
            let x_min = s.min;
            let sum_ln: f64 = values.iter().map(|v| (v / x_min).ln().max(0.0)).sum();
            if sum_ln <= 1e-9 {
                return None;
            }
            let alpha = 1.0 + values.len() as f64 / sum_ln;
            Some(Dist::PowerLaw { x_min, alpha })
        }
        DistFamily::Uniform => {
            if s.max - s.min <= 1e-12 {
                return None;
            }
            Some(Dist::Uniform { lo: s.min, hi: s.max })
        }
        DistFamily::ChiSquare => {
            if s.min < 0.0 || s.mean <= 1e-9 {
                return None;
            }
            // E[χ²(k)] = k.
            Some(Dist::ChiSquare { k: s.mean })
        }
    }
}

/// Result of fitting one column against all six families.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The best-fitting family that passed the KS test, or `None` if none
    /// did — Figure 9(a)'s "None" bucket (295 of nvBench's columns).
    pub best: Option<DistFamily>,
    /// KS statistic of every family that could be estimated.
    pub statistics: Vec<(DistFamily, f64)>,
    pub critical: f64,
}

/// Fit a sample against all six families and pick the best passing one.
pub fn fit_best(values: &[f64]) -> FitResult {
    let critical = ks_critical(values.len().max(1), 0.05);
    let mut statistics = Vec::new();
    for fam in DistFamily::ALL {
        if let Some(dist) = estimate(fam, values) {
            statistics.push((fam, ks_statistic(values, &dist)));
        }
    }
    let best = statistics
        .iter()
        .filter(|(_, d)| *d <= critical)
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(f, _)| *f);
    FitResult { best, statistics, critical }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ks_accepts_true_distribution() {
        let mut r = rng();
        let d = Dist::Normal { mean: 5.0, sd: 2.0 };
        let sample = d.sample_n(&mut r, 500);
        let stat = ks_statistic(&sample, &d);
        assert!(stat < ks_critical(500, 0.05), "D = {stat}");
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let mut r = rng();
        let sample = Dist::Exponential { rate: 1.0 }.sample_n(&mut r, 500);
        let wrong = Dist::Uniform { lo: 0.0, hi: 10.0 };
        assert!(ks_statistic(&sample, &wrong) > ks_critical(500, 0.05));
    }

    #[test]
    fn fit_recovers_lognormal() {
        let mut r = rng();
        let sample = Dist::LogNormal { mu: 2.0, sigma: 0.7 }.sample_n(&mut r, 800);
        let fit = fit_best(&sample);
        assert_eq!(fit.best, Some(DistFamily::LogNormal), "{:?}", fit.statistics);
    }

    #[test]
    fn fit_recovers_normal() {
        let mut r = rng();
        let sample = Dist::Normal { mean: 100.0, sd: 15.0 }.sample_n(&mut r, 800);
        let fit = fit_best(&sample);
        assert_eq!(fit.best, Some(DistFamily::Normal));
    }

    #[test]
    fn fit_recovers_uniform() {
        let mut r = rng();
        let sample = Dist::Uniform { lo: 10.0, hi: 20.0 }.sample_n(&mut r, 800);
        let fit = fit_best(&sample);
        assert_eq!(fit.best, Some(DistFamily::Uniform));
    }

    #[test]
    fn fit_none_for_bimodal() {
        let mut r = rng();
        let mut sample = Dist::Normal { mean: 0.0, sd: 0.5 }.sample_n(&mut r, 400);
        sample.extend(Dist::Normal { mean: 100.0, sd: 0.5 }.sample_n(&mut r, 400));
        let fit = fit_best(&sample);
        assert_eq!(fit.best, None, "{:?}", fit.statistics);
    }

    #[test]
    fn estimate_support_constraints() {
        assert!(estimate(DistFamily::LogNormal, &[-1.0, 2.0, 3.0]).is_none());
        assert!(estimate(DistFamily::Exponential, &[-1.0, 2.0]).is_none());
        assert!(estimate(DistFamily::Uniform, &[5.0, 5.0]).is_none());
        assert!(estimate(DistFamily::Normal, &[5.0, 5.0, 5.0]).is_none());
        assert!(estimate(DistFamily::PowerLaw, &[1.0, 2.0, 8.0]).is_some());
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical(100, 0.05) > ks_critical(10_000, 0.05));
    }
}
