//! BLEU score (Papineni et al., 2002) — used by the paper (Table 3) to
//! quantify the *diversity* of NL variants for the same VIS query: lower
//! pairwise BLEU ⇒ more diverse phrasings.

use std::collections::HashMap;

/// Sentence-level BLEU of `candidate` against one `reference`, with n-grams
/// up to `max_n` (the paper's convention: 4), uniform weights, brevity
/// penalty, and +ε smoothing so short sentences don't zero out.
pub fn sentence_bleu(candidate: &[&str], reference: &[&str], max_n: usize) -> f64 {
    if candidate.is_empty() || reference.is_empty() {
        return 0.0;
    }
    // Clamp the order by the *candidate* only: a candidate shorter than
    // `max_n` has no n-grams of the higher orders (its precision there is
    // vacuous, not 1.0), while a short *reference* must still count against
    // the candidate's higher-order n-grams (clipped count 0, ε-smoothed)
    // rather than silently dropping them.
    let max_n = max_n.min(candidate.len()).max(1);
    let mut log_sum = 0.0;
    for n in 1..=max_n {
        let cand = ngram_counts(candidate, n);
        let refc = ngram_counts(reference, n);
        let total: usize = cand.values().sum();
        let mut clipped = 0usize;
        for (g, c) in &cand {
            clipped += (*c).min(refc.get(g).copied().unwrap_or(0));
        }
        // ε-smoothing keeps the geometric mean finite.
        let p = (clipped as f64 + 1e-9) / (total as f64 + 1e-9);
        log_sum += p.ln();
    }
    let precision = (log_sum / max_n as f64).exp();
    let bp = brevity_penalty(candidate.len(), reference.len());
    bp * precision
}

fn brevity_penalty(c: usize, r: usize) -> f64 {
    if c == 0 {
        // An empty candidate has nothing to score; without this guard the
        // `r / c` below divides by zero and the penalty becomes NaN/0-ish
        // garbage instead of a hard 0.
        0.0
    } else if c >= r {
        1.0
    } else {
        (1.0 - r as f64 / c as f64).exp()
    }
}

fn ngram_counts<'a>(tokens: &[&'a str], n: usize) -> HashMap<Vec<&'a str>, usize> {
    let mut m = HashMap::new();
    if tokens.len() < n {
        return m;
    }
    for w in tokens.windows(n) {
        *m.entry(w.to_vec()).or_insert(0) += 1;
    }
    m
}

/// Average pairwise BLEU among a set of sentences (each scored against each
/// other, both directions) — Table 3's "Avg. BLEU (Pair)". Returns 0 for
/// fewer than two sentences.
pub fn avg_pairwise_bleu(sentences: &[Vec<&str>], max_n: usize) -> f64 {
    if sentences.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, a) in sentences.iter().enumerate() {
        for (j, b) in sentences.iter().enumerate() {
            if i != j {
                sum += sentence_bleu(a, b, max_n);
                count += 1;
            }
        }
    }
    sum / count as f64
}

/// Whitespace tokenizer with lowercasing and punctuation stripping — BLEU's
/// usual preprocessing for NL sentences.
pub fn simple_tokens(s: &str) -> Vec<String> {
    s.split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn identical_sentences_score_one() {
        let s = toks("show me a bar chart of counts by major");
        let b = sentence_bleu(&s, &s, 4);
        assert!((b - 1.0).abs() < 1e-6, "{b}");
    }

    #[test]
    fn disjoint_sentences_score_near_zero() {
        let a = toks("alpha beta gamma delta epsilon");
        let b = toks("one two three four five");
        assert!(sentence_bleu(&a, &b, 4) < 1e-3);
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let a = toks("show me a pie chart of faculty by sex");
        let b = toks("draw a pie chart of faculty grouped by sex");
        let s = sentence_bleu(&a, &b, 4);
        assert!(s > 0.05 && s < 0.9, "{s}");
    }

    #[test]
    fn brevity_penalty_applies() {
        let long = toks("a b c d e f g h");
        let short = toks("a b c");
        // Short candidate against a long reference is penalized relative to
        // the reverse direction.
        let s1 = sentence_bleu(&short, &long, 2);
        let s2 = sentence_bleu(&long, &short, 2);
        assert!(s1 < s2, "{s1} vs {s2}");
    }

    #[test]
    fn pairwise_average() {
        let sents = vec![
            toks("show a bar chart"),
            toks("show a bar chart"),
            toks("completely different words here"),
        ];
        let avg = avg_pairwise_bleu(&sents, 4);
        assert!(avg > 0.0 && avg < 1.0);
        assert_eq!(avg_pairwise_bleu(&sents[..1], 4), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sentence_bleu(&[], &toks("x"), 4), 0.0);
        assert_eq!(sentence_bleu(&toks("x"), &[], 4), 0.0);
    }

    #[test]
    fn empty_candidate_scores_zero_via_brevity_penalty() {
        // Regression: brevity_penalty(0, r) used to divide by zero.
        assert_eq!(brevity_penalty(0, 5), 0.0);
        assert!(brevity_penalty(0, 5).is_finite());
        assert_eq!(sentence_bleu(&[], &toks("a b c"), 4), 0.0);
    }

    #[test]
    fn short_candidate_does_not_earn_vacuous_precision() {
        // Regression: with the order clamped by the reference too, a 2-token
        // candidate against a long reference skipped orders 3..4 entirely
        // and could outscore a longer, strictly-better candidate.
        let reference = toks("show a bar chart of counts by major");
        let two = toks("show a");
        let five = toks("show a bar chart of");
        let s2 = sentence_bleu(&two, &reference, 4);
        let s5 = sentence_bleu(&five, &reference, 4);
        assert!(s2 < s5, "short candidate should not outscore longer match: {s2} vs {s5}");
        // And the order is clamped by the candidate: a 2-token candidate
        // scores over orders 1..2 only, so a perfect 2-token prefix match
        // is brevity-penalized but not precision-zeroed.
        assert!(s2 > 0.0);
    }

    #[test]
    fn short_reference_still_counts_unmatched_higher_orders() {
        // A 6-token candidate vs a 2-token reference: orders 3..4 exist for
        // the candidate, match nothing, and must drag the score toward 0
        // (previously they were skipped, inflating the score).
        let cand = toks("a b x y z w");
        let reference = toks("a b");
        let s = sentence_bleu(&cand, &reference, 4);
        assert!(s < 1e-3, "{s}");
    }

    #[test]
    fn tokenizer_strips_punct() {
        assert_eq!(
            simple_tokens("Show, me: the BAR chart!"),
            vec!["show", "me", "the", "bar", "chart"]
        );
    }
}
