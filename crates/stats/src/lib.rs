//! # nv-stats — statistics substrate
//!
//! From-scratch statistical machinery shared across the workspace:
//!
//! * [`sample`] — samplers + CDFs for the six Figure-9 distribution families
//!   (normal, log-normal, exponential, power-law, uniform, chi-square);
//! * [`fit`] — Kolmogorov–Smirnov goodness-of-fit with parameter estimation
//!   (reproduces the Figure-9(a) column-distribution census);
//! * [`describe`] — moments, quartiles, skewness classes, IQR outliers,
//!   histograms, Pearson correlation (Figures 8, 9(b), 9(c); DeepEye
//!   features);
//! * [`bleu`] — BLEU for the NL-diversity column of Table 3.

pub mod bleu;
pub mod describe;
pub mod fit;
pub mod sample;
pub mod special;

pub use bleu::{avg_pairwise_bleu, sentence_bleu, simple_tokens};
pub use describe::{outlier_fraction, pearson, Histogram, OutlierClass, SkewClass, Summary};
pub use fit::{fit_best, ks_critical, ks_statistic, FitResult};
pub use sample::{Dist, DistFamily};
