//! Descriptive statistics: moments, quartiles, skewness classes, IQR
//! outliers, histograms and Pearson correlation — everything Figures 8–9 and
//! the DeepEye feature extractor need.

/// Summary of a numeric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub sd: f64,
    pub min: f64,
    pub max: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    /// Fisher–Pearson moment coefficient of skewness (g1).
    pub skewness: f64,
}

impl Summary {
    /// Compute the summary; returns `None` on an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let m2 = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let m3 = values.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        let sd = m2.sqrt();
        let skewness = if sd > 1e-12 { m3 / sd.powi(3) } else { 0.0 };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n,
            mean,
            sd,
            min: sorted[0],
            max: sorted[n - 1],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            skewness,
        })
    }

    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Skewness class per the paper's Figure 9(b) buckets.
    pub fn skew_class(&self) -> SkewClass {
        let s = self.skewness.abs();
        if s < 0.5 {
            SkewClass::ApproxSymmetric
        } else if s <= 1.0 {
            SkewClass::ModeratelySkewed
        } else {
            SkewClass::HighlySkewed
        }
    }
}

/// Linear-interpolated quantile over a pre-sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Figure 9(b) skewness classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SkewClass {
    ApproxSymmetric,
    ModeratelySkewed,
    HighlySkewed,
}

impl SkewClass {
    pub fn name(self) -> &'static str {
        match self {
            SkewClass::ApproxSymmetric => "approximately symmetric",
            SkewClass::ModeratelySkewed => "moderately skewed",
            SkewClass::HighlySkewed => "highly skewed",
        }
    }
}

/// Fraction of points more than `1.5 × IQR` outside [Q1, Q3] (paper §3.2).
pub fn outlier_fraction(values: &[f64]) -> f64 {
    let Some(s) = Summary::of(values) else { return 0.0 };
    let iqr = s.iqr();
    let lo = s.q1 - 1.5 * iqr;
    let hi = s.q3 + 1.5 * iqr;
    let outliers = values.iter().filter(|&&v| v < lo || v > hi).count();
    outliers as f64 / values.len() as f64
}

/// Figure 9(c) outlier-percentage buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OutlierClass {
    /// 0%
    None,
    /// (0%, 1%]
    UpTo1,
    /// (1%, 10%]
    OneToTen,
    /// > 10%
    MoreThanTen,
}

impl OutlierClass {
    pub fn of(fraction: f64) -> OutlierClass {
        if fraction <= 0.0 {
            OutlierClass::None
        } else if fraction <= 0.01 {
            OutlierClass::UpTo1
        } else if fraction <= 0.10 {
            OutlierClass::OneToTen
        } else {
            OutlierClass::MoreThanTen
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            OutlierClass::None => "no outliers",
            OutlierClass::UpTo1 => "0-1% outliers",
            OutlierClass::OneToTen => "1-10% outliers",
            OutlierClass::MoreThanTen => ">10% outliers",
        }
    }
}

/// A histogram over explicit bucket boundaries: bucket `i` counts values in
/// `[edges[i], edges[i+1])`; the last bucket is closed on the right.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub edges: Vec<f64>,
    pub counts: Vec<usize>,
}

impl Histogram {
    pub fn with_edges(edges: Vec<f64>, values: &[f64]) -> Histogram {
        assert!(edges.len() >= 2, "need at least two edges");
        let mut counts = vec![0usize; edges.len() - 1];
        let last = counts.len() - 1;
        for &v in values {
            if v < edges[0] || v > edges[edges.len() - 1] {
                continue;
            }
            // Linear scan is fine: figure histograms have < 20 buckets.
            for i in 0..counts.len() {
                let hi_ok = if i == last { v <= edges[i + 1] } else { v < edges[i + 1] };
                if v >= edges[i] && hi_ok {
                    counts[i] += 1;
                    break;
                }
            }
        }
        Histogram { edges, counts }
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Render one `label: count` line per bucket — the textual "figure".
    pub fn render(&self, label_fmt: impl Fn(f64, f64) -> String) -> Vec<String> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{}: {}", label_fmt(self.edges[i], self.edges[i + 1]), c))
            .collect()
    }
}

/// Pearson correlation coefficient; `None` when either side is constant or
/// lengths differ / are < 2.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx < 1e-12 || syy < 1e-12 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sd, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-9);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn skew_classes() {
        let sym = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(sym.skew_class(), SkewClass::ApproxSymmetric);
        // Strong right tail.
        let mut v: Vec<f64> = vec![1.0; 50];
        v.extend([50.0, 80.0, 100.0]);
        let sk = Summary::of(&v).unwrap();
        assert_eq!(sk.skew_class(), SkewClass::HighlySkewed);
        assert_eq!(SkewClass::ModeratelySkewed.name(), "moderately skewed");
    }

    #[test]
    fn constant_sample_has_zero_skew() {
        let s = Summary::of(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn outlier_fraction_detects_spikes() {
        let mut v: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        assert_eq!(outlier_fraction(&v), 0.0);
        v.push(1000.0);
        let f = outlier_fraction(&v);
        assert!(f > 0.0 && f < 0.02, "{f}");
        assert_eq!(OutlierClass::of(0.0), OutlierClass::None);
        assert_eq!(OutlierClass::of(0.005), OutlierClass::UpTo1);
        assert_eq!(OutlierClass::of(0.05), OutlierClass::OneToTen);
        assert_eq!(OutlierClass::of(0.5), OutlierClass::MoreThanTen);
    }

    #[test]
    fn histogram_buckets() {
        let h = Histogram::with_edges(
            vec![0.0, 5.0, 10.0],
            &[0.0, 1.0, 4.9, 5.0, 9.9, 10.0, 11.0, -1.0],
        );
        assert_eq!(h.counts, vec![3, 3]); // 10.0 lands in the closed last bucket
        assert_eq!(h.total(), 6);
        let lines = h.render(|lo, hi| format!("{lo}-{hi}"));
        assert_eq!(lines[0], "0-5: 3");
    }

    #[test]
    fn pearson_corr() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y2 = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y2).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&x, &[1.0]).is_none());
    }
}
