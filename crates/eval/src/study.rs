//! The T1/T2 study driver (Figure 13), inter-rater analysis (Figure 12) and
//! low-rated-pair identification for the §4.5 injection experiment.

use crate::raters::{latent_quality, majority_vote, Rater};
use nv_core::NvBench;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Study configuration (paper defaults: ~10% sample, 23 experts, 312
/// workers, 3→7 votes per HIT).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub sample_frac: f64,
    pub n_experts: usize,
    pub n_crowd: usize,
    pub votes_start: usize,
    pub votes_cap: usize,
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            sample_frac: 0.10,
            n_experts: 23,
            n_crowd: 312,
            votes_start: 3,
            votes_cap: 7,
            seed: 42,
        }
    }
}

/// Likert histogram (index 0 ↔ Strongly Disagree … index 4 ↔ Strongly
/// Agree).
pub type LikertDist = [usize; 5];

/// Aggregated study outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResult {
    pub sampled_pairs: Vec<usize>,
    pub expert_t1: LikertDist,
    pub expert_t2: LikertDist,
    pub crowd_t1: LikertDist,
    pub crowd_t2: LikertDist,
    /// Pairs rated Strongly Disagree / Disagree on either task by either
    /// population — the "low-rated (nl, vis) pairs" of §4.5.
    pub low_rated_pairs: Vec<usize>,
}

impl StudyResult {
    /// Fraction rated Agree or Strongly Agree.
    pub fn positive_rate(d: &LikertDist) -> f64 {
        let total: usize = d.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (d[3] + d[4]) as f64 / total as f64
    }

    /// Fraction rated Disagree or Strongly Disagree.
    pub fn negative_rate(d: &LikertDist) -> f64 {
        let total: usize = d.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (d[0] + d[1]) as f64 / total as f64
    }
}

/// Run the simulated T1/T2 study.
pub fn run_study(bench: &NvBench, cfg: &StudyConfig) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let experts: Vec<Rater> = (0..cfg.n_experts).map(|_| Rater::expert(&mut rng)).collect();
    let crowd: Vec<Rater> = (0..cfg.n_crowd).map(|_| Rater::crowd(&mut rng)).collect();

    // ~10% sample of pairs.
    let mut sampled: Vec<usize> = (0..bench.pairs.len())
        .filter(|_| rng.random::<f64>() < cfg.sample_frac)
        .collect();
    if sampled.is_empty() && !bench.pairs.is_empty() {
        sampled.push(0);
    }

    let mut result = StudyResult {
        sampled_pairs: sampled.clone(),
        expert_t1: [0; 5],
        expert_t2: [0; 5],
        crowd_t1: [0; 5],
        crowd_t2: [0; 5],
        low_rated_pairs: Vec::new(),
    };

    for &pi in &sampled {
        let pair = &bench.pairs[pi];
        let vis = &bench.vis_objects[pair.vis_id];
        let (q1, q2) = latent_quality(vis, pair);

        // One expert per HIT (the paper trusts individual experts).
        let e = experts[rng.random_range(0..experts.len())];
        let e1 = e.rate(&mut rng, q1);
        let e2 = e.rate(&mut rng, q2);
        result.expert_t1[(e1.score() - 1) as usize] += 1;
        result.expert_t2[(e2.score() - 1) as usize] += 1;

        // Crowd HIT: majority vote with escalation.
        let c1 = majority_vote(&mut rng, &crowd, q1, cfg.votes_start, cfg.votes_cap);
        let c2 = majority_vote(&mut rng, &crowd, q2, cfg.votes_start, cfg.votes_cap);
        result.crowd_t1[(c1.score() - 1) as usize] += 1;
        result.crowd_t2[(c2.score() - 1) as usize] += 1;

        if [e1, e2, c1, c2].iter().any(|l| l.is_negative()) {
            result.low_rated_pairs.push(pi);
        }
    }
    result
}

/// Figure-12 inter-rater data: for `n` overlapping T2 pairs, one expert
/// rating plus three crowd ratings each; classified by maximum disagreement.
#[derive(Debug, Clone, PartialEq)]
pub struct InterRater {
    /// Per sampled pair: (all ratings, max |difference|).
    pub per_pair: Vec<(Vec<u8>, u8)>,
    pub fully_agree: usize,
    pub mainly_agree: usize,
    pub disagree: usize,
}

pub fn inter_rater(bench: &NvBench, n: usize, seed: u64) -> InterRater {
    let mut rng = StdRng::seed_from_u64(seed);
    let experts: Vec<Rater> = (0..23).map(|_| Rater::expert(&mut rng)).collect();
    let crowd: Vec<Rater> = (0..40).map(|_| Rater::crowd(&mut rng)).collect();

    let mut per_pair = Vec::new();
    let (mut fully, mut mainly, mut dis) = (0usize, 0usize, 0usize);
    for _ in 0..n.min(bench.pairs.len()) {
        let pi = rng.random_range(0..bench.pairs.len());
        let pair = &bench.pairs[pi];
        let vis = &bench.vis_objects[pair.vis_id];
        let (_, q2) = latent_quality(vis, pair);
        let mut ratings: Vec<u8> = Vec::with_capacity(4);
        ratings.push(experts[rng.random_range(0..23usize)].rate(&mut rng, q2).score());
        for _ in 0..3 {
            ratings.push(crowd[rng.random_range(0..40usize)].rate(&mut rng, q2).score());
        }
        let max = *ratings.iter().max().unwrap();
        let min = *ratings.iter().min().unwrap();
        let spread = max - min;
        match spread {
            0 => fully += 1,
            1 => mainly += 1,
            _ => dis += 1,
        }
        per_pair.push((ratings, spread));
    }
    InterRater { per_pair, fully_agree: fully, mainly_agree: mainly, disagree: dis }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(17));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn study_regenerates_figure13_shape() {
        let b = bench();
        let cfg = StudyConfig { sample_frac: 0.6, seed: 42, ..Default::default() };
        let r = run_study(&b, &cfg);
        assert!(!r.sampled_pairs.is_empty());
        // The paper's headline shapes: most ratings positive, few negative.
        for d in [&r.expert_t1, &r.expert_t2, &r.crowd_t1, &r.crowd_t2] {
            let pos = StudyResult::positive_rate(d);
            let neg = StudyResult::negative_rate(d);
            assert!(pos > 0.55, "positive rate {pos} in {d:?}");
            assert!(neg < 0.25, "negative rate {neg} in {d:?}");
        }
        // Totals line up with the sample.
        assert_eq!(
            r.expert_t1.iter().sum::<usize>(),
            r.sampled_pairs.len()
        );
    }

    #[test]
    fn study_is_deterministic() {
        let b = bench();
        let cfg = StudyConfig { sample_frac: 0.4, ..Default::default() };
        assert_eq!(run_study(&b, &cfg), run_study(&b, &cfg));
    }

    #[test]
    fn low_rated_pairs_are_a_small_minority() {
        let b = bench();
        let cfg = StudyConfig { sample_frac: 1.0, ..Default::default() };
        let r = run_study(&b, &cfg);
        let frac = r.low_rated_pairs.len() as f64 / r.sampled_pairs.len() as f64;
        assert!(frac < 0.30, "low-rated fraction {frac}");
        assert!(!r.low_rated_pairs.is_empty(), "expected some low-rated pairs");
    }

    #[test]
    fn inter_rater_mostly_agrees() {
        let b = bench();
        let ir = inter_rater(&b, 50, 7);
        assert_eq!(ir.per_pair.len(), 50);
        assert_eq!(ir.fully_agree + ir.mainly_agree + ir.disagree, 50);
        // Figure 12's shape: full+mainly agreement dominates.
        assert!(
            ir.fully_agree + ir.mainly_agree > ir.disagree,
            "{} + {} vs {}",
            ir.fully_agree,
            ir.mainly_agree,
            ir.disagree
        );
        for (ratings, spread) in &ir.per_pair {
            assert_eq!(ratings.len(), 4);
            assert!(*spread <= 4);
        }
    }
}
