//! Stochastic rater simulation (DESIGN.md, Substitution 5).
//!
//! The paper's §3.3 study used 23 experts and 312 crowd workers on two
//! 5-point Likert tasks: **T1** "is this NL close to handwritten?" and
//! **T2** "does the NL match the vis?". We cannot run humans, so ratings are
//! generated from a *latent quality* derived honestly from synthesis
//! metadata (template regeneration after deletions, hardness carried over
//! from complex SQL, filter/join content that is hard to verify visually —
//! the exact factors the paper's participants cited), plus rater noise:
//! experts are low-noise, crowd workers noisier. Percentages in the
//! regenerated Figure 13 are emergent, not hard-coded.

use nv_core::{NlVisPair, NvBench, VisObject};
use nv_ast::Hardness;
use rand::rngs::StdRng;
use rand::Rng;

/// 5-point Likert answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Likert {
    StronglyDisagree = 1,
    Disagree = 2,
    Neutral = 3,
    Agree = 4,
    StronglyAgree = 5,
}

impl Likert {
    pub const ALL: [Likert; 5] = [
        Likert::StronglyDisagree,
        Likert::Disagree,
        Likert::Neutral,
        Likert::Agree,
        Likert::StronglyAgree,
    ];

    pub fn score(self) -> u8 {
        self as u8
    }

    pub fn from_score(s: u8) -> Likert {
        match s {
            0 | 1 => Likert::StronglyDisagree,
            2 => Likert::Disagree,
            3 => Likert::Neutral,
            4 => Likert::Agree,
            _ => Likert::StronglyAgree,
        }
    }

    pub fn is_positive(self) -> bool {
        self >= Likert::Agree
    }

    pub fn is_negative(self) -> bool {
        self <= Likert::Disagree
    }
}

/// Latent (T1 naturalness, T2 matching) quality of one (NL, VIS) pair,
/// in [0, 1].
pub fn latent_quality(vis: &VisObject, pair: &NlVisPair) -> (f64, f64) {
    let words = pair.nl.split_whitespace().count();

    // T1 — naturalness. Penalties mirror the participants' comments:
    // long/complex sentences read machine-generated; template-regenerated
    // NL (after deletions) is stiffer.
    let mut t1: f64 = 0.92;
    if words > 30 {
        t1 -= 0.18;
    } else if words > 22 {
        t1 -= 0.08;
    }
    if vis.needed_manual_nl {
        t1 -= 0.06;
    }
    match vis.hardness {
        Hardness::Hard => t1 -= 0.08,
        Hardness::ExtraHard => t1 -= 0.14,
        _ => {}
    }

    // T2 — matching. Filter/Join descriptions are hard to verify against the
    // rendered chart (the paper's own post-analysis of low ratings).
    let mut t2: f64 = 0.94;
    let body = vis.tree.query.primary();
    if body.filter.is_some() {
        t2 -= 0.08;
    }
    if body.has_join() {
        t2 -= 0.13;
    }
    if vis.tree.query.set_op().is_some() {
        t2 -= 0.12;
    }
    match vis.hardness {
        Hardness::Hard => t2 -= 0.04,
        Hardness::ExtraHard => t2 -= 0.08,
        _ => {}
    }
    (t1.clamp(0.05, 1.0), t2.clamp(0.05, 1.0))
}

/// Rater profile.
#[derive(Debug, Clone, Copy)]
pub struct Rater {
    /// Rating noise (σ of the Gaussian perturbation on the latent quality).
    pub noise: f64,
    /// Systematic leniency (positive) or harshness (negative).
    pub bias: f64,
}

impl Rater {
    pub fn expert(rng: &mut StdRng) -> Rater {
        Rater { noise: 0.07, bias: rng.random_range(-0.02..0.02) }
    }

    pub fn crowd(rng: &mut StdRng) -> Rater {
        Rater { noise: 0.09, bias: rng.random_range(-0.03..0.04) }
    }

    /// One Likert rating of a latent quality.
    pub fn rate(&self, rng: &mut StdRng, quality: f64) -> Likert {
        let z = gaussian(rng) * self.noise + self.bias;
        let x = quality + z;
        if x < 0.35 {
            Likert::StronglyDisagree
        } else if x < 0.55 {
            Likert::Disagree
        } else if x < 0.72 {
            Likert::Neutral
        } else if x < 0.88 {
            Likert::Agree
        } else {
            Likert::StronglyAgree
        }
    }
}

/// Majority voting with 3 → 7 escalation (§3.3): if three workers all
/// disagree, more are asked, capped at seven; ties resolve to the median.
pub fn majority_vote(
    rng: &mut StdRng,
    raters: &[Rater],
    quality: f64,
    start: usize,
    cap: usize,
) -> Likert {
    let mut votes: Vec<Likert> = Vec::with_capacity(cap);
    let mut next = 0usize;
    let ask = |votes: &mut Vec<Likert>, rng: &mut StdRng, next: &mut usize| {
        let r = raters[*next % raters.len()];
        *next += 1;
        votes.push(r.rate(rng, quality));
    };
    for _ in 0..start.min(cap) {
        ask(&mut votes, rng, &mut next);
    }
    loop {
        if let Some(winner) = plurality(&votes) {
            return winner;
        }
        if votes.len() >= cap {
            // No plurality at the cap: median.
            let mut s: Vec<u8> = votes.iter().map(|v| v.score()).collect();
            s.sort_unstable();
            return Likert::from_score(s[s.len() / 2]);
        }
        ask(&mut votes, rng, &mut next);
    }
}

/// The plurality winner, if any: the unique most-common answer, given at
/// least twice. All-distinct votes (the paper's "each one gives a different
/// answer") or a tie escalate.
fn plurality(votes: &[Likert]) -> Option<Likert> {
    let mut counts = [0usize; 6];
    for v in votes {
        counts[v.score() as usize] += 1;
    }
    let max = *counts.iter().max().unwrap();
    if max < 2 {
        return None;
    }
    let winners: Vec<usize> = (1..=5).filter(|&i| counts[i] == max).collect();
    if winners.len() == 1 {
        Some(Likert::from_score(winners[0] as u8))
    } else {
        None
    }
}

/// Box–Muller standard normal.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Convenience: latent qualities for every pair of a benchmark.
pub fn all_latent_qualities(bench: &NvBench) -> Vec<(f64, f64)> {
    bench
        .pairs
        .iter()
        .map(|p| latent_quality(&bench.vis_objects[p.vis_id], p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn likert_round_trip() {
        for l in Likert::ALL {
            assert_eq!(Likert::from_score(l.score()), l);
        }
        assert!(Likert::Agree.is_positive());
        assert!(Likert::Disagree.is_negative());
        assert!(!Likert::Neutral.is_positive());
    }

    #[test]
    fn experts_rate_high_quality_positively() {
        let mut r = rng();
        let rater = Rater::expert(&mut r);
        let positive = (0..500)
            .filter(|_| rater.rate(&mut r, 0.92).is_positive())
            .count();
        assert!(positive > 450, "{positive}/500");
        let negative = (0..500)
            .filter(|_| rater.rate(&mut r, 0.2).is_negative())
            .count();
        assert!(negative > 450, "{negative}/500");
    }

    #[test]
    fn crowd_is_noisier_than_experts() {
        let mut r = rng();
        let expert = Rater::expert(&mut r);
        let crowd = Rater::crowd(&mut r);
        let spread = |rater: Rater, r: &mut StdRng| {
            let votes: Vec<u8> = (0..400).map(|_| rater.rate(r, 0.7).score()).collect();
            let mean = votes.iter().map(|&v| v as f64).sum::<f64>() / votes.len() as f64;
            votes.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / votes.len() as f64
        };
        assert!(spread(crowd, &mut r) > spread(expert, &mut r));
    }

    #[test]
    fn majority_vote_converges() {
        let mut r = rng();
        let raters: Vec<Rater> = (0..7).map(|_| Rater::crowd(&mut r)).collect();
        // High quality → positive verdicts dominate.
        let positive = (0..200)
            .filter(|_| majority_vote(&mut r, &raters, 0.9, 3, 7).is_positive())
            .count();
        assert!(positive > 160, "{positive}/200");
    }

    #[test]
    fn latent_quality_penalizes_complexity() {
        let tree = nv_ast::tokens::parse_vql_str(
            "visualize bar select t.a , count ( t.* ) from t group by t.a",
        )
        .unwrap();
        let vis = |hard, manual| VisObject {
            vis_id: 0,
            db_name: "d".into(),
            source_pair_id: 0,
            vql: tree.to_vql(),
            chart: nv_ast::ChartType::Bar,
            hardness: hard,
            tree: tree.clone(),
            edit: Default::default(),
            needed_manual_nl: manual,
        };
        let short = NlVisPair { pair_id: 0, vis_id: 0, nl: "Show a bar of counts.".into() };
        let long = NlVisPair {
            pair_id: 1,
            vis_id: 0,
            nl: "word ".repeat(35).trim().to_string(),
        };
        let (t1_easy, t2_easy) = latent_quality(&vis(Hardness::Easy, false), &short);
        let (t1_long, _) = latent_quality(&vis(Hardness::Easy, false), &long);
        let (t1_hard, t2_hard) = latent_quality(&vis(Hardness::ExtraHard, true), &short);
        assert!(t1_long < t1_easy);
        assert!(t1_hard < t1_easy);
        assert!(t2_hard < t2_easy);
    }
}
