//! nvBench* — the refined benchmark (§3.3).
//!
//! The paper's experts revised the ~2% of NL queries they rated imperfect,
//! producing the refined release nvBench*. We simulate the same pass: pairs
//! the (simulated) study rated low get their NL regenerated from the VIS
//! tree itself — the same clean rewrite the synthesizer uses after deletion
//! edits — which lifts their latent quality on re-evaluation.

use crate::study::StudyResult;
use nv_core::NvBench;
use nv_synth::{describe_data_part, normalize};

/// Outcome of the refinement pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineReport {
    /// Pairs whose NL was rewritten.
    pub revised: usize,
    /// Fraction of the whole benchmark revised (the paper's ~2%).
    pub revised_fraction_pct: u32,
}

/// Produce nvBench*: rewrite the NL of every low-rated pair.
pub fn refine(bench: &NvBench, study: &StudyResult) -> (NvBench, RefineReport) {
    let mut refined = bench.clone();
    let mut revised = 0usize;
    for &pi in &study.low_rated_pairs {
        let pair = &mut refined.pairs[pi];
        let vis = &refined.vis_objects[pair.vis_id];
        let db = bench
            .databases
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(&vis.db_name));
        let Some(db) = db else { continue };
        let core = describe_data_part(db, &vis.tree);
        let chart = vis
            .tree
            .chart
            .map(|c| c.display_name())
            .unwrap_or("chart");
        pair.nl = normalize(&format!("Show {core} as a {chart}."));
        revised += 1;
    }
    let pct = if bench.pairs.is_empty() {
        0
    } else {
        (revised * 100 / bench.pairs.len()) as u32
    };
    (refined, RefineReport { revised, revised_fraction_pct: pct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_study, StudyConfig};
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(23));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn refinement_rewrites_exactly_the_low_rated_pairs() {
        let b = bench();
        let study = run_study(&b, &StudyConfig { sample_frac: 1.0, ..Default::default() });
        let (refined, report) = refine(&b, &study);
        assert_eq!(report.revised, study.low_rated_pairs.len());
        assert_eq!(refined.pairs.len(), b.pairs.len());
        let low: std::collections::HashSet<usize> =
            study.low_rated_pairs.iter().copied().collect();
        for (i, (orig, new)) in b.pairs.iter().zip(&refined.pairs).enumerate() {
            if low.contains(&i) {
                assert_ne!(orig.nl, new.nl, "pair {i} not rewritten");
                assert!(new.nl.ends_with('.'));
            } else {
                assert_eq!(orig.nl, new.nl, "pair {i} changed unexpectedly");
            }
        }
    }

    #[test]
    fn refined_benchmark_rates_no_worse() {
        let b = bench();
        let cfg = StudyConfig { sample_frac: 1.0, ..Default::default() };
        let study = run_study(&b, &cfg);
        if study.low_rated_pairs.is_empty() {
            return; // nothing to refine at this seed
        }
        let (refined, _) = refine(&b, &study);
        let study2 = run_study(&refined, &cfg);
        // A second (identically-seeded) study should find at most as many
        // low-rated pairs — the revised NL is shorter and cleaner.
        assert!(
            study2.low_rated_pairs.len() <= study.low_rated_pairs.len(),
            "{} → {}",
            study.low_rated_pairs.len(),
            study2.low_rated_pairs.len()
        );
    }
}
