//! Task T3 timing simulation (Figure 14): how long experts take to write an
//! NL query for a given visualization.
//!
//! The paper measured 460 handwritten queries: min 37 s, median 82 s,
//! mean 140 s, max 411 s — a strongly right-skewed distribution. We model
//! writing time as log-normal scaled by task hardness, clamped to the
//! observed support, and feed the resulting mean into the §3.3 man-hour
//! extrapolation (140 s × 25,750 pairs ≈ 42 days).

use crate::raters::gaussian;
use nv_ast::Hardness;
use nv_core::NvBench;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated writing-time sample, seconds.
pub fn writing_time(rng: &mut StdRng, hardness: Hardness) -> f64 {
    // Log-normal around the paper's median (~82 s), widened for harder
    // tasks; the long tail produces the 400-second stragglers.
    let (mu, sigma) = match hardness {
        Hardness::Easy => (4.15, 0.55),
        Hardness::Medium => (4.45, 0.60),
        Hardness::Hard => (4.80, 0.60),
        Hardness::ExtraHard => (5.05, 0.55),
    };
    let t = (mu + sigma * gaussian(rng)).exp();
    t.clamp(37.0, 411.0)
}

/// Summary of a T3 run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    pub samples: Vec<f64>,
    pub min: f64,
    pub median: f64,
    pub mean: f64,
    pub max: f64,
}

/// Simulate `n` T3 tasks drawn from the benchmark's hardness mix.
pub fn simulate_t3(bench: &NvBench, n: usize, seed: u64) -> TimingReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let hardness = if bench.vis_objects.is_empty() {
            Hardness::Medium
        } else {
            bench.vis_objects[rng.random_range(0..bench.vis_objects.len())].hardness
        };
        samples.push(writing_time(&mut rng, hardness));
    }
    summarize(samples)
}

fn summarize(mut samples: Vec<f64>) -> TimingReport {
    samples.sort_by(f64::total_cmp);
    let n = samples.len().max(1);
    let min = samples.first().copied().unwrap_or(0.0);
    let max = samples.last().copied().unwrap_or(0.0);
    let median = samples.get(n / 2).copied().unwrap_or(0.0);
    let mean = samples.iter().sum::<f64>() / n as f64;
    TimingReport { samples, min, median, mean, max }
}

impl TimingReport {
    /// Extrapolated from-scratch man-days for `total_pairs` NL queries
    /// (paper: 140 s × 25,750 ≈ 42 days).
    pub fn scratch_days(&self, total_pairs: usize) -> f64 {
        self.mean * total_pairs as f64 / 3600.0 / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    #[test]
    fn shape_matches_paper_figures() {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(13));
        let bench =
            Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench;
        let r = simulate_t3(&bench, 460, 42);
        assert_eq!(r.samples.len(), 460);
        assert!(r.min >= 37.0 && r.max <= 411.0);
        // Right-skewed: mean above median; in the paper's ballpark.
        assert!(r.mean > r.median, "mean {} median {}", r.mean, r.median);
        assert!((60.0..140.0).contains(&r.median), "median {}", r.median);
        assert!((90.0..190.0).contains(&r.mean), "mean {}", r.mean);
    }

    #[test]
    fn harder_tasks_take_longer_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let avg = |h: Hardness, rng: &mut StdRng| {
            (0..800).map(|_| writing_time(rng, h)).sum::<f64>() / 800.0
        };
        let easy = avg(Hardness::Easy, &mut rng);
        let extra = avg(Hardness::ExtraHard, &mut rng);
        assert!(extra > easy * 1.3, "{easy} vs {extra}");
    }

    #[test]
    fn scratch_days_extrapolation() {
        let r = summarize(vec![140.0; 100]);
        // 140 s × 25,750 / 86,400 ≈ 41.7 days.
        let days = r.scratch_days(25_750);
        assert!((days - 41.7).abs() < 0.3, "{days}");
    }
}
