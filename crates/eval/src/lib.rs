//! # nv-eval — simulated human evaluation (§3.3)
//!
//! The paper validated nvBench with 23 experts and 312 crowd workers; this
//! crate simulates that study (DESIGN.md, Substitution 5): a latent-quality
//! model derived from synthesis metadata, expert/crowd rater noise profiles,
//! majority voting with 3→7 escalation, inter-rater agreement (Figure 12),
//! Likert distributions (Figure 13), T3 writing-time modeling (Figure 14),
//! and identification of the low-rated pairs the §4.5 injection experiment
//! needs.

pub mod raters;
pub mod refine;
pub mod study;
pub mod timing;

pub use refine::{refine, RefineReport};
pub use raters::{all_latent_qualities, latent_quality, majority_vote, Likert, Rater};
pub use study::{inter_rater, run_study, InterRater, LikertDist, StudyConfig, StudyResult};
pub use timing::{simulate_t3, writing_time, TimingReport};
