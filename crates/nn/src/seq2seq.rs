//! Encoder–decoder sequence model (paper §4.1, Figure 15): bi-directional
//! LSTM encoder, LSTM decoder, three variants — basic, +Luong attention,
//! +copy (pointer-generator) — trained with Adam, teacher forcing, gradient
//! clipping at 2.0 and early stopping, exactly the paper's training recipe
//! (scaled-down dimensions; the paper uses embed 100 / hidden 150).
//!
//! The copy variant requires source and target token ids to share one
//! vocabulary space (so a source token can be emitted directly) — which is
//! how `nv-seq2vis` builds its vocab.
//!
//! ## Training determinism
//!
//! Batch members fan out over [`nv_core::par::map_ordered`] (per-worker
//! reusable tapes) and their per-sample [`GradSet`]s — returned in input
//! order — merge through [`nv_core::par::tree_reduce`], a fixed pairwise
//! tree. Training loss and final parameters are therefore **bit-identical
//! across any `threads` setting**, and — because the fused fast kernels
//! and the unfused [`KernelPolicy::NaiveOracle`] twin share one numeric
//! contract — across kernel policies too (`tests/train_determinism.rs`).

use crate::autograd::{GradSet, KernelPolicy, ParamId, ParamStore, Tape, T};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model variants evaluated in the paper (Figure 17, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    Basic,
    Attention,
    Copy,
}

impl ModelVariant {
    pub const ALL: [ModelVariant; 3] =
        [ModelVariant::Basic, ModelVariant::Attention, ModelVariant::Copy];

    pub fn name(self) -> &'static str {
        match self {
            ModelVariant::Basic => "seq2vis",
            ModelVariant::Attention => "seq2vis+attention",
            ModelVariant::Copy => "seq2vis+copying",
        }
    }
}

/// Hyperparameters.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    pub vocab: usize,
    pub embed_dim: usize,
    pub hidden: usize,
    pub variant: ModelVariant,
    pub seed: u64,
    pub lr: f32,
    /// Global-norm gradient clip (paper: 2.0).
    pub clip: f32,
    /// Mini-batch size (paper: 16).
    pub batch: usize,
    /// BOS/EOS ids in the shared vocab.
    pub bos: usize,
    pub eos: usize,
    pub max_decode_len: usize,
    /// Batch-member worker threads (0 = one per available core). Any value
    /// produces bit-identical training.
    pub threads: usize,
    /// Fast fused kernels or the naive differential oracle (bit-identical;
    /// the oracle exists for verification and as the benchmark baseline).
    pub kernel: KernelPolicy,
}

impl Seq2SeqConfig {
    pub fn small(vocab: usize, bos: usize, eos: usize, variant: ModelVariant) -> Seq2SeqConfig {
        Seq2SeqConfig {
            vocab,
            embed_dim: 48,
            hidden: 64,
            variant,
            seed: 42,
            lr: 2e-3,
            clip: 2.0,
            batch: 16,
            bos,
            eos,
            max_decode_len: 60,
            threads: 0,
            kernel: KernelPolicy::Fast,
        }
    }
}

/// One training sample: source and target token-id sequences (no BOS/EOS —
/// the model adds them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    pub src: Vec<usize>,
    pub tgt: Vec<usize>,
}

struct LstmParams {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    hidden: usize,
}

impl LstmParams {
    fn new(store: &mut ParamStore, input: usize, hidden: usize, rng: &mut StdRng) -> LstmParams {
        let mut b = Matrix::zeros(4 * hidden, 1);
        // Forget-gate bias at 1.0 — standard LSTM initialization.
        for i in hidden..2 * hidden {
            b.data[i] = 1.0;
        }
        LstmParams {
            w_ih: store.add(Matrix::xavier(4 * hidden, input, rng)),
            w_hh: store.add(Matrix::xavier(4 * hidden, hidden, rng)),
            b: store.add(b),
            hidden,
        }
    }

    /// One LSTM step: packed `[i|f|g|o]` pre-activation, then the fused
    /// gate op (or their unfused naive twins, by tape policy).
    fn step(&self, tape: &mut Tape, store: &ParamStore, x: T, h: T, c: T) -> (T, T) {
        let z = tape.affine2(store, self.w_ih, x, self.w_hh, h, self.b);
        tape.lstm_gates(store, z, c, self.hidden)
    }
}

/// The seq2seq model.
pub struct Seq2Seq {
    pub cfg: Seq2SeqConfig,
    store: ParamStore,
    embedding: ParamId,
    enc_fwd: LstmParams,
    enc_bwd: LstmParams,
    dec: LstmParams,
    /// Bridges the concatenated encoder final states (2h) into decoder h/c.
    w_bridge_h: ParamId,
    w_bridge_c: ParamId,
    /// Luong "general" score: maps decoder h into encoder space (2h × h).
    w_attn: ParamId,
    /// Output projection (vocab × feat), feat = h (basic) or 3h (attn/copy).
    w_out: ParamId,
    b_out: ParamId,
    /// Copy gate (1 × (3h + e)).
    w_gen: ParamId,
}

impl Seq2Seq {
    pub fn new(cfg: Seq2SeqConfig) -> Seq2Seq {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let e = cfg.embed_dim;
        let h = cfg.hidden;
        let embedding = store.add(Matrix::xavier(cfg.vocab, e, &mut rng));
        let enc_fwd = LstmParams::new(&mut store, e, h, &mut rng);
        let enc_bwd = LstmParams::new(&mut store, e, h, &mut rng);
        let dec = LstmParams::new(&mut store, e, h, &mut rng);
        let w_bridge_h = store.add(Matrix::xavier(h, 2 * h, &mut rng));
        let w_bridge_c = store.add(Matrix::xavier(h, 2 * h, &mut rng));
        let w_attn = store.add(Matrix::xavier(2 * h, h, &mut rng));
        let feat = if cfg.variant == ModelVariant::Basic { h } else { 3 * h };
        let w_out = store.add(Matrix::xavier(cfg.vocab, feat, &mut rng));
        let b_out = store.add(Matrix::zeros(cfg.vocab, 1));
        let w_gen = store.add(Matrix::xavier(1, 3 * h + e, &mut rng));
        Seq2Seq {
            cfg,
            store,
            embedding,
            enc_fwd,
            enc_bwd,
            dec,
            w_bridge_h,
            w_bridge_c,
            w_attn,
            w_out,
            b_out,
            w_gen,
        }
    }

    pub fn n_parameters(&self) -> usize {
        self.store.n_scalars()
    }

    /// Read access to the parameter store (gradient-check harness).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store — the finite-difference
    /// harness perturbs individual scalars through this.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The named parameter blocks this variant actually trains (the basic
    /// variant has no attention or copy-gate weights in its graph).
    pub fn param_blocks(&self) -> Vec<(&'static str, ParamId)> {
        let mut blocks = vec![
            ("embedding", self.embedding),
            ("enc_fwd.w_ih", self.enc_fwd.w_ih),
            ("enc_fwd.w_hh", self.enc_fwd.w_hh),
            ("enc_fwd.b", self.enc_fwd.b),
            ("enc_bwd.w_ih", self.enc_bwd.w_ih),
            ("enc_bwd.w_hh", self.enc_bwd.w_hh),
            ("enc_bwd.b", self.enc_bwd.b),
            ("dec.w_ih", self.dec.w_ih),
            ("dec.w_hh", self.dec.w_hh),
            ("dec.b", self.dec.b),
            ("w_bridge_h", self.w_bridge_h),
            ("w_bridge_c", self.w_bridge_c),
            ("w_out", self.w_out),
            ("b_out", self.b_out),
        ];
        if self.cfg.variant != ModelVariant::Basic {
            blocks.push(("w_attn", self.w_attn));
        }
        if self.cfg.variant == ModelVariant::Copy {
            blocks.push(("w_gen", self.w_gen));
        }
        blocks
    }

    /// FNV-1a over the exact bit patterns of every parameter scalar — the
    /// determinism tests compare these across thread counts and kernel
    /// policies.
    pub fn params_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for m in &self.store.mats {
            for &x in &m.data {
                for byte in x.to_bits().to_le_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    /// A tape matching this model's kernel policy.
    fn fresh_tape(&self) -> Tape {
        Tape::with_policy(self.cfg.kernel)
    }

    /// Encode the source: per-step bi-LSTM outputs (2h) and bridged initial
    /// decoder state.
    fn encode(&self, tape: &mut Tape, src: &[usize]) -> (Vec<T>, T, T) {
        let store = &self.store;
        let h0 = tape.constant(Matrix::zeros(self.cfg.hidden, 1));
        let c0 = tape.constant(Matrix::zeros(self.cfg.hidden, 1));

        let embeds: Vec<T> = src
            .iter()
            .map(|&tok| tape.embed(store, self.embedding, tok.min(self.cfg.vocab - 1)))
            .collect();

        let mut fwd = Vec::with_capacity(src.len());
        let (mut h, mut c) = (h0, c0);
        for &x in &embeds {
            let (h2, c2) = self.enc_fwd.step(tape, store, x, h, c);
            fwd.push(h2);
            h = h2;
            c = c2;
        }
        let (fwd_h, fwd_c) = (h, c);

        let mut bwd = vec![h0; src.len()];
        let (mut h, mut c) = (h0, c0);
        for (i, &x) in embeds.iter().enumerate().rev() {
            let (h2, c2) = self.enc_bwd.step(tape, store, x, h, c);
            bwd[i] = h2;
            h = h2;
            c = c2;
        }
        let (bwd_h, bwd_c) = (h, c);

        let outputs: Vec<T> = fwd
            .iter()
            .zip(&bwd)
            .map(|(&f, &b)| tape.concat_rows(store, &[f, b]))
            .collect();

        let hcat = tape.concat_rows(store, &[fwd_h, bwd_h]);
        let ccat = tape.concat_rows(store, &[fwd_c, bwd_c]);
        let dh0 = tape.linear(store, self.w_bridge_h, hcat);
        let dh = tape.tanh(store, dh0);
        let dc0 = tape.linear(store, self.w_bridge_c, ccat);
        let dc = tape.tanh(store, dc0);
        (outputs, dh, dc)
    }

    /// One decoder step: returns the probability distribution node and the
    /// new (h, c). `copy_rows` is the source token-id row map for the
    /// pointer-copy scatter (copy variant only).
    fn decode_step(
        &self,
        tape: &mut Tape,
        enc_mat: T,
        copy_rows: Option<&[usize]>,
        prev_tok: usize,
        h: T,
        c: T,
    ) -> (T, T, T) {
        let store = &self.store;
        let x = tape.embed(store, self.embedding, prev_tok.min(self.cfg.vocab - 1));
        let (h2, c2) = self.dec.step(tape, store, x, h, c);

        let probs = match self.cfg.variant {
            ModelVariant::Basic => {
                let z = tape.affine(store, self.w_out, h2, self.b_out);
                tape.softmax(store, z)
            }
            ModelVariant::Attention | ModelVariant::Copy => {
                // Luong general attention.
                let query = tape.linear(store, self.w_attn, h2); // 2h×1
                let scores = tape.matmul_tn(store, enc_mat, query); // T×1
                let attn = tape.softmax(store, scores);
                let ctx = tape.matmul(store, enc_mat, attn); // 2h×1
                let feat = tape.concat_rows(store, &[h2, ctx]); // 3h×1
                let z = tape.affine(store, self.w_out, feat, self.b_out);
                let vocab_dist = tape.softmax(store, z);
                if self.cfg.variant == ModelVariant::Attention {
                    vocab_dist
                } else {
                    // Pointer-generator: blend vocab and copy distributions.
                    let gen_in = tape.concat_rows(store, &[feat, x]);
                    let gl = tape.linear(store, self.w_gen, gen_in);
                    let gate = tape.sigmoid(store, gl);
                    let copy_dist = tape.copy_scatter(
                        store,
                        attn,
                        copy_rows.expect("copy rows"),
                        self.cfg.vocab,
                    );
                    tape.blend(store, gate, vocab_dist, copy_dist)
                }
            }
        };
        (probs, h2, c2)
    }

    /// Clamped source token ids — the pointer-copy row map.
    fn copy_rows(&self, src: &[usize]) -> Option<Vec<usize>> {
        (self.cfg.variant == ModelVariant::Copy)
            .then(|| src.iter().map(|&t| t.min(self.cfg.vocab - 1)).collect())
    }

    /// Teacher-forced per-token NLL nodes for one sample, recorded on
    /// `tape` (which is reset first — workers reuse one tape across
    /// samples so its buffer pool warms up).
    fn forward_token_losses(&self, tape: &mut Tape, sample: &Sample) -> Vec<T> {
        let store = &self.store;
        tape.reset();
        let (enc_outputs, mut h, mut c) = self.encode(tape, &sample.src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_rows = self.copy_rows(&sample.src);

        let mut inputs = vec![self.cfg.bos];
        inputs.extend_from_slice(&sample.tgt);
        let mut targets = sample.tgt.clone();
        targets.push(self.cfg.eos);

        let mut losses = Vec::with_capacity(targets.len());
        for (prev, &tgt) in inputs.iter().zip(&targets) {
            let (probs, h2, c2) =
                self.decode_step(tape, enc_mat, copy_rows.as_deref(), *prev, h, c);
            h = h2;
            c = c2;
            let l = tape.nll(store, probs, tgt.min(self.cfg.vocab - 1));
            losses.push(l);
        }
        losses
    }

    /// Teacher-forced mean per-token loss node for one sample.
    fn forward_loss(&self, tape: &mut Tape, sample: &Sample) -> T {
        let losses = self.forward_token_losses(tape, sample);
        let total = tape.sum_scalars(&self.store, &losses);
        tape.scale(&self.store, total, 1.0 / losses.len() as f32)
    }

    /// Per-token mean loss of one sample (no gradient).
    pub fn loss(&self, sample: &Sample) -> f32 {
        let mut tape = self.fresh_tape();
        let loss = self.forward_loss(&mut tape, sample);
        tape.value(&self.store, loss).data[0]
    }

    /// Per-token mean loss with the final reduction done in f64. The
    /// finite-difference gradient checker reads losses through this: the
    /// f32 sum-and-scale quantization of [`Seq2Seq::loss`] (~1 ulp of the
    /// loss value) is the same order as the FD signal `2ε·∂L/∂θ` for
    /// small-gradient blocks, so the check needs a readout quantized below
    /// that.
    pub fn loss_f64(&self, sample: &Sample) -> f64 {
        let mut tape = self.fresh_tape();
        let losses = self.forward_token_losses(&mut tape, sample);
        let n = losses.len();
        let sum: f64 = losses
            .into_iter()
            .map(|t| f64::from(tape.value(&self.store, t).data[0]))
            .sum();
        sum / n as f64
    }

    /// Forward + backward for one sample: its parameter gradients and
    /// per-token loss. Public for the gradient-check harness.
    pub fn sample_grads(&self, sample: &Sample) -> (GradSet, f32) {
        let mut tape = self.fresh_tape();
        let loss = self.forward_loss(&mut tape, sample);
        let v = tape.value(&self.store, loss).data[0];
        (tape.backward(&self.store, loss), v)
    }

    /// One epoch of mini-batch training over `samples` (already shuffled by
    /// the caller). Batch members fan out over the `nv-core::par` work
    /// queue (each worker reuses one pooled tape); per-sample gradients
    /// come back in input order and merge through a fixed pairwise tree, so
    /// the result is bit-identical for any thread count. Returns the mean
    /// per-token loss.
    pub fn train_epoch(&mut self, samples: &[Sample]) -> f32 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let batch = self.cfg.batch.max(1);
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.cfg.threads
        };
        let kernel = self.cfg.kernel;
        for chunk in samples.chunks(batch) {
            let _step = nv_trace::span("nn.step");
            self.store.zero_grads();
            let model = &*self;
            let results: Vec<(GradSet, f32)> = nv_core::par::map_ordered(
                chunk,
                threads,
                || Tape::with_policy(kernel),
                |tape, _i, sample| {
                    if nv_trace::enabled() {
                        nv_trace::count("nn.train.samples", 1);
                    }
                    let loss = model.forward_loss(tape, sample);
                    let v = tape.value(&model.store, loss).data[0];
                    (tape.backward(&model.store, loss), v)
                },
            );
            let mut grad_sets = Vec::with_capacity(results.len());
            for (gs, v) in results {
                grad_sets.push(gs);
                total += f64::from(v);
                count += 1;
            }
            if let Some(merged) = nv_core::par::tree_reduce(grad_sets, |mut a, b| {
                a.merge(b);
                a
            }) {
                self.store.accumulate(&merged);
            }
            // Mean over the batch.
            for g in &mut self.store.grads {
                g.scale(1.0 / chunk.len() as f32);
            }
            self.store.clip_global_norm(self.cfg.clip);
            self.store.adam_step(self.cfg.lr);
        }
        (total / count.max(1) as f64) as f32
    }

    /// Mean loss over a validation set.
    pub fn evaluate(&self, samples: &[Sample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut tape = self.fresh_tape();
        let sum: f32 = samples
            .iter()
            .map(|s| {
                let loss = self.forward_loss(&mut tape, s);
                tape.value(&self.store, loss).data[0]
            })
            .sum();
        sum / samples.len() as f32
    }

    /// Beam-search decoding: the `width` best completed sequences with
    /// their total log-probabilities, best first. `width == 1` degenerates
    /// to greedy. (An extension beyond the paper's greedy decoder, used to
    /// give seq2vis a top-k interface comparable to DeepEye's.)
    pub fn decode_beam(&self, src: &[usize], width: usize) -> Vec<(Vec<usize>, f32)> {
        let width = width.max(1);
        let store = &self.store;
        let mut tape = self.fresh_tape();
        let (enc_outputs, h0, c0) = self.encode(&mut tape, src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_rows = self.copy_rows(src);

        struct Hyp {
            tokens: Vec<usize>,
            logp: f32,
            h: T,
            c: T,
            done: bool,
        }
        let mut beam = vec![Hyp { tokens: vec![], logp: 0.0, h: h0, c: c0, done: false }];
        let mut finished: Vec<(Vec<usize>, f32)> = Vec::new();

        for _ in 0..self.cfg.max_decode_len {
            if beam.iter().all(|b| b.done) {
                break;
            }
            let mut next: Vec<Hyp> = Vec::new();
            for hyp in &beam {
                if hyp.done {
                    continue;
                }
                let prev = *hyp.tokens.last().unwrap_or(&self.cfg.bos);
                let (probs, h2, c2) = self.decode_step(
                    &mut tape,
                    enc_mat,
                    copy_rows.as_deref(),
                    prev,
                    hyp.h,
                    hyp.c,
                );
                let pv = tape.value(store, probs);
                // Top `width` continuations of this hypothesis.
                let mut scored: Vec<(usize, f32)> = pv
                    .data
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i, p.max(1e-12).ln()))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(tok, lp) in scored.iter().take(width) {
                    let mut tokens = hyp.tokens.clone();
                    let logp = hyp.logp + lp;
                    if tok == self.cfg.eos {
                        finished.push((tokens, logp));
                    } else {
                        tokens.push(tok);
                        next.push(Hyp { tokens, logp, h: h2, c: c2, done: false });
                    }
                }
            }
            next.sort_by(|a, b| b.logp.total_cmp(&a.logp));
            next.truncate(width);
            beam = next;
        }
        // Hypotheses that never emitted EOS still count, ranked below equal
        // finished scores by a small penalty.
        for hyp in beam {
            finished.push((hyp.tokens, hyp.logp - 1.0));
        }
        finished.sort_by(|a, b| b.1.total_cmp(&a.1));
        finished.truncate(width);
        finished
    }

    /// Greedy decoding.
    pub fn decode(&self, src: &[usize]) -> Vec<usize> {
        let store = &self.store;
        let mut tape = self.fresh_tape();
        let (enc_outputs, mut h, mut c) = self.encode(&mut tape, src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_rows = self.copy_rows(src);

        let mut out = Vec::new();
        let mut prev = self.cfg.bos;
        for _ in 0..self.cfg.max_decode_len {
            let (probs, h2, c2) =
                self.decode_step(&mut tape, enc_mat, copy_rows.as_deref(), prev, h, c);
            h = h2;
            c = c2;
            let pv = tape.value(store, probs);
            let (best, _) = pv
                .data
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty vocab");
            if best == self.cfg.eos {
                break;
            }
            out.push(best);
            prev = best;
        }
        out
    }
}

/// Training report from [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub best_val_loss: f32,
    pub train_losses: Vec<f32>,
    pub val_losses: Vec<f32>,
}

/// Train with shuffling and early stopping on validation loss
/// (paper: patience 5).
pub fn fit(
    model: &mut Seq2Seq,
    train: &[Sample],
    val: &[Sample],
    max_epochs: usize,
    patience: usize,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0xF17);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best = f32::INFINITY;
    let mut since_best = 0usize;
    let mut report = TrainReport {
        epochs_run: 0,
        best_val_loss: f32::INFINITY,
        train_losses: vec![],
        val_losses: vec![],
    };
    for _ in 0..max_epochs {
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let shuffled: Vec<Sample> = order.iter().map(|&i| train[i].clone()).collect();
        let tl = model.train_epoch(&shuffled);
        let vl = if val.is_empty() { tl } else { model.evaluate(val) };
        report.epochs_run += 1;
        report.train_losses.push(tl);
        report.val_losses.push(vl);
        if vl < best - 1e-4 {
            best = vl;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
    }
    report.best_val_loss = best;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy copy/transform task: target = source reversed, over a tiny
    /// vocab. All three variants must drive the loss down; attention/copy
    /// must learn it well.
    fn toy_samples(n: usize, vocab: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.random_range(2..6);
                let src: Vec<usize> = (0..len).map(|_| rng.random_range(4..vocab)).collect();
                let mut tgt = src.clone();
                tgt.reverse();
                Sample { src, tgt }
            })
            .collect()
    }

    fn tiny_cfg(variant: ModelVariant) -> Seq2SeqConfig {
        Seq2SeqConfig {
            vocab: 12,
            embed_dim: 16,
            hidden: 24,
            variant,
            seed: 7,
            lr: 5e-3,
            clip: 2.0,
            batch: 8,
            bos: 0,
            eos: 1,
            max_decode_len: 10,
            threads: 0,
            kernel: KernelPolicy::Fast,
        }
    }

    #[test]
    fn all_variants_reduce_loss() {
        let samples = toy_samples(60, 12, 1);
        for variant in ModelVariant::ALL {
            let mut model = Seq2Seq::new(tiny_cfg(variant));
            let first = model.evaluate(&samples);
            for _ in 0..12 {
                model.train_epoch(&samples);
            }
            let last = model.evaluate(&samples);
            assert!(
                last < first * 0.7,
                "{}: {first} → {last}",
                variant.name()
            );
        }
    }

    #[test]
    fn attention_learns_reversal() {
        let samples = toy_samples(150, 12, 2);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        let report = fit(&mut model, &samples, &samples[..30], 40, 8);
        assert!(report.epochs_run >= 5);
        // Exact-decode accuracy on training data should be high.
        let correct = samples[..30]
            .iter()
            .filter(|s| model.decode(&s.src) == s.tgt)
            .count();
        assert!(correct >= 15, "only {correct}/30 decoded exactly (val loss {})", report.best_val_loss);
    }

    #[test]
    fn copy_variant_can_emit_source_tokens() {
        // Task: echo the source. The copy mechanism makes this nearly free.
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<Sample> = (0..120)
            .map(|_| {
                let len = rng.random_range(2..5);
                let src: Vec<usize> = (0..len).map(|_| rng.random_range(4..12)).collect();
                Sample { tgt: src.clone(), src }
            })
            .collect();
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Copy));
        fit(&mut model, &samples, &samples[..20], 30, 6);
        let correct = samples[..20]
            .iter()
            .filter(|s| model.decode(&s.src) == s.tgt)
            .count();
        assert!(correct >= 12, "only {correct}/20 echoed");
    }

    #[test]
    fn decode_terminates_and_respects_max_len() {
        let model = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        let out = model.decode(&[4, 5, 6]);
        assert!(out.len() <= 10);
    }

    #[test]
    fn beam_search_contains_greedy_and_is_ordered() {
        let samples = toy_samples(120, 12, 9);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        fit(&mut model, &samples, &samples[..20], 25, 6);
        let src = &samples[0].src;
        let beams = model.decode_beam(src, 4);
        assert!(!beams.is_empty() && beams.len() <= 4);
        // Scores are descending.
        for w in beams.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Beam width 1 ≈ greedy (same sequence).
        let greedy = model.decode(src);
        let beam1 = model.decode_beam(src, 1);
        assert_eq!(beam1[0].0, greedy);
        // The greedy sequence appears in a wider beam.
        assert!(beams.iter().any(|(s, _)| *s == greedy));
    }

    #[test]
    fn early_stopping_stops() {
        let samples = toy_samples(20, 12, 4);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        // Hold the validation slice out of training so val loss genuinely
        // plateaus instead of tracking the training loss downward forever.
        let report = fit(&mut model, &samples[5..], &samples[..5], 100, 2);
        assert!(report.epochs_run < 100, "ran all epochs");
        assert_eq!(report.train_losses.len(), report.epochs_run);
    }

    #[test]
    fn out_of_range_tokens_are_clamped() {
        let model = Seq2Seq::new(tiny_cfg(ModelVariant::Copy));
        // Token 999 exceeds the vocab; must not panic.
        let loss = model.loss(&Sample { src: vec![999, 5], tgt: vec![999] });
        assert!(loss.is_finite());
        let _ = model.decode(&[999]);
    }

    #[test]
    fn parameter_count_is_positive_and_variant_dependent() {
        let basic = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        let attn = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        assert!(basic.n_parameters() > 1000);
        // Attention variant has the larger output projection (3h vs h).
        assert!(attn.n_parameters() > basic.n_parameters());
    }

    #[test]
    fn loss_is_identical_across_policies_and_threads() {
        let samples = toy_samples(16, 12, 11);
        for variant in ModelVariant::ALL {
            let mut base: Option<(Vec<u32>, u64)> = None;
            for (threads, kernel) in [
                (1, KernelPolicy::Fast),
                (3, KernelPolicy::Fast),
                (1, KernelPolicy::NaiveOracle),
            ] {
                let mut cfg = tiny_cfg(variant);
                cfg.threads = threads;
                cfg.kernel = kernel;
                let mut model = Seq2Seq::new(cfg);
                let losses: Vec<u32> = (0..2)
                    .map(|_| model.train_epoch(&samples).to_bits())
                    .collect();
                let sum = model.params_checksum();
                match &base {
                    None => base = Some((losses, sum)),
                    Some((bl, bs)) => {
                        assert_eq!(bl, &losses, "{variant:?} t={threads} {kernel:?}");
                        assert_eq!(*bs, sum, "{variant:?} t={threads} {kernel:?}");
                    }
                }
            }
        }
    }
}
