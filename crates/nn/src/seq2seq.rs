//! Encoder–decoder sequence model (paper §4.1, Figure 15): bi-directional
//! LSTM encoder, LSTM decoder, three variants — basic, +Luong attention,
//! +copy (pointer-generator) — trained with Adam, teacher forcing, gradient
//! clipping at 2.0 and early stopping, exactly the paper's training recipe
//! (scaled-down dimensions; the paper uses embed 100 / hidden 150).
//!
//! The copy variant requires source and target token ids to share one
//! vocabulary space (so a source token can be emitted directly) — which is
//! how `nv-seq2vis` builds its vocab.

use crate::autograd::{ParamId, ParamStore, Tape, T};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model variants evaluated in the paper (Figure 17, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    Basic,
    Attention,
    Copy,
}

impl ModelVariant {
    pub const ALL: [ModelVariant; 3] =
        [ModelVariant::Basic, ModelVariant::Attention, ModelVariant::Copy];

    pub fn name(self) -> &'static str {
        match self {
            ModelVariant::Basic => "seq2vis",
            ModelVariant::Attention => "seq2vis+attention",
            ModelVariant::Copy => "seq2vis+copying",
        }
    }
}

/// Hyperparameters.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    pub vocab: usize,
    pub embed_dim: usize,
    pub hidden: usize,
    pub variant: ModelVariant,
    pub seed: u64,
    pub lr: f32,
    /// Global-norm gradient clip (paper: 2.0).
    pub clip: f32,
    /// Mini-batch size (paper: 16).
    pub batch: usize,
    /// BOS/EOS ids in the shared vocab.
    pub bos: usize,
    pub eos: usize,
    pub max_decode_len: usize,
}

impl Seq2SeqConfig {
    pub fn small(vocab: usize, bos: usize, eos: usize, variant: ModelVariant) -> Seq2SeqConfig {
        Seq2SeqConfig {
            vocab,
            embed_dim: 48,
            hidden: 64,
            variant,
            seed: 42,
            lr: 2e-3,
            clip: 2.0,
            batch: 16,
            bos,
            eos,
            max_decode_len: 60,
        }
    }
}

/// One training sample: source and target token-id sequences (no BOS/EOS —
/// the model adds them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    pub src: Vec<usize>,
    pub tgt: Vec<usize>,
}

struct LstmParams {
    w_ih: ParamId,
    w_hh: ParamId,
    b: ParamId,
    hidden: usize,
}

impl LstmParams {
    fn new(store: &mut ParamStore, input: usize, hidden: usize, rng: &mut StdRng) -> LstmParams {
        let mut b = Matrix::zeros(4 * hidden, 1);
        // Forget-gate bias at 1.0 — standard LSTM initialization.
        for i in hidden..2 * hidden {
            b.data[i] = 1.0;
        }
        LstmParams {
            w_ih: store.add(Matrix::xavier(4 * hidden, input, rng)),
            w_hh: store.add(Matrix::xavier(4 * hidden, hidden, rng)),
            b: store.add(b),
            hidden,
        }
    }

    /// One LSTM step on the tape.
    fn step(&self, tape: &mut Tape, store: &ParamStore, x: T, h: T, c: T) -> (T, T) {
        let w_ih = tape.param(self.w_ih);
        let w_hh = tape.param(self.w_hh);
        let b = tape.param(self.b);
        let zx = tape.matmul(store, w_ih, x);
        let zh = tape.matmul(store, w_hh, h);
        let z0 = tape.add(store, zx, zh);
        let z = tape.add(store, z0, b);
        let hdim = self.hidden;
        let i = tape.slice_rows(store, z, 0, hdim);
        let f = tape.slice_rows(store, z, hdim, hdim);
        let g = tape.slice_rows(store, z, 2 * hdim, hdim);
        let o = tape.slice_rows(store, z, 3 * hdim, hdim);
        let i = tape.sigmoid(store, i);
        let f = tape.sigmoid(store, f);
        let g = tape.tanh(store, g);
        let o = tape.sigmoid(store, o);
        let fc = tape.mul(store, f, c);
        let ig = tape.mul(store, i, g);
        let c2 = tape.add(store, fc, ig);
        let tc = tape.tanh(store, c2);
        let h2 = tape.mul(store, o, tc);
        (h2, c2)
    }
}

/// The seq2seq model.
pub struct Seq2Seq {
    pub cfg: Seq2SeqConfig,
    store: ParamStore,
    embedding: ParamId,
    enc_fwd: LstmParams,
    enc_bwd: LstmParams,
    dec: LstmParams,
    /// Bridges the concatenated encoder final states (2h) into decoder h/c.
    w_bridge_h: ParamId,
    w_bridge_c: ParamId,
    /// Luong "general" score: maps decoder h into encoder space (2h × h).
    w_attn: ParamId,
    /// Output projection (vocab × feat), feat = h (basic) or 3h (attn/copy).
    w_out: ParamId,
    b_out: ParamId,
    /// Copy gate (1 × (3h + e)).
    w_gen: ParamId,
}

impl Seq2Seq {
    pub fn new(cfg: Seq2SeqConfig) -> Seq2Seq {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let e = cfg.embed_dim;
        let h = cfg.hidden;
        let embedding = store.add(Matrix::xavier(cfg.vocab, e, &mut rng));
        let enc_fwd = LstmParams::new(&mut store, e, h, &mut rng);
        let enc_bwd = LstmParams::new(&mut store, e, h, &mut rng);
        let dec = LstmParams::new(&mut store, e, h, &mut rng);
        let w_bridge_h = store.add(Matrix::xavier(h, 2 * h, &mut rng));
        let w_bridge_c = store.add(Matrix::xavier(h, 2 * h, &mut rng));
        let w_attn = store.add(Matrix::xavier(2 * h, h, &mut rng));
        let feat = if cfg.variant == ModelVariant::Basic { h } else { 3 * h };
        let w_out = store.add(Matrix::xavier(cfg.vocab, feat, &mut rng));
        let b_out = store.add(Matrix::zeros(cfg.vocab, 1));
        let w_gen = store.add(Matrix::xavier(1, 3 * h + e, &mut rng));
        Seq2Seq {
            cfg,
            store,
            embedding,
            enc_fwd,
            enc_bwd,
            dec,
            w_bridge_h,
            w_bridge_c,
            w_attn,
            w_out,
            b_out,
            w_gen,
        }
    }

    pub fn n_parameters(&self) -> usize {
        self.store.n_scalars()
    }

    /// Encode the source: per-step bi-LSTM outputs (2h) and bridged initial
    /// decoder state.
    fn encode(&self, tape: &mut Tape, src: &[usize]) -> (Vec<T>, T, T) {
        let store = &self.store;
        let h0 = tape.constant(Matrix::zeros(self.cfg.hidden, 1));
        let c0 = tape.constant(Matrix::zeros(self.cfg.hidden, 1));

        let embeds: Vec<T> = src
            .iter()
            .map(|&tok| tape.embed(store, self.embedding, tok.min(self.cfg.vocab - 1)))
            .collect();

        let mut fwd = Vec::with_capacity(src.len());
        let (mut h, mut c) = (h0, c0);
        for &x in &embeds {
            let (h2, c2) = self.enc_fwd.step(tape, store, x, h, c);
            fwd.push(h2);
            h = h2;
            c = c2;
        }
        let (fwd_h, fwd_c) = (h, c);

        let mut bwd = vec![h0; src.len()];
        let (mut h, mut c) = (h0, c0);
        for (i, &x) in embeds.iter().enumerate().rev() {
            let (h2, c2) = self.enc_bwd.step(tape, store, x, h, c);
            bwd[i] = h2;
            h = h2;
            c = c2;
        }
        let (bwd_h, bwd_c) = (h, c);

        let outputs: Vec<T> = fwd
            .iter()
            .zip(&bwd)
            .map(|(&f, &b)| tape.concat_rows(store, &[f, b]))
            .collect();

        let hcat = tape.concat_rows(store, &[fwd_h, bwd_h]);
        let ccat = tape.concat_rows(store, &[fwd_c, bwd_c]);
        let wbh = tape.param(self.w_bridge_h);
        let wbc = tape.param(self.w_bridge_c);
        let dh0 = tape.matmul(store, wbh, hcat);
        let dh = tape.tanh(store, dh0);
        let dc0 = tape.matmul(store, wbc, ccat);
        let dc = tape.tanh(store, dc0);
        (outputs, dh, dc)
    }

    /// One decoder step: returns the probability distribution node and the
    /// new (h, c).
    #[allow(clippy::too_many_arguments)]
    fn decode_step(
        &self,
        tape: &mut Tape,
        enc_mat: T,
        copy_mat: Option<&T>,
        prev_tok: usize,
        h: T,
        c: T,
    ) -> (T, T, T) {
        let store = &self.store;
        let x = tape.embed(store, self.embedding, prev_tok.min(self.cfg.vocab - 1));
        let (h2, c2) = self.dec.step(tape, store, x, h, c);

        let w_out = tape.param(self.w_out);
        let b_out = tape.param(self.b_out);

        let probs = match self.cfg.variant {
            ModelVariant::Basic => {
                let z0 = tape.matmul(store, w_out, h2);
                let z = tape.add(store, z0, b_out);
                tape.softmax(store, z)
            }
            ModelVariant::Attention | ModelVariant::Copy => {
                // Luong general attention.
                let wa = tape.param(self.w_attn);
                let query = tape.matmul(store, wa, h2); // 2h×1
                let scores = tape.matmul_tn(store, enc_mat, query); // T×1
                let attn = tape.softmax(store, scores);
                let ctx = tape.matmul(store, enc_mat, attn); // 2h×1
                let feat = tape.concat_rows(store, &[h2, ctx]); // 3h×1
                let z0 = tape.matmul(store, w_out, feat);
                let z = tape.add(store, z0, b_out);
                let vocab_dist = tape.softmax(store, z);
                if self.cfg.variant == ModelVariant::Attention {
                    vocab_dist
                } else {
                    // Pointer-generator: blend vocab and copy distributions.
                    let gen_in = tape.concat_rows(store, &[feat, x]);
                    let wg = tape.param(self.w_gen);
                    let gl = tape.matmul(store, wg, gen_in);
                    let gate = tape.sigmoid(store, gl);
                    let copy_dist =
                        tape.matmul(store, *copy_mat.expect("copy matrix"), attn);
                    tape.blend(store, gate, vocab_dist, copy_dist)
                }
            }
        };
        (probs, h2, c2)
    }

    /// Scatter matrix mapping attention weights (per source position) onto
    /// the shared vocab: `M[src[i], i] = 1`.
    fn copy_matrix(&self, tape: &mut Tape, src: &[usize]) -> T {
        let mut m = Matrix::zeros(self.cfg.vocab, src.len());
        for (i, &tok) in src.iter().enumerate() {
            *m.at_mut(tok.min(self.cfg.vocab - 1), i) = 1.0;
        }
        tape.constant(m)
    }

    /// Teacher-forced loss for one sample. Returns (tape, loss node).
    fn forward_loss(&self, sample: &Sample) -> (Tape, T) {
        let store = &self.store;
        let mut tape = Tape::new();
        let (enc_outputs, mut h, mut c) = self.encode(&mut tape, &sample.src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_mat = (self.cfg.variant == ModelVariant::Copy)
            .then(|| self.copy_matrix(&mut tape, &sample.src));

        let mut inputs = vec![self.cfg.bos];
        inputs.extend_from_slice(&sample.tgt);
        let mut targets = sample.tgt.clone();
        targets.push(self.cfg.eos);

        let mut losses = Vec::with_capacity(targets.len());
        for (prev, &tgt) in inputs.iter().zip(&targets) {
            let (probs, h2, c2) =
                self.decode_step(&mut tape, enc_mat, copy_mat.as_ref(), *prev, h, c);
            h = h2;
            c = c2;
            let l = tape.nll(store, probs, tgt.min(self.cfg.vocab - 1));
            losses.push(l);
        }
        let total = tape.sum_scalars(store, &losses);
        let mean = tape.scale(store, total, 1.0 / losses.len() as f32);
        (tape, mean)
    }

    /// Per-token mean loss of one sample (no gradient).
    pub fn loss(&self, sample: &Sample) -> f32 {
        let (tape, loss) = self.forward_loss(sample);
        tape.value(&self.store, loss).data[0]
    }

    /// One epoch of mini-batch training over `samples` (already shuffled by
    /// the caller). On multi-core hosts batch members run on worker threads
    /// and their gradients merge before the Adam step; on a single core the
    /// batch runs inline (thread overhead would only hurt). Returns the mean
    /// per-token loss.
    pub fn train_epoch(&mut self, samples: &[Sample]) -> f32 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let batch = self.cfg.batch.max(1);
        let parallel = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        for chunk in samples.chunks(batch) {
            self.store.zero_grads();
            let results: Vec<(std::collections::HashMap<usize, Matrix>, f32)> = if parallel {
                std::thread::scope(|s| {
                    let model = &*self;
                    let handles: Vec<_> = chunk
                        .iter()
                        .map(|sample| {
                            s.spawn(move || {
                                let (tape, loss) = model.forward_loss(sample);
                                let v = tape.value(&model.store, loss).data[0];
                                (tape.backward(&model.store, loss), v)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("worker")).collect()
                })
            } else {
                chunk
                    .iter()
                    .map(|sample| {
                        let (tape, loss) = self.forward_loss(sample);
                        let v = tape.value(&self.store, loss).data[0];
                        (tape.backward(&self.store, loss), v)
                    })
                    .collect()
            };
            for (grads, v) in results {
                self.store.accumulate(grads);
                total += f64::from(v);
                count += 1;
            }
            // Mean over the batch.
            for g in &mut self.store.grads {
                g.scale(1.0 / chunk.len() as f32);
            }
            self.store.clip_global_norm(self.cfg.clip);
            self.store.adam_step(self.cfg.lr);
        }
        (total / count.max(1) as f64) as f32
    }

    /// Mean loss over a validation set.
    pub fn evaluate(&self, samples: &[Sample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let sum: f32 = samples.iter().map(|s| self.loss(s)).sum();
        sum / samples.len() as f32
    }

    /// Beam-search decoding: the `width` best completed sequences with
    /// their total log-probabilities, best first. `width == 1` degenerates
    /// to greedy. (An extension beyond the paper's greedy decoder, used to
    /// give seq2vis a top-k interface comparable to DeepEye's.)
    pub fn decode_beam(&self, src: &[usize], width: usize) -> Vec<(Vec<usize>, f32)> {
        let width = width.max(1);
        let store = &self.store;
        let mut tape = Tape::new();
        let (enc_outputs, h0, c0) = self.encode(&mut tape, src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_mat = (self.cfg.variant == ModelVariant::Copy)
            .then(|| self.copy_matrix(&mut tape, src));

        struct Hyp {
            tokens: Vec<usize>,
            logp: f32,
            h: T,
            c: T,
            done: bool,
        }
        let mut beam = vec![Hyp { tokens: vec![], logp: 0.0, h: h0, c: c0, done: false }];
        let mut finished: Vec<(Vec<usize>, f32)> = Vec::new();

        for _ in 0..self.cfg.max_decode_len {
            if beam.iter().all(|b| b.done) {
                break;
            }
            let mut next: Vec<Hyp> = Vec::new();
            for hyp in &beam {
                if hyp.done {
                    continue;
                }
                let prev = *hyp.tokens.last().unwrap_or(&self.cfg.bos);
                let (probs, h2, c2) =
                    self.decode_step(&mut tape, enc_mat, copy_mat.as_ref(), prev, hyp.h, hyp.c);
                let pv = tape.value(store, probs);
                // Top `width` continuations of this hypothesis.
                let mut scored: Vec<(usize, f32)> = pv
                    .data
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i, p.max(1e-12).ln()))
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                for &(tok, lp) in scored.iter().take(width) {
                    let mut tokens = hyp.tokens.clone();
                    let logp = hyp.logp + lp;
                    if tok == self.cfg.eos {
                        finished.push((tokens, logp));
                    } else {
                        tokens.push(tok);
                        next.push(Hyp { tokens, logp, h: h2, c: c2, done: false });
                    }
                }
            }
            next.sort_by(|a, b| b.logp.total_cmp(&a.logp));
            next.truncate(width);
            beam = next;
        }
        // Hypotheses that never emitted EOS still count, ranked below equal
        // finished scores by a small penalty.
        for hyp in beam {
            finished.push((hyp.tokens, hyp.logp - 1.0));
        }
        finished.sort_by(|a, b| b.1.total_cmp(&a.1));
        finished.truncate(width);
        finished
    }

    /// Greedy decoding.
    pub fn decode(&self, src: &[usize]) -> Vec<usize> {
        let store = &self.store;
        let mut tape = Tape::new();
        let (enc_outputs, mut h, mut c) = self.encode(&mut tape, src);
        let enc_mat = tape.concat_cols(store, &enc_outputs);
        let copy_mat = (self.cfg.variant == ModelVariant::Copy)
            .then(|| self.copy_matrix(&mut tape, src));

        let mut out = Vec::new();
        let mut prev = self.cfg.bos;
        for _ in 0..self.cfg.max_decode_len {
            let (probs, h2, c2) =
                self.decode_step(&mut tape, enc_mat, copy_mat.as_ref(), prev, h, c);
            h = h2;
            c = c2;
            let pv = tape.value(store, probs);
            let (best, _) = pv
                .data
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty vocab");
            if best == self.cfg.eos {
                break;
            }
            out.push(best);
            prev = best;
        }
        out
    }
}

/// Training report from [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub best_val_loss: f32,
    pub train_losses: Vec<f32>,
    pub val_losses: Vec<f32>,
}

/// Train with shuffling and early stopping on validation loss
/// (paper: patience 5).
pub fn fit(
    model: &mut Seq2Seq,
    train: &[Sample],
    val: &[Sample],
    max_epochs: usize,
    patience: usize,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(model.cfg.seed ^ 0xF17);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best = f32::INFINITY;
    let mut since_best = 0usize;
    let mut report = TrainReport {
        epochs_run: 0,
        best_val_loss: f32::INFINITY,
        train_losses: vec![],
        val_losses: vec![],
    };
    for _ in 0..max_epochs {
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let shuffled: Vec<Sample> = order.iter().map(|&i| train[i].clone()).collect();
        let tl = model.train_epoch(&shuffled);
        let vl = if val.is_empty() { tl } else { model.evaluate(val) };
        report.epochs_run += 1;
        report.train_losses.push(tl);
        report.val_losses.push(vl);
        if vl < best - 1e-4 {
            best = vl;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
    }
    report.best_val_loss = best;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy copy/transform task: target = source reversed, over a tiny
    /// vocab. All three variants must drive the loss down; attention/copy
    /// must learn it well.
    fn toy_samples(n: usize, vocab: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.random_range(2..6);
                let src: Vec<usize> = (0..len).map(|_| rng.random_range(4..vocab)).collect();
                let mut tgt = src.clone();
                tgt.reverse();
                Sample { src, tgt }
            })
            .collect()
    }

    fn tiny_cfg(variant: ModelVariant) -> Seq2SeqConfig {
        Seq2SeqConfig {
            vocab: 12,
            embed_dim: 16,
            hidden: 24,
            variant,
            seed: 7,
            lr: 5e-3,
            clip: 2.0,
            batch: 8,
            bos: 0,
            eos: 1,
            max_decode_len: 10,
        }
    }

    #[test]
    fn all_variants_reduce_loss() {
        let samples = toy_samples(60, 12, 1);
        for variant in ModelVariant::ALL {
            let mut model = Seq2Seq::new(tiny_cfg(variant));
            let first = model.evaluate(&samples);
            for _ in 0..12 {
                model.train_epoch(&samples);
            }
            let last = model.evaluate(&samples);
            assert!(
                last < first * 0.7,
                "{}: {first} → {last}",
                variant.name()
            );
        }
    }

    #[test]
    fn attention_learns_reversal() {
        let samples = toy_samples(150, 12, 2);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        let report = fit(&mut model, &samples, &samples[..30], 40, 8);
        assert!(report.epochs_run >= 5);
        // Exact-decode accuracy on training data should be high.
        let correct = samples[..30]
            .iter()
            .filter(|s| model.decode(&s.src) == s.tgt)
            .count();
        assert!(correct >= 15, "only {correct}/30 decoded exactly (val loss {})", report.best_val_loss);
    }

    #[test]
    fn copy_variant_can_emit_source_tokens() {
        // Task: echo the source. The copy mechanism makes this nearly free.
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<Sample> = (0..120)
            .map(|_| {
                let len = rng.random_range(2..5);
                let src: Vec<usize> = (0..len).map(|_| rng.random_range(4..12)).collect();
                Sample { tgt: src.clone(), src }
            })
            .collect();
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Copy));
        fit(&mut model, &samples, &samples[..20], 30, 6);
        let correct = samples[..20]
            .iter()
            .filter(|s| model.decode(&s.src) == s.tgt)
            .count();
        assert!(correct >= 12, "only {correct}/20 echoed");
    }

    #[test]
    fn decode_terminates_and_respects_max_len() {
        let model = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        let out = model.decode(&[4, 5, 6]);
        assert!(out.len() <= 10);
    }

    #[test]
    fn beam_search_contains_greedy_and_is_ordered() {
        let samples = toy_samples(120, 12, 9);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        fit(&mut model, &samples, &samples[..20], 25, 6);
        let src = &samples[0].src;
        let beams = model.decode_beam(src, 4);
        assert!(!beams.is_empty() && beams.len() <= 4);
        // Scores are descending.
        for w in beams.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Beam width 1 ≈ greedy (same sequence).
        let greedy = model.decode(src);
        let beam1 = model.decode_beam(src, 1);
        assert_eq!(beam1[0].0, greedy);
        // The greedy sequence appears in a wider beam.
        assert!(beams.iter().any(|(s, _)| *s == greedy));
    }

    #[test]
    fn early_stopping_stops() {
        let samples = toy_samples(20, 12, 4);
        let mut model = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        // Hold the validation slice out of training so val loss genuinely
        // plateaus instead of tracking the training loss downward forever.
        let report = fit(&mut model, &samples[5..], &samples[..5], 100, 2);
        assert!(report.epochs_run < 100, "ran all epochs");
        assert_eq!(report.train_losses.len(), report.epochs_run);
    }

    #[test]
    fn out_of_range_tokens_are_clamped() {
        let model = Seq2Seq::new(tiny_cfg(ModelVariant::Copy));
        // Token 999 exceeds the vocab; must not panic.
        let loss = model.loss(&Sample { src: vec![999, 5], tgt: vec![999] });
        assert!(loss.is_finite());
        let _ = model.decode(&[999]);
    }

    #[test]
    fn parameter_count_is_positive_and_variant_dependent() {
        let basic = Seq2Seq::new(tiny_cfg(ModelVariant::Basic));
        let attn = Seq2Seq::new(tiny_cfg(ModelVariant::Attention));
        assert!(basic.n_parameters() > 1000);
        // Attention variant has the larger output projection (3h vs h).
        assert!(attn.n_parameters() > basic.n_parameters());
    }
}
