//! A minimal dense f32 matrix — the storage type of the neural substrate.
//! Row-major; sized for seq2seq-scale models (hundreds of rows/cols), so
//! naive loops are plenty fast in release mode.

use rand::rngs::StdRng;
use rand::Rng;

/// Unrolled dot product (the compiler auto-vectorizes the chunks).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Column vector.
    pub fn col(data: Vec<f32>) -> Matrix {
        let rows = data.len();
        Matrix { rows, cols: 1, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    pub fn same_shape(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self × other`. The matrix-×-column-vector case (the seq2seq hot
    /// path) takes a contiguous dot-product fast path.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul {}x{} × {}x{}", self.rows, self.cols, other.rows, other.cols);
        if other.cols == 1 {
            let mut out = Matrix::zeros(self.rows, 1);
            for i in 0..self.rows {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                out.data[i] = dot(row, &other.data);
            }
            return out;
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other`, with a fast path for the column-vector RHS
    /// (`Wᵀ g` in backprop).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape");
        let mut out = Matrix::zeros(self.cols, other.cols);
        if other.cols == 1 {
            for k in 0..self.rows {
                let g = other.data[k];
                if g == 0.0 {
                    continue;
                }
                let row = &self.data[k * self.cols..(k + 1) * self.cols];
                for (o, &a) in out.data.iter_mut().zip(row) {
                    *o += a * g;
                }
            }
            return out;
        }
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.at(k, i);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    *out.at_mut(i, j) += a * other.at(k, j);
                }
            }
        }
        out
    }

    /// `self × otherᵀ`, with a fast path for the rank-1 case (`g xᵀ` —
    /// the weight-gradient outer product in backprop).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape");
        if self.cols == 1 {
            let mut out = Matrix::zeros(self.rows, other.rows);
            for i in 0..self.rows {
                let a = self.data[i];
                let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
                for (o, &b) in out_row.iter_mut().zip(&other.data) {
                    *o = a * b;
                }
            }
            return out;
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut s = 0.0;
                for k in 0..self.cols {
                    s += self.at(i, k) * other.at(j, k);
                }
                *out.at_mut(i, j) = s;
            }
        }
        out
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert!(self.same_shape(other));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 2, &mut rng);
        let tn = a.matmul_tn(&b);
        // Manual transpose.
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                *at.at_mut(j, i) = a.at(i, j);
            }
        }
        let expect = at.matmul(&b);
        for (x, y) in tn.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_nt_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(3, 5, &mut rng);
        let b = Matrix::xavier(2, 5, &mut rng);
        let nt = a.matmul_nt(&b);
        assert_eq!((nt.rows, nt.cols), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..5 {
                    s += a.at(i, k) * b.at(j, k);
                }
                assert!((nt.at(i, j) - s).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data.iter().all(|x| x.abs() <= bound));
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn basic_ops() {
        let mut a = Matrix::col(vec![1.0, 2.0]);
        let b = Matrix::col(vec![3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.data, vec![4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data, vec![2.0, 3.0]);
        a.fill(0.0);
        assert_eq!(a.norm(), 0.0);
    }
}
