//! A dense f32 matrix — the storage type of the neural substrate — with
//! cache-blocked matmul kernels sized for seq2seq-scale models.
//!
//! ## The fixed reduction order
//!
//! Every kernel reduces along the shared dimension with [`dot`]: a 4-lane
//! split accumulation (`acc[0..4]` over chunks of 4, lanes summed
//! `0+1+2+3`, then a sequential tail). This is the crate's **canonical
//! reduction order**. The blocked kernels change *memory access* — packed
//! transposed panels, register tiles — but never the per-element summation
//! order, so they are **bit-identical** to the straightforward reference
//! kernels in [`reference`], which reduce with the same `dot` over
//! explicitly gathered rows. `tests/train_determinism.rs` holds whole
//! training runs to this equality, and the unit tests below hold every
//! kernel to it shape-by-shape.
//!
//! ## Kernel shapes that matter
//!
//! Training is matvec-dominated (column-vector activations), so `matmul`
//! keeps its contiguous dot fast path; the general kernels pack the
//! transposed operand once per call (thread-local scratch, no per-call
//! allocation) and walk register tiles over contiguous panel rows — the
//! layout the compiler can autovectorize. `*_into` variants write into a
//! caller-provided matrix so the autograd tape can recycle buffers instead
//! of allocating per op.

use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;

/// Unrolled dot product — the canonical fixed-order reduction (4 lanes over
/// chunks of 4, lanes summed in index order, sequential tail). The compiler
/// auto-vectorizes the chunked part.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// [`dot`] against a strided left operand: element `j` of the virtual
/// vector is `a[offset + j·stride]`. The lane assignment and summation
/// order replicate [`dot`] exactly, so a kernel may use this on a
/// transposed column *in place* and stay bit-identical to one that gathers
/// the column first — this is what lets `matmul_tn`'s matvec path skip the
/// O(m·k) pack (which costs as much as the matvec itself).
#[inline]
fn dot_strided(a: &[f32], offset: usize, stride: usize, len: usize, b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = len / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[offset + i * stride] * b[i];
        acc[1] += a[offset + (i + 1) * stride] * b[i + 1];
        acc[2] += a[offset + (i + 2) * stride] * b[i + 2];
        acc[3] += a[offset + (i + 3) * stride] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..len {
        s += a[offset + i * stride] * b[i];
    }
    s
}

thread_local! {
    /// Per-thread packing scratch for the blocked kernels (transposed
    /// panels live here between the pack and the tile sweep).
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Count one GEMM's multiply-adds (2 flops each) when tracing is armed.
#[inline]
fn trace_flops(m: usize, k: usize, n: usize) {
    if nv_trace::enabled() {
        nv_trace::count("nn.gemm.flops", 2 * (m * k * n) as u64);
    }
}

/// Register-tile edge: output tiles are `TILE × TILE` dot products over the
/// packed panels. 8×8 keeps both row pointers' panels resident in L1 for
/// the dimensions this model uses (k ≤ a few hundred).
const TILE: usize = 8;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Column vector.
    pub fn col(data: Vec<f32>) -> Matrix {
        let rows = data.len();
        Matrix { rows, cols: 1, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    pub fn same_shape(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self × other`. Allocating wrapper over [`Self::matmul_into`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × other` into a pre-shaped output (fully overwritten). The
    /// matrix-×-column-vector case (the seq2seq hot path) takes a
    /// contiguous dot fast path; the general case packs `otherᵀ` and
    /// sweeps register tiles over contiguous panel rows.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        debug_assert!(out.rows == self.rows && out.cols == other.cols);
        trace_flops(self.rows, self.cols, other.cols);
        let k = self.cols;
        if other.cols == 1 {
            for i in 0..self.rows {
                out.data[i] = dot(&self.data[i * k..(i + 1) * k], &other.data);
            }
            return;
        }
        let n = other.cols;
        PACK.with(|p| {
            let mut p = p.borrow_mut();
            pack_transposed(other, &mut p);
            tiled_dot_sweep(self.rows, n, k, &self.data, &p, &mut out.data);
        });
    }

    /// `selfᵀ × other`. Allocating wrapper over [`Self::matmul_tn_into`].
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `selfᵀ × other` into a pre-shaped output (fully overwritten) — the
    /// `Wᵀ g` backprop kernel. The matvec case reads `selfᵀ`'s rows in
    /// place with [`dot_strided`] (packing would cost as much as the
    /// matvec); the general case packs both transposes so every inner loop
    /// is a contiguous [`dot`].
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape");
        debug_assert!(out.rows == self.cols && out.cols == other.cols);
        trace_flops(self.cols, self.rows, other.cols);
        let k = self.rows; // shared dimension
        let m = self.cols;
        let n = other.cols;
        if n == 1 {
            for i in 0..m {
                out.data[i] = dot_strided(&self.data, i, m, k, &other.data);
            }
            return;
        }
        PACK.with(|p| {
            let mut p = p.borrow_mut();
            pack_transposed(self, &mut p);
            // Pack otherᵀ behind selfᵀ in the same scratch.
            let split = m * k;
            pack_transposed_at(other, &mut p, split);
            let (at, bt) = p.split_at(split);
            tiled_dot_sweep(m, n, k, at, bt, &mut out.data);
        });
    }

    /// `self × otherᵀ`. Allocating wrapper over [`Self::matmul_nt_into`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self × otherᵀ` into a pre-shaped output (fully overwritten). Both
    /// operands are already row-major panels, so no packing is needed; the
    /// rank-1 case (`g xᵀ` — the weight-gradient outer product) writes the
    /// product directly.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape");
        debug_assert!(out.rows == self.rows && out.cols == other.rows);
        trace_flops(self.rows, self.cols, other.rows);
        let k = self.cols;
        if k == 1 {
            for i in 0..self.rows {
                let a = self.data[i];
                let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
                for (o, &b) in out_row.iter_mut().zip(&other.data) {
                    *o = a * b;
                }
            }
            return;
        }
        tiled_dot_sweep(self.rows, other.rows, k, &self.data, &other.data, &mut out.data);
    }

    /// `out[i] += Σ_k self[i][k] · x[k]` — accumulating matvec for the
    /// fused affine ops. Each row's product is a full fixed-order [`dot`]
    /// added to the existing value, mirroring what a `Matmul` node followed
    /// by an `Add` node computes element-by-element.
    pub fn matvec_acc(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, x.rows, "matvec_acc shape");
        assert_eq!(x.cols, 1);
        debug_assert!(out.rows == self.rows && out.cols == 1);
        trace_flops(self.rows, self.cols, 1);
        let k = self.cols;
        for i in 0..self.rows {
            out.data[i] += dot(&self.data[i * k..(i + 1) * k], &x.data);
        }
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert!(self.same_shape(other));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Pack `m`'s transpose into `scratch[0..cols*rows]`.
fn pack_transposed(m: &Matrix, scratch: &mut Vec<f32>) {
    scratch.clear();
    scratch.resize(m.rows * m.cols, 0.0);
    pack_transposed_at_slice(m, scratch, 0);
}

/// Pack `m`'s transpose into `scratch[at..at + cols*rows]`, growing the
/// scratch as needed.
fn pack_transposed_at(m: &Matrix, scratch: &mut Vec<f32>, at: usize) {
    if scratch.len() < at + m.rows * m.cols {
        scratch.resize(at + m.rows * m.cols, 0.0);
    }
    pack_transposed_at_slice(m, scratch, at);
}

fn pack_transposed_at_slice(m: &Matrix, scratch: &mut [f32], at: usize) {
    let (r, c) = (m.rows, m.cols);
    for i in 0..r {
        let row = &m.data[i * c..(i + 1) * c];
        for (j, &v) in row.iter().enumerate() {
            scratch[at + j * r + i] = v;
        }
    }
}

/// The shared tile sweep: `out[i][j] = dot(a_rows[i], b_rows[j])` over
/// `TILE × TILE` output tiles, where both operands are row-major panels of
/// length `k`. Tiling bounds the working set (2·TILE panels) so the panels
/// stay cache-resident across the tile; each element is one full-`k`
/// fixed-order [`dot`], so blocking never changes the summation order.
fn tiled_dot_sweep(m: usize, n: usize, k: usize, a_rows: &[f32], b_rows: &[f32], out: &mut [f32]) {
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let arow = &a_rows[i * k..(i + 1) * k];
                for j in j0..j1 {
                    out[i * n + j] = dot(arow, &b_rows[j * k..(j + 1) * k]);
                }
            }
        }
    }
}

/// Naive reference kernels — the differential oracle for the blocked
/// kernels above, mirroring the PR-1/PR-3 oracle pattern (a slow, obviously
/// correct twin kept callable forever). They gather operand rows/columns
/// with plain loops and reduce with the same canonical [`dot`], so their
/// outputs are **bit-identical** to the blocked kernels'; `KernelPolicy::
/// NaiveOracle` routes a whole training run through them.
pub mod reference {
    use super::{dot, Matrix};

    /// `a × b` by explicit column gather + fixed-order dot.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows, "matmul shape");
        let mut out = Matrix::zeros(a.rows, b.cols);
        let mut col = vec![0.0f32; b.rows];
        for j in 0..b.cols {
            for k in 0..b.rows {
                col[k] = b.at(k, j);
            }
            for i in 0..a.rows {
                *out.at_mut(i, j) = dot(&a.data[i * a.cols..(i + 1) * a.cols], &col);
            }
        }
        out
    }

    /// `aᵀ × b` by explicit row gather + fixed-order dot.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "matmul_tn shape");
        let mut out = Matrix::zeros(a.cols, b.cols);
        let mut arow = vec![0.0f32; a.rows];
        let mut bcol = vec![0.0f32; b.rows];
        for i in 0..a.cols {
            for k in 0..a.rows {
                arow[k] = a.at(k, i);
            }
            for j in 0..b.cols {
                for k in 0..b.rows {
                    bcol[k] = b.at(k, j);
                }
                *out.at_mut(i, j) = dot(&arow, &bcol);
            }
        }
        out
    }

    /// `a × bᵀ` by fixed-order dot over the already-contiguous rows.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.cols, "matmul_nt shape");
        let mut out = Matrix::zeros(a.rows, b.rows);
        for i in 0..a.rows {
            for j in 0..b.rows {
                *out.at_mut(i, j) = dot(
                    &a.data[i * a.cols..(i + 1) * a.cols],
                    &b.data[j * b.cols..(j + 1) * b.cols],
                );
            }
        }
        out
    }

    /// `out += a × x` (column vector), gather-free: rows are contiguous.
    pub fn matvec_acc(a: &Matrix, x: &Matrix, out: &mut Matrix) {
        assert_eq!(a.cols, x.rows, "matvec shape");
        for i in 0..a.rows {
            out.data[i] += dot(&a.data[i * a.cols..(i + 1) * a.cols], &x.data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rand_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        Matrix::xavier(rows.max(1), cols.max(1), rng)
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    /// The blocked kernels must be bit-identical to the reference kernels
    /// on every shape class (vector, tile-aligned, ragged-edge) — this is
    /// the invariant that makes the NaiveOracle training path exact.
    #[test]
    fn blocked_kernels_match_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let shapes = [
            (1, 1, 1),
            (3, 5, 1),
            (8, 8, 8),
            (8, 16, 8),
            (9, 13, 7),
            (17, 33, 19),
            (64, 48, 24),
            (5, 1, 9),
        ];
        for &(m, k, n) in &shapes {
            let a = rand_mat(m, k, &mut rng);
            let b = rand_mat(k, n, &mut rng);
            let fast = a.matmul(&b);
            let slow = reference::matmul(&a, &b);
            assert_eq!(fast.data, slow.data, "matmul {m}x{k}x{n}");

            let at = rand_mat(k, m, &mut rng);
            let fast = at.matmul_tn(&b);
            let slow = reference::matmul_tn(&at, &b);
            assert_eq!(fast.data, slow.data, "matmul_tn {m}x{k}x{n}");

            let bt = rand_mat(n, k, &mut rng);
            let fast = a.matmul_nt(&bt);
            let slow = reference::matmul_nt(&a, &bt);
            assert_eq!(fast.data, slow.data, "matmul_nt {m}x{k}x{n}");
        }
    }

    #[test]
    fn matvec_acc_accumulates_like_matmul_plus_add() {
        let mut rng = StdRng::seed_from_u64(12);
        let w = rand_mat(13, 7, &mut rng);
        let x = Matrix::col((0..7).map(|i| i as f32 * 0.3 - 1.0).collect());
        let base = Matrix::col((0..13).map(|i| i as f32 * 0.1).collect());
        // Fused: out = base; out += w·x.
        let mut fused = base.clone();
        w.matvec_acc(&x, &mut fused);
        // Unfused: w·x then elementwise add — must be bit-identical.
        let mut unfused = w.matmul(&x);
        unfused.add_assign(&base);
        assert_eq!(fused.data, unfused.data);
        // And the reference twin agrees too.
        let mut reference = base.clone();
        reference::matvec_acc(&w, &x, &mut reference);
        assert_eq!(fused.data, reference.data);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 2, &mut rng);
        let tn = a.matmul_tn(&b);
        // Manual transpose.
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                *at.at_mut(j, i) = a.at(i, j);
            }
        }
        let expect = at.matmul(&b);
        for (x, y) in tn.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_nt_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(3, 5, &mut rng);
        let b = Matrix::xavier(2, 5, &mut rng);
        let nt = a.matmul_nt(&b);
        assert_eq!((nt.rows, nt.cols), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..5 {
                    s += a.at(i, k) * b.at(j, k);
                }
                assert!((nt.at(i, j) - s).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn into_variants_overwrite_stale_buffers() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = rand_mat(6, 5, &mut rng);
        let b = rand_mat(5, 4, &mut rng);
        let mut out = Matrix::from_vec(6, 4, vec![f32::NAN; 24]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data, a.matmul(&b).data);
        let c = rand_mat(6, 4, &mut rng);
        let mut out = Matrix::from_vec(5, 4, vec![f32::NAN; 20]);
        a.matmul_tn_into(&c, &mut out); // aᵀ(6×5)ᵀ × c(6×4) = 5×4
        assert_eq!(out.data, a.matmul_tn(&c).data);
        let mut out = Matrix::from_vec(6, 6, vec![f32::NAN; 36]);
        a.matmul_nt_into(&a, &mut out);
        assert_eq!(out.data, a.matmul_nt(&a).data);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data.iter().all(|x| x.abs() <= bound));
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn basic_ops() {
        let mut a = Matrix::col(vec![1.0, 2.0]);
        let b = Matrix::col(vec![3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.data, vec![4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data, vec![2.0, 3.0]);
        a.fill(0.0);
        assert_eq!(a.norm(), 0.0);
    }
}
