//! A tape-based reverse-mode autograd over [`Matrix`] with two execution
//! policies sharing one numeric contract.
//!
//! ## Kernel policy
//!
//! A tape runs under a [`KernelPolicy`]:
//!
//! * **`Fast`** — the training path: blocked matmul kernels, fused ops
//!   ([`Tape::affine`], [`Tape::affine2`], [`Tape::lstm_gates`],
//!   [`Tape::copy_scatter`]), weight gradients accumulated straight into a
//!   dense [`GradSet`] as rank-1 updates (no per-op gradient matrices), and
//!   a buffer pool that recycles every value/gradient buffer across
//!   [`Tape::reset`] calls — the per-step allocation killer.
//! * **`NaiveOracle`** — the differential twin, mirroring the pre-rewrite
//!   implementation: reference (gather-loop) kernels, the unfused op chain
//!   (explicit matmul/add/slice/sigmoid/... nodes), fresh allocation per
//!   node. Kept callable forever, like the sequential-synthesis and
//!   reference-interpreter oracles of earlier PRs.
//!
//! The contract: **both policies produce bit-identical losses and
//! gradients.** The fused forward/backward replicate the unfused op
//! composition's floating-point expression order exactly (see the comments
//! on each fused backward arm), and the blocked kernels share the canonical
//! fixed-order reduction with the reference kernels (`matrix.rs`).
//! `tests/train_determinism.rs` pins whole training runs to this equality.
//!
//! Parameters live in a [`ParamStore`] (values + gradients + Adam state);
//! the tape references them by id, so weight matrices are never copied per
//! step. Fused ops reference [`ParamId`]s directly — no `Param` nodes, no
//! intermediate weight-gradient matrices.

use crate::matrix::{reference, Matrix};
use std::cell::RefCell;

/// Which kernel/fusion path a [`Tape`] uses. Both produce bit-identical
/// values and gradients; `NaiveOracle` is the slow differential twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    #[default]
    Fast,
    NaiveOracle,
}

/// Handle to a parameter in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// One backward pass's parameter gradients, dense over the store's
/// parameter list (slot `i` ↔ `ParamId(i)`; `None` = untouched). Replaces
/// the old per-sample `HashMap` — indexable, mergeable in a fixed order,
/// and cheap to fold into the store.
#[derive(Debug, Clone)]
pub struct GradSet {
    pub grads: Vec<Option<Matrix>>,
}

impl GradSet {
    /// An empty grad set shaped for `store`.
    pub fn for_store(store: &ParamStore) -> GradSet {
        GradSet { grads: (0..store.mats.len()).map(|_| None).collect() }
    }

    /// Gradient for one parameter, if any op touched it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Fold `other` in (elementwise add per slot). Slot-wise and in slot
    /// order, so a fixed merge *tree* over samples gives bit-identical
    /// totals no matter how many threads produced the inputs.
    pub fn merge(&mut self, other: GradSet) {
        assert_eq!(self.grads.len(), other.grads.len());
        for (slot, o) in self.grads.iter_mut().zip(other.grads) {
            match (slot, o) {
                (Some(s), Some(o)) => s.add_assign(&o),
                (slot @ None, Some(o)) => *slot = Some(o),
                _ => {}
            }
        }
    }
}

/// Parameter storage with Adam state.
#[derive(Debug, Clone)]
pub struct ParamStore {
    pub mats: Vec<Matrix>,
    pub grads: Vec<Matrix>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl ParamStore {
    pub fn new() -> ParamStore {
        ParamStore { mats: vec![], grads: vec![], m: vec![], v: vec![], t: 0 }
    }

    pub fn add(&mut self, mat: Matrix) -> ParamId {
        let id = self.mats.len();
        self.grads.push(Matrix::zeros(mat.rows, mat.cols));
        self.m.push(Matrix::zeros(mat.rows, mat.cols));
        self.v.push(Matrix::zeros(mat.rows, mat.cols));
        self.mats.push(mat);
        ParamId(id)
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Total scalar parameter count.
    pub fn n_scalars(&self) -> usize {
        self.mats.iter().map(|m| m.data.len()).sum()
    }

    /// Clip gradients to a global L2 norm (the paper clips at 2.0).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let total: f32 = self
            .grads
            .iter()
            .map(|g| g.data.iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let s = max_norm / total;
            for g in &mut self.grads {
                g.scale(s);
            }
        }
    }

    /// One Adam update from the accumulated gradients.
    pub fn adam_step(&mut self, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..self.mats.len() {
            let g = &self.grads[i];
            for j in 0..g.data.len() {
                let grad = g.data[j];
                self.m[i].data[j] = B1 * self.m[i].data[j] + (1.0 - B1) * grad;
                self.v[i].data[j] = B2 * self.v[i].data[j] + (1.0 - B2) * grad * grad;
                let mhat = self.m[i].data[j] / bc1;
                let vhat = self.v[i].data[j] / bc2;
                self.mats[i].data[j] -= lr * mhat / (vhat.sqrt() + EPS);
            }
        }
    }

    /// Fold one backward pass's parameter gradients in.
    pub fn accumulate(&mut self, gs: &GradSet) {
        for (i, g) in gs.grads.iter().enumerate() {
            if let Some(g) = g {
                self.grads[i].add_assign(g);
            }
        }
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T(usize);

enum Op {
    Param(usize),
    Const,
    Embed { param: usize, row: usize },
    Matmul(T, T),
    /// `aᵀ × b`
    MatmulTN(T, T),
    Add(T, T),
    Mul(T, T),
    Sigmoid(T),
    Tanh(T),
    SliceRows { src: T, start: usize },
    ConcatRows(Vec<T>),
    ConcatCols(Vec<T>),
    Softmax(T),
    /// `gate*a + (1-gate)*b`, gate is 1×1.
    Blend { gate: T, a: T, b: T },
    /// `-ln(probs[target])`, probs is v×1; output 1×1.
    Nll { probs: T, target: usize },
    Scale(T, f32),
    SumList(Vec<T>),
    /// Fused `w·x + b` (fast policy only); params referenced directly.
    Affine { w: usize, x: T, b: usize },
    /// Fused `w1·x1 + w2·x2 + b` — the packed `[i|f|g|o]` LSTM
    /// pre-activation (fast policy only).
    Affine2 { w1: usize, x1: T, w2: usize, x2: T, b: usize },
    /// Fused `w·x`, no bias (fast policy only).
    Linear { w: usize, x: T },
    /// Fused LSTM gate step (fast policy only): value is `[h'; c']`
    /// (2h×1); `aux` caches `[i, f, g, o, tanh(c')]` (5h×1) for backward.
    LstmGates { z: T, c_prev: T, aux: Matrix },
    /// Sparse pointer-copy: `out[rows[i]] += attn[i]` over a `vocab`-sized
    /// column — replaces the dense vocab×srclen scatter matrix (both
    /// policies; it is an op-graph change, not a kernel).
    CopyScatter { attn: T, rows: Vec<usize> },
}

/// Cap on recycled buffers kept by a tape (bounds worst-case memory; a
/// seq2vis sample needs a few hundred).
const POOL_CAP: usize = 4096;

/// The computation tape for one sample/sequence. Under the fast policy the
/// tape doubles as an arena: [`Tape::reset`] recycles every value buffer
/// into a pool that subsequent nodes draw from, so a worker reusing one
/// tape across samples stops allocating after the first.
pub struct Tape {
    values: Vec<Option<Matrix>>, // None for Param nodes (live in the store)
    ops: Vec<Op>,
    naive: bool,
    pool: RefCell<Vec<Vec<f32>>>,
}

impl Tape {
    /// A fast-policy tape.
    pub fn new() -> Tape {
        Tape::with_policy(KernelPolicy::Fast)
    }

    pub fn with_policy(policy: KernelPolicy) -> Tape {
        Tape {
            values: vec![],
            ops: vec![],
            naive: policy == KernelPolicy::NaiveOracle,
            pool: RefCell::new(Vec::new()),
        }
    }

    pub fn policy(&self) -> KernelPolicy {
        if self.naive { KernelPolicy::NaiveOracle } else { KernelPolicy::Fast }
    }

    /// Number of nodes recorded so far.
    pub fn n_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Clear the tape for the next sample, recycling value buffers into the
    /// pool (fast policy; the naive oracle mirrors the old fresh-allocation
    /// behavior and drops them).
    pub fn reset(&mut self) {
        if self.naive {
            self.values.clear();
            self.ops.clear();
            return;
        }
        let mut pool = self.pool.borrow_mut();
        for v in self.values.drain(..) {
            if let Some(m) = v {
                if pool.len() < POOL_CAP {
                    pool.push(m.data);
                }
            }
        }
        for op in self.ops.drain(..) {
            if let Op::LstmGates { aux, .. } = op {
                if pool.len() < POOL_CAP {
                    pool.push(aux.data);
                }
            }
        }
    }

    /// A working matrix: pooled under the fast policy, fresh under the
    /// naive oracle. Always fully zeroed.
    fn new_mat(&self, rows: usize, cols: usize) -> Matrix {
        if self.naive {
            return Matrix::zeros(rows, cols);
        }
        let mut data = self.pool.borrow_mut().pop().unwrap_or_default();
        data.clear();
        data.resize(rows * cols, 0.0);
        Matrix { rows, cols, data }
    }

    /// Like `new_mat`, but for outputs the caller writes in FULL before any
    /// read: the pooled buffer's stale contents are kept (only growth is
    /// zero-filled), skipping a redundant memset on the hot path. Never use
    /// for scatter/accumulate targets — those need `new_mat`'s zeros.
    fn new_mat_overwrite(&self, rows: usize, cols: usize) -> Matrix {
        if self.naive {
            return Matrix::zeros(rows, cols);
        }
        let mut data = self.pool.borrow_mut().pop().unwrap_or_default();
        data.resize(rows * cols, 0.0);
        Matrix { rows, cols, data }
    }

    /// Recycle a backward-pass temporary (fast policy only).
    fn recycle(&self, m: Matrix) {
        if !self.naive {
            let mut pool = self.pool.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(m.data);
            }
        }
    }

    // Policy-dispatched kernels (bit-identical by the matrix.rs contract).
    fn k_matmul(&self, a: &Matrix, b: &Matrix) -> Matrix {
        if self.naive {
            reference::matmul(a, b)
        } else {
            let mut out = self.new_mat_overwrite(a.rows, b.cols);
            a.matmul_into(b, &mut out);
            out
        }
    }

    fn k_matmul_tn(&self, a: &Matrix, b: &Matrix) -> Matrix {
        if self.naive {
            reference::matmul_tn(a, b)
        } else {
            let mut out = self.new_mat_overwrite(a.cols, b.cols);
            a.matmul_tn_into(b, &mut out);
            out
        }
    }

    fn k_matmul_nt(&self, a: &Matrix, b: &Matrix) -> Matrix {
        if self.naive {
            reference::matmul_nt(a, b)
        } else {
            let mut out = self.new_mat_overwrite(a.rows, b.rows);
            a.matmul_nt_into(b, &mut out);
            out
        }
    }

    fn push(&mut self, value: Option<Matrix>, op: Op) -> T {
        self.values.push(value);
        self.ops.push(op);
        T(self.values.len() - 1)
    }

    /// Shape-checked access to a node's value.
    pub fn value<'a>(&'a self, store: &'a ParamStore, t: T) -> &'a Matrix {
        match &self.ops[t.0] {
            Op::Param(id) => &store.mats[*id],
            _ => self.values[t.0].as_ref().expect("non-param node has a value"),
        }
    }

    pub fn param(&mut self, id: ParamId) -> T {
        self.push(None, Op::Param(id.0))
    }

    pub fn constant(&mut self, m: Matrix) -> T {
        self.push(Some(m), Op::Const)
    }

    /// Embedding-row lookup: the `row`-th row of the parameter matrix as a
    /// column vector.
    pub fn embed(&mut self, store: &ParamStore, table: ParamId, row: usize) -> T {
        let out = {
            let tab = store.get(table);
            let dim = tab.cols;
            let mut out = self.new_mat_overwrite(dim, 1);
            out.data.copy_from_slice(&tab.data[row * dim..(row + 1) * dim]);
            out
        };
        self.push(Some(out), Op::Embed { param: table.0, row })
    }

    pub fn matmul(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let v = self.k_matmul(self.value(store, a), self.value(store, b));
        self.push(Some(v), Op::Matmul(a, b))
    }

    /// `aᵀ × b`.
    pub fn matmul_tn(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let v = self.k_matmul_tn(self.value(store, a), self.value(store, b));
        self.push(Some(v), Op::MatmulTN(a, b))
    }

    pub fn add(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let mut v = self.value(store, a).clone();
        v.add_assign(self.value(store, b));
        self.push(Some(v), Op::Add(a, b))
    }

    pub fn mul(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let av = self.value(store, a);
        let bv = self.value(store, b);
        assert!(av.same_shape(bv));
        let data = av.data.iter().zip(&bv.data).map(|(x, y)| x * y).collect();
        let v = Matrix::from_vec(av.rows, av.cols, data);
        self.push(Some(v), Op::Mul(a, b))
    }

    pub fn sigmoid(&mut self, store: &ParamStore, a: T) -> T {
        let v = {
            let av = self.value(store, a);
            let mut out = self.new_mat_overwrite(av.rows, av.cols);
            for (o, &x) in out.data.iter_mut().zip(&av.data) {
                *o = 1.0 / (1.0 + (-x).exp());
            }
            out
        };
        self.push(Some(v), Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, store: &ParamStore, a: T) -> T {
        let v = {
            let av = self.value(store, a);
            let mut out = self.new_mat_overwrite(av.rows, av.cols);
            for (o, &x) in out.data.iter_mut().zip(&av.data) {
                *o = x.tanh();
            }
            out
        };
        self.push(Some(v), Op::Tanh(a))
    }

    /// Rows `[start, start+len)` of a column-vector-shaped node.
    pub fn slice_rows(&mut self, store: &ParamStore, src: T, start: usize, len: usize) -> T {
        let v = {
            let sv = self.value(store, src);
            assert_eq!(sv.cols, 1);
            let mut out = self.new_mat_overwrite(len, 1);
            out.data.copy_from_slice(&sv.data[start..start + len]);
            out
        };
        self.push(Some(v), Op::SliceRows { src, start })
    }

    /// Stack column vectors vertically.
    pub fn concat_rows(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let v = {
            let total: usize = parts.iter().map(|&p| self.value(store, p).rows).sum();
            let mut out = self.new_mat_overwrite(total, 1);
            let mut off = 0;
            for &p in parts {
                let pv = self.value(store, p);
                assert_eq!(pv.cols, 1);
                out.data[off..off + pv.rows].copy_from_slice(&pv.data);
                off += pv.rows;
            }
            out
        };
        self.push(Some(v), Op::ConcatRows(parts.to_vec()))
    }

    /// Stack column vectors horizontally into an (h × n) matrix.
    pub fn concat_cols(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let out = {
            let rows = self.value(store, parts[0]).rows;
            let mut out = self.new_mat_overwrite(rows, parts.len());
            for (j, &p) in parts.iter().enumerate() {
                let pv = self.value(store, p);
                assert_eq!(pv.rows, rows);
                for i in 0..rows {
                    *out.at_mut(i, j) = pv.data[i];
                }
            }
            out
        };
        self.push(Some(out), Op::ConcatCols(parts.to_vec()))
    }

    /// Column softmax.
    pub fn softmax(&mut self, store: &ParamStore, a: T) -> T {
        let v = {
            let av = self.value(store, a);
            assert_eq!(av.cols, 1);
            let max = av.data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut out = self.new_mat_overwrite(av.rows, 1);
            let mut sum = 0.0f32;
            for (o, &x) in out.data.iter_mut().zip(&av.data) {
                let e = (x - max).exp();
                *o = e;
                sum += e;
            }
            for o in &mut out.data {
                *o /= sum;
            }
            out
        };
        self.push(Some(v), Op::Softmax(a))
    }

    /// `gate*a + (1-gate)*b` with a 1×1 gate.
    pub fn blend(&mut self, store: &ParamStore, gate: T, a: T, b: T) -> T {
        let v = {
            let g = self.value(store, gate).data[0];
            let av = self.value(store, a);
            let bv = self.value(store, b);
            assert!(av.same_shape(bv));
            let mut out = self.new_mat_overwrite(av.rows, av.cols);
            for (o, (x, y)) in out.data.iter_mut().zip(av.data.iter().zip(&bv.data)) {
                *o = g * x + (1.0 - g) * y;
            }
            out
        };
        self.push(Some(v), Op::Blend { gate, a, b })
    }

    /// Negative log likelihood of `target` under a probability column.
    pub fn nll(&mut self, store: &ParamStore, probs: T, target: usize) -> T {
        let p = self.value(store, probs).data[target].max(1e-12);
        let v = Matrix::col(vec![-p.ln()]);
        self.push(Some(v), Op::Nll { probs, target })
    }

    pub fn scale(&mut self, store: &ParamStore, a: T, s: f32) -> T {
        let mut v = self.value(store, a).clone();
        v.scale(s);
        self.push(Some(v), Op::Scale(a, s))
    }

    /// Sum of 1×1 scalars.
    pub fn sum_scalars(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let total: f32 = parts.iter().map(|&p| self.value(store, p).data[0]).sum();
        self.push(Some(Matrix::col(vec![total])), Op::SumList(parts.to_vec()))
    }

    /// `w·x + b`. Fast: one fused node referencing the params directly.
    /// Naive: the pre-rewrite chain `add(matmul(param(w), x), param(b))` —
    /// bit-identical because `(w·x)[i] + b[i]` is computed in the same
    /// order either way.
    pub fn affine(&mut self, store: &ParamStore, w: ParamId, x: T, b: ParamId) -> T {
        if self.naive {
            let wp = self.param(w);
            let bp = self.param(b);
            let z = self.matmul(store, wp, x);
            return self.add(store, z, bp);
        }
        let out = {
            let wm = &store.mats[w.0];
            let mut out = self.new_mat_overwrite(wm.rows, 1);
            wm.matmul_into(self.value(store, x), &mut out);
            for (o, &bv) in out.data.iter_mut().zip(&store.mats[b.0].data) {
                *o += bv;
            }
            out
        };
        self.push(Some(out), Op::Affine { w: w.0, x, b: b.0 })
    }

    /// `w1·x1 + w2·x2 + b` — the packed `[i|f|g|o]` LSTM pre-activation as
    /// one node. Sum order matches the unfused `add(add(w1·x1, w2·x2), b)`
    /// exactly: the second product is accumulated onto the first, then the
    /// bias.
    pub fn affine2(
        &mut self,
        store: &ParamStore,
        w1: ParamId,
        x1: T,
        w2: ParamId,
        x2: T,
        b: ParamId,
    ) -> T {
        if self.naive {
            let wp1 = self.param(w1);
            let wp2 = self.param(w2);
            let bp = self.param(b);
            let z1 = self.matmul(store, wp1, x1);
            let z2 = self.matmul(store, wp2, x2);
            let z = self.add(store, z1, z2);
            return self.add(store, z, bp);
        }
        let out = {
            let w1m = &store.mats[w1.0];
            let mut out = self.new_mat_overwrite(w1m.rows, 1);
            w1m.matmul_into(self.value(store, x1), &mut out);
            store.mats[w2.0].matvec_acc(self.value(store, x2), &mut out);
            for (o, &bv) in out.data.iter_mut().zip(&store.mats[b.0].data) {
                *o += bv;
            }
            out
        };
        self.push(Some(out), Op::Affine2 { w1: w1.0, x1, w2: w2.0, x2, b: b.0 })
    }

    /// `w·x` with no bias (bridge / attention-query / copy-gate
    /// projections).
    pub fn linear(&mut self, store: &ParamStore, w: ParamId, x: T) -> T {
        if self.naive {
            let wp = self.param(w);
            return self.matmul(store, wp, x);
        }
        let out = {
            let wm = &store.mats[w.0];
            let mut out = self.new_mat_overwrite(wm.rows, 1);
            wm.matmul_into(self.value(store, x), &mut out);
            out
        };
        self.push(Some(out), Op::Linear { w: w.0, x })
    }

    /// One LSTM gate step from the packed pre-activation `z` (4h×1) and the
    /// previous cell `c_prev`: returns `(h', c')` nodes. Fast: a single
    /// fused node computing all gates in one pass (aux-cached for
    /// backward) plus two row slices. Naive: the pre-rewrite 11-node chain.
    /// Elementwise math is identical in both: `c' = f·c + i·g`,
    /// `h' = o·tanh(c')` with the same sigmoid/tanh expressions.
    pub fn lstm_gates(&mut self, store: &ParamStore, z: T, c_prev: T, hidden: usize) -> (T, T) {
        if self.naive {
            let i = self.slice_rows(store, z, 0, hidden);
            let f = self.slice_rows(store, z, hidden, hidden);
            let g = self.slice_rows(store, z, 2 * hidden, hidden);
            let o = self.slice_rows(store, z, 3 * hidden, hidden);
            let i = self.sigmoid(store, i);
            let f = self.sigmoid(store, f);
            let g = self.tanh(store, g);
            let o = self.sigmoid(store, o);
            let fc = self.mul(store, f, c_prev);
            let ig = self.mul(store, i, g);
            let c2 = self.add(store, fc, ig);
            let tc = self.tanh(store, c2);
            let h2 = self.mul(store, o, tc);
            return (h2, c2);
        }
        let h = hidden;
        let (hc, aux) = {
            let zv = self.value(store, z);
            let cv = self.value(store, c_prev);
            assert_eq!(zv.rows, 4 * h);
            assert_eq!(cv.rows, h);
            let mut hc = self.new_mat_overwrite(2 * h, 1);
            let mut aux = self.new_mat_overwrite(5 * h, 1);
            for k in 0..h {
                let i = 1.0 / (1.0 + (-zv.data[k]).exp());
                let f = 1.0 / (1.0 + (-zv.data[h + k]).exp());
                let g = zv.data[2 * h + k].tanh();
                let o = 1.0 / (1.0 + (-zv.data[3 * h + k]).exp());
                let c2 = f * cv.data[k] + i * g;
                let tc = c2.tanh();
                hc.data[k] = o * tc;
                hc.data[h + k] = c2;
                aux.data[k] = i;
                aux.data[h + k] = f;
                aux.data[2 * h + k] = g;
                aux.data[3 * h + k] = o;
                aux.data[4 * h + k] = tc;
            }
            (hc, aux)
        };
        let node = self.push(Some(hc), Op::LstmGates { z, c_prev, aux });
        let h2 = self.slice_rows(store, node, 0, h);
        let c2 = self.slice_rows(store, node, h, h);
        (h2, c2)
    }

    /// Pointer-copy distribution: `out[rows[i]] += attn[i]` over a
    /// `vocab`-sized column. Used under both policies — it replaces the
    /// dense vocab×srclen one-hot matrix multiply at the op-graph level.
    pub fn copy_scatter(
        &mut self,
        store: &ParamStore,
        attn: T,
        rows: &[usize],
        vocab: usize,
    ) -> T {
        let out = {
            let av = self.value(store, attn);
            assert_eq!(av.rows, rows.len());
            let mut out = self.new_mat(vocab, 1);
            for (i, &r) in rows.iter().enumerate() {
                out.data[r] += av.data[i];
            }
            out
        };
        self.push(Some(out), Op::CopyScatter { attn, rows: rows.to_vec() })
    }

    /// Reverse pass from a scalar loss node. Returns the parameter
    /// gradients as a dense [`GradSet`] (caller merges/folds them).
    pub fn backward(&self, store: &ParamStore, loss: T) -> GradSet {
        let n = self.values.len();
        if nv_trace::enabled() {
            nv_trace::count("nn.tape.nodes", n as u64);
        }
        let mut gs = GradSet::for_store(store);
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        {
            let lv = self.value(store, loss);
            assert_eq!((lv.rows, lv.cols), (1, 1), "loss must be scalar");
        }
        grads[loss.0] = Some(Matrix::col(vec![1.0]));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Const => {}
                Op::Param(id) => {
                    entry(&mut gs, store, *id).add_assign(&g);
                }
                Op::Embed { param, row } => {
                    let e = entry(&mut gs, store, *param);
                    let cols = e.cols;
                    for j in 0..g.rows {
                        e.data[row * cols + j] += g.data[j];
                    }
                }
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = self.k_matmul_nt(&g, self.value(store, b));
                    let db = self.k_matmul_tn(self.value(store, a), &g);
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::MatmulTN(a, b) => {
                    let (a, b) = (*a, *b);
                    // out = aᵀb; da = b gᵀ; db = a g.
                    let da = self.k_matmul_nt(self.value(store, b), &g);
                    let db = self.k_matmul(self.value(store, a), &g);
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    acc(&mut grads, a, g.clone());
                    acc(&mut grads, b, g);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.value(store, a).clone();
                    let bv = self.value(store, b).clone();
                    let mut da = g.clone();
                    for (x, y) in da.data.iter_mut().zip(&bv.data) {
                        *x *= y;
                    }
                    let mut db = g;
                    for (x, y) in db.data.iter_mut().zip(&av.data) {
                        *x *= y;
                    }
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let yv = self.values[i].as_ref().unwrap().clone();
                    let mut da = g;
                    for (x, y) in da.data.iter_mut().zip(&yv.data) {
                        *x *= y * (1.0 - y);
                    }
                    acc(&mut grads, a, da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let yv = self.values[i].as_ref().unwrap().clone();
                    let mut da = g;
                    for (x, y) in da.data.iter_mut().zip(&yv.data) {
                        *x *= 1.0 - y * y;
                    }
                    acc(&mut grads, a, da);
                }
                Op::SliceRows { src, start } => {
                    let (src, start) = (*src, *start);
                    let rows = self.value(store, src).rows;
                    let mut ds = self.new_mat(rows, 1);
                    ds.data[start..start + g.rows].copy_from_slice(&g.data);
                    acc(&mut grads, src, ds);
                    self.recycle(g);
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let len = self.value(store, p).rows;
                        let mut dp = self.new_mat_overwrite(len, 1);
                        dp.data.copy_from_slice(&g.data[off..off + len]);
                        off += len;
                        acc(&mut grads, p, dp);
                    }
                    self.recycle(g);
                }
                Op::ConcatCols(parts) => {
                    for (j, &p) in parts.iter().enumerate() {
                        let rows = g.rows;
                        let mut dp = self.new_mat_overwrite(rows, 1);
                        for r in 0..rows {
                            dp.data[r] = g.at(r, j);
                        }
                        acc(&mut grads, p, dp);
                    }
                    self.recycle(g);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    let y = self.values[i].as_ref().unwrap();
                    let dot: f32 = g.data.iter().zip(&y.data).map(|(x, s)| x * s).sum();
                    let mut da = self.new_mat_overwrite(y.rows, 1);
                    for (o, (s, x)) in da.data.iter_mut().zip(y.data.iter().zip(&g.data)) {
                        *o = s * (x - dot);
                    }
                    acc(&mut grads, a, da);
                    self.recycle(g);
                }
                Op::Blend { gate, a, b } => {
                    let (gate, a, b) = (*gate, *a, *b);
                    let gv = self.value(store, gate).data[0];
                    let av = self.value(store, a).clone();
                    let bv = self.value(store, b).clone();
                    let dgate: f32 = g
                        .data
                        .iter()
                        .zip(av.data.iter().zip(&bv.data))
                        .map(|(x, (ai, bi))| x * (ai - bi))
                        .sum();
                    let mut da = g.clone();
                    da.scale(gv);
                    let mut db = g;
                    db.scale(1.0 - gv);
                    acc(&mut grads, gate, Matrix::col(vec![dgate]));
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Nll { probs, target } => {
                    let (probs, target) = (*probs, *target);
                    let pv = self.value(store, probs);
                    let mut dp = self.new_mat(pv.rows, 1);
                    dp.data[target] = -g.data[0] / pv.data[target].max(1e-12);
                    acc(&mut grads, probs, dp);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = g;
                    da.scale(s);
                    acc(&mut grads, a, da);
                }
                Op::SumList(parts) => {
                    for &p in parts {
                        acc(&mut grads, p, g.clone());
                    }
                }
                // Fused arms (fast policy only). Weight gradients are
                // rank-1 accumulated straight into the grad set — the same
                // `entry += g_i·x_j` additions the unfused
                // matmul_nt + Param-node chain performs, without the
                // intermediate weight-sized matrices.
                Op::Affine { w, x, b } => {
                    let (w, x, b) = (*w, *x, *b);
                    rank1_acc(entry(&mut gs, store, w), &g, self.value(store, x));
                    let dx = self.k_matmul_tn(&store.mats[w], &g);
                    acc(&mut grads, x, dx);
                    entry(&mut gs, store, b).add_assign(&g);
                }
                Op::Affine2 { w1, x1, w2, x2, b } => {
                    let (w1, x1, w2, x2, b) = (*w1, *x1, *w2, *x2, *b);
                    rank1_acc(entry(&mut gs, store, w1), &g, self.value(store, x1));
                    let dx1 = self.k_matmul_tn(&store.mats[w1], &g);
                    acc(&mut grads, x1, dx1);
                    rank1_acc(entry(&mut gs, store, w2), &g, self.value(store, x2));
                    let dx2 = self.k_matmul_tn(&store.mats[w2], &g);
                    acc(&mut grads, x2, dx2);
                    entry(&mut gs, store, b).add_assign(&g);
                }
                Op::Linear { w, x } => {
                    let (w, x) = (*w, *x);
                    rank1_acc(entry(&mut gs, store, w), &g, self.value(store, x));
                    let dx = self.k_matmul_tn(&store.mats[w], &g);
                    acc(&mut grads, x, dx);
                }
                // Mirrors the unfused chain's float expressions and
                // accumulation order exactly:
                //   dtc = gh·o, then ·(1−tc²)       (mul, tanh backward)
                //   dc  = gc_ext + dtc              (ext contribution first)
                //   df  = dc·c_prev, dc_prev = dc·f (mul backward)
                //   di  = dc·g, dg = dc·i           (mul backward)
                //   dz_* via y·(1−y) / (1−y²)       (sigmoid/tanh backward)
                Op::LstmGates { z, c_prev, aux } => {
                    let (z, c_prev) = (*z, *c_prev);
                    let h = aux.rows / 5;
                    let mut dz = self.new_mat_overwrite(4 * h, 1);
                    let mut dc_prev = self.new_mat_overwrite(h, 1);
                    {
                        let cv = self.value(store, c_prev);
                        for k in 0..h {
                            let iv = aux.data[k];
                            let fv = aux.data[h + k];
                            let gg = aux.data[2 * h + k];
                            let ov = aux.data[3 * h + k];
                            let tc = aux.data[4 * h + k];
                            let gh = g.data[k];
                            let gc = g.data[h + k];
                            let mut dtc = gh * ov;
                            dtc *= 1.0 - tc * tc;
                            let dc = gc + dtc;
                            let df = dc * cv.data[k];
                            dc_prev.data[k] = dc * fv;
                            let di = dc * gg;
                            let dg = dc * iv;
                            let do_ = gh * tc;
                            dz.data[k] = di * (iv * (1.0 - iv));
                            dz.data[h + k] = df * (fv * (1.0 - fv));
                            dz.data[2 * h + k] = dg * (1.0 - gg * gg);
                            dz.data[3 * h + k] = do_ * (ov * (1.0 - ov));
                        }
                    }
                    acc(&mut grads, z, dz);
                    acc(&mut grads, c_prev, dc_prev);
                    self.recycle(g);
                }
                Op::CopyScatter { attn, rows } => {
                    let attn = *attn;
                    let mut da = self.new_mat_overwrite(rows.len(), 1);
                    for (i, &r) in rows.iter().enumerate() {
                        da.data[i] = g.data[r];
                    }
                    acc(&mut grads, attn, da);
                    self.recycle(g);
                }
            }
        }
        // Give the remaining per-node gradient buffers back to the pool.
        for m in grads.into_iter().flatten() {
            self.recycle(m);
        }
        gs
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// Dense-slot access into a grad set, creating the zeroed matrix on first
/// touch.
fn entry<'a>(gs: &'a mut GradSet, store: &ParamStore, id: usize) -> &'a mut Matrix {
    gs.grads[id].get_or_insert_with(|| {
        let m = &store.mats[id];
        Matrix::zeros(m.rows, m.cols)
    })
}

/// `m += g · xᵀ` — the weight-gradient outer product accumulated in place.
/// Each element performs the single `+= g_i·x_j` addition the unfused path
/// performs after materializing the product, so the bits match.
fn rank1_acc(m: &mut Matrix, g: &Matrix, x: &Matrix) {
    let cols = m.cols;
    for i in 0..m.rows {
        let gi = g.data[i];
        let row = &mut m.data[i * cols..(i + 1) * cols];
        for (o, &xv) in row.iter_mut().zip(&x.data) {
            *o += gi * xv;
        }
    }
}

fn acc(grads: &mut [Option<Matrix>], t: T, g: Matrix) {
    match &mut grads[t.0] {
        Some(existing) => existing.add_assign(&g),
        slot => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerical gradient check: perturb every scalar of every param and
    /// compare the finite difference against the analytic gradient.
    fn grad_check<F>(store: &mut ParamStore, forward: F, tol: f32)
    where
        F: Fn(&mut Tape, &ParamStore) -> T,
    {
        // Analytic.
        store.zero_grads();
        let mut tape = Tape::new();
        let loss = forward(&mut tape, store);
        let grads = tape.backward(store, loss);
        store.accumulate(&grads);
        let analytic: Vec<Matrix> = store.grads.clone();

        let eps = 1e-3f32;
        for pi in 0..store.mats.len() {
            for j in 0..store.mats[pi].data.len() {
                let orig = store.mats[pi].data[j];
                store.mats[pi].data[j] = orig + eps;
                let mut t1 = Tape::new();
                let l1 = forward(&mut t1, store);
                let f1 = t1.value(store, l1).data[0];
                store.mats[pi].data[j] = orig - eps;
                let mut t2 = Tape::new();
                let l2 = forward(&mut t2, store);
                let f2 = t2.value(store, l2).data[0];
                store.mats[pi].data[j] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                let a = analytic[pi].data[j];
                assert!(
                    (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                    "param {pi}[{j}]: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn grad_check_linear_softmax_nll() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add(Matrix::xavier(4, 3, &mut rng));
        let b = store.add(Matrix::xavier(4, 1, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let x = tape.constant(Matrix::col(vec![0.5, -0.3, 0.8]));
                let z = tape.affine(store, w, x, b);
                let p = tape.softmax(store, z);
                tape.nll(store, p, 2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_check_fused_lstm_cell() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = 3;
        let mut store = ParamStore::new();
        let wih = store.add(Matrix::xavier(4 * h, 2, &mut rng));
        let whh = store.add(Matrix::xavier(4 * h, h, &mut rng));
        let bias = store.add(Matrix::zeros(4 * h, 1));
        let wout = store.add(Matrix::xavier(5, h, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let x = tape.constant(Matrix::col(vec![0.2, -0.7]));
                let h0 = tape.constant(Matrix::col(vec![0.1; 3]));
                let c0 = tape.constant(Matrix::col(vec![0.0; 3]));
                let z = tape.affine2(store, wih, x, whh, h0, bias);
                let (hh, _c) = tape.lstm_gates(store, z, c0, 3);
                let logits = tape.linear(store, wout, hh);
                let p = tape.softmax(store, logits);
                tape.nll(store, p, 1)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_check_attention_and_blend() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let we = store.add(Matrix::xavier(3, 2, &mut rng));
        let wg = store.add(Matrix::xavier(1, 3, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let x1 = tape.constant(Matrix::col(vec![0.3, 0.9]));
                let x2 = tape.constant(Matrix::col(vec![-0.5, 0.1]));
                let e1 = tape.linear(store, we, x1);
                let e2 = tape.linear(store, we, x2);
                let enc = tape.concat_cols(store, &[e1, e2]); // 3×2
                let q = tape.constant(Matrix::col(vec![0.4, -0.2, 0.6]));
                let scores = tape.matmul_tn(store, enc, q); // 2×1
                let attn = tape.softmax(store, scores);
                let ctx = tape.matmul(store, enc, attn); // 3×1
                let gl = tape.linear(store, wg, ctx); // 1×1
                let gate = tape.sigmoid(store, gl);
                // Blend a pseudo-vocab distribution with a copy scatter.
                let vocab = tape.softmax(store, ctx); // 3×1
                let copy = tape.copy_scatter(store, attn, &[0, 1], 3);
                let mixed = tape.blend(store, gate, vocab, copy);
                tape.nll(store, mixed, 0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_check_embed_and_concat_rows() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let emb = store.add(Matrix::xavier(5, 3, &mut rng));
        let w = store.add(Matrix::xavier(4, 6, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let e1 = tape.embed(store, emb, 2);
                let e2 = tape.embed(store, emb, 4);
                let x = tape.concat_rows(store, &[e1, e2]);
                let wp = tape.param(w);
                let z = tape.matmul(store, wp, x);
                let p = tape.softmax(store, z);
                let l1 = tape.nll(store, p, 3);
                let l2 = tape.nll(store, p, 0);
                let s = tape.sum_scalars(store, &[l1, l2]);
                tape.scale(store, s, 0.5)
            },
            2e-2,
        );
    }

    /// The load-bearing invariant: the fused fast path and the unfused
    /// naive oracle produce bit-identical values and gradients on a graph
    /// exercising every fused op (LSTM step + attention + copy blend).
    #[test]
    fn fast_and_naive_policies_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(6);
        let h = 4;
        let mut store = ParamStore::new();
        let emb = store.add(Matrix::xavier(7, 3, &mut rng));
        let wih = store.add(Matrix::xavier(4 * h, 3, &mut rng));
        let whh = store.add(Matrix::xavier(4 * h, h, &mut rng));
        let bias = store.add(Matrix::xavier(4 * h, 1, &mut rng));
        let wq = store.add(Matrix::xavier(h, h, &mut rng));
        let wout = store.add(Matrix::xavier(7, h, &mut rng));
        let bout = store.add(Matrix::xavier(7, 1, &mut rng));
        let wg = store.add(Matrix::xavier(1, h, &mut rng));

        let run = |policy: KernelPolicy| {
            let mut tape = Tape::with_policy(policy);
            // Two warm-up resets so the fast tape runs off its pool.
            for _ in 0..3 {
                tape.reset();
                let e1 = tape.embed(&store, emb, 1);
                let e2 = tape.embed(&store, emb, 5);
                let (mut hh, mut cc) = {
                    let h0 = tape.constant(Matrix::zeros(h, 1));
                    let c0 = tape.constant(Matrix::zeros(h, 1));
                    (h0, c0)
                };
                let mut outs = vec![];
                for &x in &[e1, e2] {
                    let z = tape.affine2(&store, wih, x, whh, hh, bias);
                    let (h2, c2) = tape.lstm_gates(&store, z, cc, h);
                    outs.push(h2);
                    hh = h2;
                    cc = c2;
                }
                let enc = tape.concat_cols(&store, &outs);
                let q = tape.linear(&store, wq, hh);
                let scores = tape.matmul_tn(&store, enc, q);
                let attn = tape.softmax(&store, scores);
                let ctx = tape.matmul(&store, enc, attn);
                let z = tape.affine(&store, wout, ctx, bout);
                let vocab = tape.softmax(&store, z);
                let copy = tape.copy_scatter(&store, attn, &[1, 5], 7);
                let gl = tape.linear(&store, wg, ctx);
                let gate = tape.sigmoid(&store, gl);
                let mixed = tape.blend(&store, gate, vocab, copy);
                let loss = tape.nll(&store, mixed, 5);
                let lv = tape.value(&store, loss).data[0];
                let gs = tape.backward(&store, loss);
                if let KernelPolicy::Fast = policy {
                    // fall through; value captured below
                }
                return (lv, gs);
            }
            unreachable!()
        };
        let (lf, gf) = run(KernelPolicy::Fast);
        let (ln, gn) = run(KernelPolicy::NaiveOracle);
        assert_eq!(lf.to_bits(), ln.to_bits(), "loss bits differ: {lf} vs {ln}");
        for (i, (a, b)) in gf.grads.iter().zip(&gn.grads).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    for (j, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "grad param {i}[{j}]: {x} vs {y}"
                        );
                    }
                }
                (None, None) => {}
                _ => panic!("param {i}: one policy has a grad, the other not"),
            }
        }
    }

    /// Pool reuse must not change results: running the same graph three
    /// times on one resetting tape gives the same loss each time.
    #[test]
    fn tape_reset_and_pool_reuse_are_value_stable() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let w = store.add(Matrix::xavier(6, 4, &mut rng));
        let b = store.add(Matrix::xavier(6, 1, &mut rng));
        let mut tape = Tape::new();
        let mut first: Option<u32> = None;
        for _ in 0..3 {
            tape.reset();
            let x = tape.constant(Matrix::col(vec![0.1, -0.2, 0.3, 0.4]));
            let z = tape.affine(&store, w, x, b);
            let p = tape.softmax(&store, z);
            let l = tape.nll(&store, p, 2);
            let bits = tape.value(&store, l).data[0].to_bits();
            let _ = tape.backward(&store, l);
            match first {
                None => first = Some(bits),
                Some(f) => assert_eq!(f, bits),
            }
        }
        assert!(tape.n_nodes() > 0);
    }

    #[test]
    fn copy_scatter_matches_dense_one_hot_matmul() {
        let mut store = ParamStore::new();
        let attn_v = Matrix::col(vec![0.5, 0.2, 0.2, 0.1]);
        let rows = [2usize, 0, 2, 1];
        let mut tape = Tape::new();
        let attn = tape.constant(attn_v.clone());
        let out = tape.copy_scatter(&store, attn, &rows, 4);
        let got = tape.value(&store, out).clone();
        // Dense equivalent: M[rows[i], i] = 1; M · attn.
        let mut m = Matrix::zeros(4, 4);
        for (i, &r) in rows.iter().enumerate() {
            *m.at_mut(r, i) = 1.0;
        }
        let want = m.matmul(&attn_v);
        for (a, b) in got.data.iter().zip(&want.data) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        // Backward: each position's grad is the output grad at its row.
        let wsum = tape.nll(&store, out, 2);
        let gs = tape.backward(&store, wsum);
        assert!(gs.grads.iter().all(|g| g.is_none())); // no params touched
        let _ = store;
    }

    #[test]
    fn adam_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.add(Matrix::xavier(3, 2, &mut rng));
        let mut first = None;
        let mut last = 0.0;
        let mut tape = Tape::new();
        for _ in 0..60 {
            store.zero_grads();
            tape.reset();
            let x = tape.constant(Matrix::col(vec![1.0, -1.0]));
            let wp = tape.param(w);
            let z = tape.matmul(&store, wp, x);
            let p = tape.softmax(&store, z);
            let loss = tape.nll(&store, p, 1);
            last = tape.value(&store, loss).data[0];
            first.get_or_insert(last);
            let grads = tape.backward(&store, loss);
            store.accumulate(&grads);
            store.clip_global_norm(2.0);
            store.adam_step(0.05);
        }
        assert!(last < first.unwrap() * 0.2, "{} → {last}", first.unwrap());
    }

    #[test]
    fn gradset_merge_is_slotwise_addition() {
        let mut store = ParamStore::new();
        let a = store.add(Matrix::zeros(2, 1));
        let b = store.add(Matrix::zeros(2, 1));
        let mut g1 = GradSet::for_store(&store);
        g1.grads[a.0] = Some(Matrix::col(vec![1.0, 2.0]));
        let mut g2 = GradSet::for_store(&store);
        g2.grads[a.0] = Some(Matrix::col(vec![0.5, 0.5]));
        g2.grads[b.0] = Some(Matrix::col(vec![3.0, 3.0]));
        g1.merge(g2);
        assert_eq!(g1.get(a).unwrap().data, vec![1.5, 2.5]);
        assert_eq!(g1.get(b).unwrap().data, vec![3.0, 3.0]);
    }

    #[test]
    fn clip_global_norm_scales() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::zeros(2, 2));
        store.grads[w.0] = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        store.clip_global_norm(1.0);
        let n: f32 = store.grads[w.0].norm();
        assert!((n - 1.0).abs() < 1e-5);
        // Below the max: untouched.
        store.grads[w.0] = Matrix::from_vec(2, 2, vec![0.1, 0.0, 0.0, 0.1]);
        store.clip_global_norm(1.0);
        assert!((store.grads[w.0].data[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn n_scalars_counts() {
        let mut store = ParamStore::new();
        store.add(Matrix::zeros(3, 4));
        store.add(Matrix::zeros(2, 1));
        assert_eq!(store.n_scalars(), 14);
    }
}
