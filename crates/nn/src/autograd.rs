//! A minimal tape-based reverse-mode autograd over [`Matrix`].
//!
//! Sized exactly for the paper's seq2vis models: column-vector activations,
//! LSTM gates via slicing, Luong attention via transposed matmuls and
//! softmax, and the pointer-generator blend for the copying variant. Every
//! op's backward rule is verified against numerical differentiation in the
//! tests below.
//!
//! Parameters live in a [`ParamStore`] (values + gradients + Adam state);
//! the tape references them by id, so large weight matrices are never
//! copied per step.

use crate::matrix::Matrix;
use std::collections::HashMap;

/// Handle to a parameter in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// Parameter storage with Adam state.
#[derive(Debug, Clone)]
pub struct ParamStore {
    pub mats: Vec<Matrix>,
    pub grads: Vec<Matrix>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl ParamStore {
    pub fn new() -> ParamStore {
        ParamStore { mats: vec![], grads: vec![], m: vec![], v: vec![], t: 0 }
    }

    pub fn add(&mut self, mat: Matrix) -> ParamId {
        let id = self.mats.len();
        self.grads.push(Matrix::zeros(mat.rows, mat.cols));
        self.m.push(Matrix::zeros(mat.rows, mat.cols));
        self.v.push(Matrix::zeros(mat.rows, mat.cols));
        self.mats.push(mat);
        ParamId(id)
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Total scalar parameter count.
    pub fn n_scalars(&self) -> usize {
        self.mats.iter().map(|m| m.data.len()).sum()
    }

    /// Clip gradients to a global L2 norm (the paper clips at 2.0).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let total: f32 = self
            .grads
            .iter()
            .map(|g| g.data.iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let s = max_norm / total;
            for g in &mut self.grads {
                g.scale(s);
            }
        }
    }

    /// One Adam update from the accumulated gradients.
    pub fn adam_step(&mut self, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..self.mats.len() {
            let g = &self.grads[i];
            for j in 0..g.data.len() {
                let grad = g.data[j];
                self.m[i].data[j] = B1 * self.m[i].data[j] + (1.0 - B1) * grad;
                self.v[i].data[j] = B2 * self.v[i].data[j] + (1.0 - B2) * grad * grad;
                let mhat = self.m[i].data[j] / bc1;
                let vhat = self.v[i].data[j] / bc2;
                self.mats[i].data[j] -= lr * mhat / (vhat.sqrt() + EPS);
            }
        }
    }

    /// Fold a backward pass's parameter gradients in.
    pub fn accumulate(&mut self, grads: HashMap<usize, Matrix>) {
        for (id, g) in grads {
            self.grads[id].add_assign(&g);
        }
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T(usize);

enum Op {
    Param(usize),
    Const,
    Embed { param: usize, row: usize },
    Matmul(T, T),
    /// `aᵀ × b`
    MatmulTN(T, T),
    Add(T, T),
    Mul(T, T),
    Sigmoid(T),
    Tanh(T),
    SliceRows { src: T, start: usize },
    ConcatRows(Vec<T>),
    ConcatCols(Vec<T>),
    Softmax(T),
    /// `gate*a + (1-gate)*b`, gate is 1×1.
    Blend { gate: T, a: T, b: T },
    /// `-ln(probs[target])`, probs is v×1; output 1×1.
    Nll { probs: T, target: usize },
    Scale(T, f32),
    SumList(Vec<T>),
}

/// The computation tape for one sample/sequence.
pub struct Tape {
    values: Vec<Option<Matrix>>, // None for Param nodes (live in the store)
    ops: Vec<Op>,
    param_grads: HashMap<usize, Matrix>,
}

impl Tape {
    pub fn new() -> Tape {
        Tape { values: vec![], ops: vec![], param_grads: HashMap::new() }
    }

    fn push(&mut self, value: Option<Matrix>, op: Op) -> T {
        self.values.push(value);
        self.ops.push(op);
        T(self.values.len() - 1)
    }

    /// Shape-checked access to a node's value.
    pub fn value<'a>(&'a self, store: &'a ParamStore, t: T) -> &'a Matrix {
        match &self.ops[t.0] {
            Op::Param(id) => &store.mats[*id],
            _ => self.values[t.0].as_ref().expect("non-param node has a value"),
        }
    }

    pub fn param(&mut self, id: ParamId) -> T {
        self.push(None, Op::Param(id.0))
    }

    pub fn constant(&mut self, m: Matrix) -> T {
        self.push(Some(m), Op::Const)
    }

    /// Embedding-row lookup: the `row`-th row of the parameter matrix as a
    /// column vector.
    pub fn embed(&mut self, store: &ParamStore, table: ParamId, row: usize) -> T {
        let tab = store.get(table);
        let dim = tab.cols;
        let data: Vec<f32> = (0..dim).map(|j| tab.at(row, j)).collect();
        self.push(Some(Matrix::col(data)), Op::Embed { param: table.0, row })
    }

    pub fn matmul(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let v = self.value(store, a).matmul(self.value(store, b));
        self.push(Some(v), Op::Matmul(a, b))
    }

    /// `aᵀ × b`.
    pub fn matmul_tn(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let v = self.value(store, a).matmul_tn(self.value(store, b));
        self.push(Some(v), Op::MatmulTN(a, b))
    }

    pub fn add(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let mut v = self.value(store, a).clone();
        v.add_assign(self.value(store, b));
        self.push(Some(v), Op::Add(a, b))
    }

    pub fn mul(&mut self, store: &ParamStore, a: T, b: T) -> T {
        let av = self.value(store, a);
        let bv = self.value(store, b);
        assert!(av.same_shape(bv));
        let data = av.data.iter().zip(&bv.data).map(|(x, y)| x * y).collect();
        let v = Matrix::from_vec(av.rows, av.cols, data);
        self.push(Some(v), Op::Mul(a, b))
    }

    pub fn sigmoid(&mut self, store: &ParamStore, a: T) -> T {
        let av = self.value(store, a);
        let data = av.data.iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect();
        let v = Matrix::from_vec(av.rows, av.cols, data);
        self.push(Some(v), Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, store: &ParamStore, a: T) -> T {
        let av = self.value(store, a);
        let data = av.data.iter().map(|x| x.tanh()).collect();
        let v = Matrix::from_vec(av.rows, av.cols, data);
        self.push(Some(v), Op::Tanh(a))
    }

    /// Rows `[start, start+len)` of a column-vector-shaped node.
    pub fn slice_rows(&mut self, store: &ParamStore, src: T, start: usize, len: usize) -> T {
        let sv = self.value(store, src);
        assert_eq!(sv.cols, 1);
        let data = sv.data[start..start + len].to_vec();
        self.push(Some(Matrix::col(data)), Op::SliceRows { src, start })
    }

    /// Stack column vectors vertically.
    pub fn concat_rows(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let mut data = Vec::new();
        for &p in parts {
            let pv = self.value(store, p);
            assert_eq!(pv.cols, 1);
            data.extend_from_slice(&pv.data);
        }
        self.push(Some(Matrix::col(data)), Op::ConcatRows(parts.to_vec()))
    }

    /// Stack column vectors horizontally into an (h × n) matrix.
    pub fn concat_cols(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let rows = self.value(store, parts[0]).rows;
        let mut out = Matrix::zeros(rows, parts.len());
        for (j, &p) in parts.iter().enumerate() {
            let pv = self.value(store, p);
            assert_eq!(pv.rows, rows);
            for i in 0..rows {
                *out.at_mut(i, j) = pv.data[i];
            }
        }
        self.push(Some(out), Op::ConcatCols(parts.to_vec()))
    }

    /// Column softmax.
    pub fn softmax(&mut self, store: &ParamStore, a: T) -> T {
        let av = self.value(store, a);
        assert_eq!(av.cols, 1);
        let max = av.data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = av.data.iter().map(|x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let v = Matrix::col(exps.into_iter().map(|e| e / sum).collect());
        self.push(Some(v), Op::Softmax(a))
    }

    /// `gate*a + (1-gate)*b` with a 1×1 gate.
    pub fn blend(&mut self, store: &ParamStore, gate: T, a: T, b: T) -> T {
        let g = self.value(store, gate).data[0];
        let av = self.value(store, a);
        let bv = self.value(store, b);
        assert!(av.same_shape(bv));
        let data = av
            .data
            .iter()
            .zip(&bv.data)
            .map(|(x, y)| g * x + (1.0 - g) * y)
            .collect();
        let v = Matrix::from_vec(av.rows, av.cols, data);
        self.push(Some(v), Op::Blend { gate, a, b })
    }

    /// Negative log likelihood of `target` under a probability column.
    pub fn nll(&mut self, store: &ParamStore, probs: T, target: usize) -> T {
        let p = self.value(store, probs).data[target].max(1e-12);
        let v = Matrix::col(vec![-p.ln()]);
        self.push(Some(v), Op::Nll { probs, target })
    }

    pub fn scale(&mut self, store: &ParamStore, a: T, s: f32) -> T {
        let mut v = self.value(store, a).clone();
        v.scale(s);
        self.push(Some(v), Op::Scale(a, s))
    }

    /// Sum of 1×1 scalars.
    pub fn sum_scalars(&mut self, store: &ParamStore, parts: &[T]) -> T {
        let total: f32 = parts.iter().map(|&p| self.value(store, p).data[0]).sum();
        self.push(Some(Matrix::col(vec![total])), Op::SumList(parts.to_vec()))
    }

    /// Reverse pass from a scalar loss node. Returns parameter gradients
    /// (caller folds them into the store).
    pub fn backward(mut self, store: &ParamStore, loss: T) -> HashMap<usize, Matrix> {
        let n = self.values.len();
        let mut grads: Vec<Option<Matrix>> = vec![None; n];
        {
            let lv = self.value(store, loss);
            assert_eq!((lv.rows, lv.cols), (1, 1), "loss must be scalar");
        }
        grads[loss.0] = Some(Matrix::col(vec![1.0]));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Const => {}
                Op::Param(id) => {
                    self.param_grads
                        .entry(*id)
                        .or_insert_with(|| Matrix::zeros(g.rows, g.cols))
                        .add_assign(&g);
                }
                Op::Embed { param, row } => {
                    let tab = &store.mats[*param];
                    let entry = self
                        .param_grads
                        .entry(*param)
                        .or_insert_with(|| Matrix::zeros(tab.rows, tab.cols));
                    for j in 0..g.rows {
                        *entry.at_mut(*row, j) += g.data[j];
                    }
                }
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.matmul_nt(self.value(store, b));
                    let db = self.value(store, a).matmul_tn(&g);
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::MatmulTN(a, b) => {
                    let (a, b) = (*a, *b);
                    // out = aᵀb; da = b gᵀ; db = a g.
                    let da = self.value(store, b).matmul_nt(&g);
                    let db = self.value(store, a).matmul(&g);
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    acc(&mut grads, a, g.clone());
                    acc(&mut grads, b, g);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.value(store, a).clone();
                    let bv = self.value(store, b).clone();
                    let mut da = g.clone();
                    for (x, y) in da.data.iter_mut().zip(&bv.data) {
                        *x *= y;
                    }
                    let mut db = g;
                    for (x, y) in db.data.iter_mut().zip(&av.data) {
                        *x *= y;
                    }
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let yv = self.values[i].as_ref().unwrap().clone();
                    let mut da = g;
                    for (x, y) in da.data.iter_mut().zip(&yv.data) {
                        *x *= y * (1.0 - y);
                    }
                    acc(&mut grads, a, da);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let yv = self.values[i].as_ref().unwrap().clone();
                    let mut da = g;
                    for (x, y) in da.data.iter_mut().zip(&yv.data) {
                        *x *= 1.0 - y * y;
                    }
                    acc(&mut grads, a, da);
                }
                Op::SliceRows { src, start } => {
                    let (src, start) = (*src, *start);
                    let sv = self.value(store, src);
                    let mut ds = Matrix::zeros(sv.rows, 1);
                    for j in 0..g.rows {
                        ds.data[start + j] = g.data[j];
                    }
                    acc(&mut grads, src, ds);
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let len = self.value(store, p).rows;
                        let dp = Matrix::col(g.data[off..off + len].to_vec());
                        off += len;
                        acc(&mut grads, p, dp);
                    }
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    for (j, p) in parts.into_iter().enumerate() {
                        let rows = g.rows;
                        let dp =
                            Matrix::col((0..rows).map(|r| g.at(r, j)).collect());
                        acc(&mut grads, p, dp);
                    }
                }
                Op::Softmax(a) => {
                    let a = *a;
                    let y = self.values[i].as_ref().unwrap().clone();
                    let dot: f32 = g.data.iter().zip(&y.data).map(|(x, s)| x * s).sum();
                    let da = Matrix::col(
                        y.data
                            .iter()
                            .zip(&g.data)
                            .map(|(s, x)| s * (x - dot))
                            .collect(),
                    );
                    acc(&mut grads, a, da);
                }
                Op::Blend { gate, a, b } => {
                    let (gate, a, b) = (*gate, *a, *b);
                    let gv = self.value(store, gate).data[0];
                    let av = self.value(store, a).clone();
                    let bv = self.value(store, b).clone();
                    let dgate: f32 = g
                        .data
                        .iter()
                        .zip(av.data.iter().zip(&bv.data))
                        .map(|(x, (ai, bi))| x * (ai - bi))
                        .sum();
                    let mut da = g.clone();
                    da.scale(gv);
                    let mut db = g;
                    db.scale(1.0 - gv);
                    acc(&mut grads, gate, Matrix::col(vec![dgate]));
                    acc(&mut grads, a, da);
                    acc(&mut grads, b, db);
                }
                Op::Nll { probs, target } => {
                    let (probs, target) = (*probs, *target);
                    let pv = self.value(store, probs);
                    let mut dp = Matrix::zeros(pv.rows, 1);
                    dp.data[target] = -g.data[0] / pv.data[target].max(1e-12);
                    acc(&mut grads, probs, dp);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = g;
                    da.scale(s);
                    acc(&mut grads, a, da);
                }
                Op::SumList(parts) => {
                    let parts = parts.clone();
                    for p in parts {
                        acc(&mut grads, p, g.clone());
                    }
                }
            }
        }
        self.param_grads
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

fn acc(grads: &mut [Option<Matrix>], t: T, g: Matrix) {
    match &mut grads[t.0] {
        Some(existing) => existing.add_assign(&g),
        slot => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerical gradient check: perturb every scalar of every param and
    /// compare the finite difference against the analytic gradient.
    fn grad_check<F>(store: &mut ParamStore, forward: F, tol: f32)
    where
        F: Fn(&mut Tape, &ParamStore) -> T,
    {
        // Analytic.
        store.zero_grads();
        let mut tape = Tape::new();
        let loss = forward(&mut tape, store);
        let grads = tape.backward(store, loss);
        store.accumulate(grads);
        let analytic: Vec<Matrix> = store.grads.clone();

        let eps = 1e-3f32;
        for pi in 0..store.mats.len() {
            for j in 0..store.mats[pi].data.len() {
                let orig = store.mats[pi].data[j];
                store.mats[pi].data[j] = orig + eps;
                let mut t1 = Tape::new();
                let l1 = forward(&mut t1, store);
                let f1 = t1.value(store, l1).data[0];
                store.mats[pi].data[j] = orig - eps;
                let mut t2 = Tape::new();
                let l2 = forward(&mut t2, store);
                let f2 = t2.value(store, l2).data[0];
                store.mats[pi].data[j] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                let a = analytic[pi].data[j];
                assert!(
                    (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                    "param {pi}[{j}]: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn grad_check_linear_softmax_nll() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.add(Matrix::xavier(4, 3, &mut rng));
        let b = store.add(Matrix::xavier(4, 1, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let x = tape.constant(Matrix::col(vec![0.5, -0.3, 0.8]));
                let wp = tape.param(w);
                let bp = tape.param(b);
                let z0 = tape.matmul(store, wp, x);
                let z = tape.add(store, z0, bp);
                let p = tape.softmax(store, z);
                tape.nll(store, p, 2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_check_lstm_like_cell() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = 3;
        let mut store = ParamStore::new();
        let wih = store.add(Matrix::xavier(4 * h, 2, &mut rng));
        let whh = store.add(Matrix::xavier(4 * h, h, &mut rng));
        let bias = store.add(Matrix::zeros(4 * h, 1));
        let wout = store.add(Matrix::xavier(5, h, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let x = tape.constant(Matrix::col(vec![0.2, -0.7]));
                let h0 = tape.constant(Matrix::col(vec![0.1; 3]));
                let c0 = tape.constant(Matrix::col(vec![0.0; 3]));
                let (wih, whh, bias, wout) = (
                    tape.param(wih),
                    tape.param(whh),
                    tape.param(bias),
                    tape.param(wout),
                );
                let zx = tape.matmul(store, wih, x);
                let zh = tape.matmul(store, whh, h0);
                let z0 = tape.add(store, zx, zh);
                let z = tape.add(store, z0, bias);
                let i = tape.slice_rows(store, z, 0, 3);
                let f = tape.slice_rows(store, z, 3, 3);
                let g = tape.slice_rows(store, z, 6, 3);
                let o = tape.slice_rows(store, z, 9, 3);
                let i = tape.sigmoid(store, i);
                let f = tape.sigmoid(store, f);
                let g = tape.tanh(store, g);
                let o = tape.sigmoid(store, o);
                let fc = tape.mul(store, f, c0);
                let ig = tape.mul(store, i, g);
                let c = tape.add(store, fc, ig);
                let tc = tape.tanh(store, c);
                let hh = tape.mul(store, o, tc);
                let logits = tape.matmul(store, wout, hh);
                let p = tape.softmax(store, logits);
                tape.nll(store, p, 1)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_check_attention_and_blend() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let we = store.add(Matrix::xavier(3, 2, &mut rng));
        let wg = store.add(Matrix::xavier(1, 3, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let wep = tape.param(we);
                let x1 = tape.constant(Matrix::col(vec![0.3, 0.9]));
                let x2 = tape.constant(Matrix::col(vec![-0.5, 0.1]));
                let e1 = tape.matmul(store, wep, x1);
                let e2 = tape.matmul(store, wep, x2);
                let enc = tape.concat_cols(store, &[e1, e2]); // 3×2
                let q = tape.constant(Matrix::col(vec![0.4, -0.2, 0.6]));
                let scores = tape.matmul_tn(store, enc, q); // 2×1
                let attn = tape.softmax(store, scores);
                let ctx = tape.matmul(store, enc, attn); // 3×1
                let wgp = tape.param(wg);
                let gl = tape.matmul(store, wgp, ctx); // 1×1
                let gate = tape.sigmoid(store, gl);
                // Blend two distributions derived from ctx and attn.
                let vocab = tape.softmax(store, ctx); // 3×1 pseudo-vocab dist
                let m = tape.constant(Matrix::from_vec(
                    3,
                    2,
                    vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
                ));
                let copy = tape.matmul(store, m, attn); // 3×1
                let mixed = tape.blend(store, gate, vocab, copy);
                tape.nll(store, mixed, 0)
            },
            3e-2,
        );
    }

    #[test]
    fn grad_check_embed_and_concat_rows() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let emb = store.add(Matrix::xavier(5, 3, &mut rng));
        let w = store.add(Matrix::xavier(4, 6, &mut rng));
        grad_check(
            &mut store,
            |tape, store| {
                let e1 = tape.embed(store, emb, 2);
                let e2 = tape.embed(store, emb, 4);
                let x = tape.concat_rows(store, &[e1, e2]);
                let wp = tape.param(w);
                let z = tape.matmul(store, wp, x);
                let p = tape.softmax(store, z);
                let l1 = tape.nll(store, p, 3);
                let l2 = tape.nll(store, p, 0);
                let s = tape.sum_scalars(store, &[l1, l2]);
                tape.scale(store, s, 0.5)
            },
            2e-2,
        );
    }

    #[test]
    fn adam_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.add(Matrix::xavier(3, 2, &mut rng));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::col(vec![1.0, -1.0]));
            let wp = tape.param(w);
            let z = tape.matmul(&store, wp, x);
            let p = tape.softmax(&store, z);
            let loss = tape.nll(&store, p, 1);
            last = tape.value(&store, loss).data[0];
            first.get_or_insert(last);
            let grads = tape.backward(&store, loss);
            store.accumulate(grads);
            store.clip_global_norm(2.0);
            store.adam_step(0.05);
        }
        assert!(last < first.unwrap() * 0.2, "{} → {last}", first.unwrap());
    }

    #[test]
    fn clip_global_norm_scales() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::zeros(2, 2));
        store.grads[w.0] = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        store.clip_global_norm(1.0);
        let n: f32 = store.grads[w.0].norm();
        assert!((n - 1.0).abs() < 1e-5);
        // Below the max: untouched.
        store.grads[w.0] = Matrix::from_vec(2, 2, vec![0.1, 0.0, 0.0, 0.1]);
        store.clip_global_norm(1.0);
        assert!((store.grads[w.0].data[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn n_scalars_counts() {
        let mut store = ParamStore::new();
        store.add(Matrix::zeros(3, 4));
        store.add(Matrix::zeros(2, 1));
        assert_eq!(store.n_scalars(), 14);
    }
}
