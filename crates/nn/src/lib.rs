//! # nv-nn — from-scratch neural substrate
//!
//! Everything the seq2vis translator needs, with no ML framework:
//!
//! * [`matrix`] — dense f32 matrices;
//! * [`autograd`] — a tape-based reverse-mode autograd whose op set is
//!   exactly the seq2seq working set (LSTM gates, attention, softmax,
//!   pointer-generator blend), with numerically-checked gradients;
//! * [`seq2seq`] — bi-LSTM encoder / LSTM decoder with three variants
//!   (basic, +attention, +copying), Adam, clipping, teacher forcing,
//!   early stopping and greedy decoding.

pub mod autograd;
pub mod matrix;
pub mod seq2seq;

pub use autograd::{ParamId, ParamStore, Tape};
pub use matrix::Matrix;
pub use seq2seq::{fit, ModelVariant, Sample, Seq2Seq, Seq2SeqConfig, TrainReport};
