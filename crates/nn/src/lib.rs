//! # nv-nn — from-scratch neural substrate
//!
//! Everything the seq2vis translator needs, with no ML framework:
//!
//! * [`matrix`] — dense f32 matrices with cache-blocked matmul kernels and
//!   a bit-identical naive [`matrix::reference`] oracle, all sharing one
//!   canonical fixed-order reduction;
//! * [`autograd`] — a tape-based reverse-mode autograd whose op set is
//!   exactly the seq2seq working set (fused LSTM gate step, attention,
//!   softmax, pointer-copy scatter), with numerically-checked gradients, a
//!   buffer-recycling arena, and a [`autograd::KernelPolicy`] selecting the
//!   fast fused path or the unfused naive-oracle twin (bit-identical);
//! * [`seq2seq`] — bi-LSTM encoder / LSTM decoder with three variants
//!   (basic, +attention, +copying), Adam, clipping, teacher forcing,
//!   early stopping and greedy decoding; batch members fan out over
//!   `nv-core::par` and gradients merge through a fixed-order tree sum, so
//!   training is bit-identical across thread counts.

pub mod autograd;
pub mod matrix;
pub mod seq2seq;

pub use autograd::{GradSet, KernelPolicy, ParamId, ParamStore, Tape};
pub use matrix::Matrix;
pub use seq2seq::{fit, ModelVariant, Sample, Seq2Seq, Seq2SeqConfig, TrainReport};
