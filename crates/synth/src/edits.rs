//! Step 1 — VIS synthesis via tree edits (§2.3).
//!
//! From one SQL tree, candidate VIS trees are produced by **deletions**
//! (projection-attribute subsets of size 1–3; dropping the Order subtree)
//! followed by **insertions** (grouping / binning, aggregate predicates, the
//! `Visualize` subtree, and axis ordering), constrained by the Table-1
//! chart-validity rules:
//!
//! | variables | operations | charts |
//! |---|---|---|
//! | C | grouping + count | bar, pie |
//! | T | grouping/binning + count | bar, pie, line |
//! | C+Q | grouping/binning/none + agg | bar, pie |
//! | T+Q | grouping/binning/none + agg | bar, pie, line |
//! | Q+Q | — | scatter |
//! | T+Q+C | grouping + binning + agg | grouping line, stacked bar |
//! | C+Q+C | grouping(s) + agg | stacked bar |
//! | Q+Q+C | grouping(s) + agg | grouping scatter |
//!
//! (Plus the bar-as-histogram case: a single Q attribute is numeric-binned
//! and counted.) Filter, Superlative and pre-existing grouping subtrees are
//! carried through unchanged, as the paper prescribes.

use nv_ast::*;
use nv_data::{ColumnType, Database};
use std::collections::HashSet;

/// A candidate VIS tree with its edit record Δ.
#[derive(Debug, Clone, PartialEq)]
pub struct VisCandidate {
    pub tree: VisQuery,
    pub edit: TreeEdit,
}

/// The C/T/Q class of a (possibly aggregated) attribute.
pub fn attr_ctype(db: &Database, attr: &Attr) -> ColumnType {
    match attr.agg {
        AggFunc::Count | AggFunc::Sum | AggFunc::Avg => ColumnType::Quantitative,
        AggFunc::Max | AggFunc::Min | AggFunc::None => db
            .column_type(&attr.col.table, &attr.col.column)
            .unwrap_or(ColumnType::Categorical),
    }
}

/// Generate all candidate VIS trees from one SQL tree.
pub fn generate_candidates(db: &Database, sql: &VisQuery) -> Vec<VisCandidate> {
    let mut out: Vec<VisCandidate> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();

    let attrs = &sql.query.primary().select;
    let n = attrs.len();

    // Attribute-index subsets of size 1–3 (kept in select order).
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        subsets.push(vec![i]);
    }
    for i in 0..n {
        for j in i + 1..n {
            subsets.push(vec![i, j]);
        }
    }
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                subsets.push(vec![i, j, k]);
            }
        }
    }

    // Larger subsets first: an identical tree reachable with fewer deletions
    // dedups onto the cheaper edit record (less manual NL work, §3.1).
    subsets.reverse();
    for subset in &subsets {
        // The Order subtree may be kept or deleted (it is meaningless for
        // some chart types, e.g. pies — paper §2.3).
        let order_options: &[bool] = if sql.query.primary().order.is_some() {
            &[true, false]
        } else {
            &[true]
        };
        for &keep_order in order_options {
            for cand in candidates_for_subset(db, sql, subset, keep_order) {
                if seen.insert(cand.tree.to_vql()) {
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// Build the intermediate tree for one subset and run insertions.
fn candidates_for_subset(
    db: &Database,
    sql: &VisQuery,
    subset: &[usize],
    keep_order: bool,
) -> Vec<VisCandidate> {
    let primary = sql.query.primary();
    let mut edit = TreeEdit::default();
    for (i, a) in primary.select.iter().enumerate() {
        if !subset.contains(&i) {
            edit.push(EditOp::DeleteAttr(a.clone()));
        }
    }
    let mut inter = primary.clone();
    inter.select = subset.iter().map(|&i| primary.select[i].clone()).collect();
    if !keep_order {
        if let Some(o) = inter.order.take() {
            edit.push(EditOp::DeleteOrder(o));
        }
    }
    // Drop an order that refers to a deleted attribute.
    let order_dangles = inter.order.as_ref().is_some_and(|o| {
        !(inter.select.iter().any(|a| a.col == o.attr.col) || o.attr.is_aggregated())
    });
    if order_dangles {
        if let Some(o) = inter.order.take() {
            edit.push(EditOp::DeleteOrder(o));
        }
    }

    // For compound (set-op) queries, only single-categorical subsets are
    // synthesized (both sides must stay arity-aligned); the right body gets
    // the mirrored transformation by position.
    let is_compound = sql.query.set_op().is_some();
    if is_compound && subset.len() != 1 {
        return Vec::new();
    }

    let types: Vec<ColumnType> = inter.select.iter().map(|a| attr_ctype(db, a)).collect();
    let aggregated: Vec<bool> = inter.select.iter().map(Attr::is_aggregated).collect();

    let mut plans: Vec<Plan> = Vec::new();
    match (types.as_slice(), aggregated.as_slice()) {
        // One variable.
        ([ColumnType::Categorical], [false]) => {
            plans.push(Plan::count_by_group(0, &[ChartType::Bar, ChartType::Pie]));
        }
        ([ColumnType::Temporal], [false]) => {
            plans.push(Plan::count_by_group(0, &[ChartType::Bar, ChartType::Pie, ChartType::Line]));
            for unit in [BinUnit::Year, BinUnit::Month] {
                plans.push(Plan::count_by_bin(0, unit, &[ChartType::Bar, ChartType::Pie, ChartType::Line]));
            }
        }
        // Histogram: a single quantitative attribute is numeric-binned.
        ([ColumnType::Quantitative], [false]) => {
            plans.push(Plan::count_by_bin(
                0,
                BinUnit::Numeric { n_bins: BinUnit::DEFAULT_NUMERIC_BINS },
                &[ChartType::Bar],
            ));
        }
        // Two variables.
        ([ColumnType::Categorical, ColumnType::Quantitative], _)
        | ([ColumnType::Quantitative, ColumnType::Categorical], _) => {
            let (x, y) = if types[0] == ColumnType::Categorical { (0, 1) } else { (1, 0) };
            plans.extend(Plan::xy_agg(x, y, aggregated[y], &[ChartType::Bar, ChartType::Pie]));
        }
        ([ColumnType::Temporal, ColumnType::Quantitative], _)
        | ([ColumnType::Quantitative, ColumnType::Temporal], _) => {
            let (x, y) = if types[0] == ColumnType::Temporal { (0, 1) } else { (1, 0) };
            let charts = [ChartType::Bar, ChartType::Pie, ChartType::Line];
            plans.extend(Plan::xy_agg(x, y, aggregated[y], &charts));
            for unit in [BinUnit::Year, BinUnit::Month] {
                plans.extend(Plan::xy_bin_agg(x, y, unit, aggregated[y], &charts));
            }
        }
        ([ColumnType::Quantitative, ColumnType::Quantitative], [false, false]) => {
            plans.push(Plan::raw(vec![0, 1], ChartType::Scatter));
        }
        // Three variables.
        ([a, b, c], _) if three_var_tqc(*a, *b, *c) => {
            // The guard proved one of each class exists; degrade to "no
            // plans" rather than panic if that invariant ever slips.
            let roles = (
                types.iter().position(|t| *t == ColumnType::Temporal),
                types.iter().position(|t| *t == ColumnType::Quantitative),
            );
            if let (Some(t), Some(q)) = roles {
                if let Some(c_ix) = (0..3).find(|i| *i != t && *i != q) {
                    for unit in [BinUnit::Year, BinUnit::Month] {
                        plans.extend(Plan::three_var(
                            t,
                            q,
                            c_ix,
                            Some(unit),
                            aggregated[q],
                            &[ChartType::GroupingLine, ChartType::StackedBar],
                        ));
                    }
                }
            }
        }
        ([ColumnType::Categorical, _, _], _) | ([_, _, ColumnType::Categorical], _) | ([_, ColumnType::Categorical, _], _)
            if types.len() == 3
                && types.iter().filter(|t| **t == ColumnType::Categorical).count() == 2
                && types.iter().filter(|t| **t == ColumnType::Quantitative).count() == 1 =>
        {
            // C + Q + C → stacked bar.
            if let Some(q) = types.iter().position(|t| *t == ColumnType::Quantitative) {
                let cs: Vec<usize> = (0..3).filter(|i| *i != q).collect();
                if let [c0, c1] = cs.as_slice() {
                    plans.extend(Plan::three_var(
                        *c0,
                        q,
                        *c1,
                        None,
                        aggregated[q],
                        &[ChartType::StackedBar],
                    ));
                }
            }
        }
        ([_, _, _], _)
            if types.iter().filter(|t| **t == ColumnType::Quantitative).count() == 2
                && types.iter().filter(|t| **t == ColumnType::Categorical).count() == 1
                && !aggregated.iter().any(|a| *a) =>
        {
            // Q + Q + C → grouping scatter (raw points, C as series).
            if let Some(c_ix) = types.iter().position(|t| *t == ColumnType::Categorical) {
                let qs: Vec<usize> = (0..3).filter(|i| *i != c_ix).collect();
                if let [q0, q1] = qs.as_slice() {
                    plans.push(Plan::raw(vec![*q0, *q1, c_ix], ChartType::GroupingScatter));
                }
            }
        }
        _ => {}
    }

    let mut out = Vec::new();
    for plan in plans {
        out.extend(plan.realize(db, sql, &inter, &edit));
    }
    out
}

fn three_var_tqc(a: ColumnType, b: ColumnType, c: ColumnType) -> bool {
    let types = [a, b, c];
    types.iter().filter(|t| **t == ColumnType::Temporal).count() == 1
        && types.iter().filter(|t| **t == ColumnType::Quantitative).count() == 1
        && types.iter().filter(|t| **t == ColumnType::Categorical).count() == 1
}

/// A chart-construction plan over the intermediate tree's select positions.
#[derive(Debug, Clone)]
struct Plan {
    /// Select positions in channel order (x, [y], [series]).
    channels: Vec<usize>,
    /// Insert `count(*)` as the y channel.
    add_count: bool,
    /// Wrap the y channel with these aggregates (one candidate per entry);
    /// empty = leave as-is.
    y_aggs: Vec<AggFunc>,
    /// Group by the x (and series) channels.
    group_x: bool,
    /// Bin the x channel.
    bin: Option<BinUnit>,
    charts: Vec<ChartType>,
    /// Also emit a variant ordered by y descending (bar-family only).
    orderable: bool,
}

impl Plan {
    fn count_by_group(x: usize, charts: &[ChartType]) -> Plan {
        Plan {
            channels: vec![x],
            add_count: true,
            y_aggs: vec![],
            group_x: true,
            bin: None,
            charts: charts.to_vec(),
            orderable: true,
        }
    }

    fn count_by_bin(x: usize, unit: BinUnit, charts: &[ChartType]) -> Plan {
        Plan {
            channels: vec![x],
            add_count: true,
            y_aggs: vec![],
            group_x: false,
            bin: Some(unit),
            charts: charts.to_vec(),
            orderable: false,
        }
    }

    fn xy_agg(x: usize, y: usize, y_already_agg: bool, charts: &[ChartType]) -> Vec<Plan> {
        let mut plans = Vec::new();
        plans.push(Plan {
            channels: vec![x, y],
            add_count: false,
            y_aggs: if y_already_agg { vec![] } else { vec![AggFunc::Sum, AggFunc::Avg] },
            group_x: true,
            bin: None,
            charts: charts.to_vec(),
            orderable: true,
        });
        if !y_already_agg {
            // The "none" row of Table 1: raw pairs, no grouping.
            plans.push(Plan {
                channels: vec![x, y],
                add_count: false,
                y_aggs: vec![],
                group_x: false,
                bin: None,
                charts: charts.to_vec(),
                orderable: false,
            });
        }
        plans
    }

    fn xy_bin_agg(
        x: usize,
        y: usize,
        unit: BinUnit,
        y_already_agg: bool,
        charts: &[ChartType],
    ) -> Vec<Plan> {
        vec![Plan {
            channels: vec![x, y],
            add_count: false,
            y_aggs: if y_already_agg { vec![] } else { vec![AggFunc::Sum, AggFunc::Avg] },
            group_x: false,
            bin: Some(unit),
            charts: charts.to_vec(),
            orderable: false,
        }]
    }

    fn three_var(
        x: usize,
        y: usize,
        series: usize,
        bin: Option<BinUnit>,
        y_already_agg: bool,
        charts: &[ChartType],
    ) -> Vec<Plan> {
        vec![Plan {
            channels: vec![x, y, series],
            add_count: false,
            y_aggs: if y_already_agg { vec![] } else { vec![AggFunc::Sum] },
            group_x: bin.is_none(),
            bin,
            charts: charts.to_vec(),
            orderable: false,
        }]
    }

    fn raw(channels: Vec<usize>, chart: ChartType) -> Plan {
        Plan {
            channels,
            add_count: false,
            y_aggs: vec![],
            group_x: false,
            bin: None,
            charts: vec![chart],
            orderable: false,
        }
    }

    /// Materialize the plan into concrete VIS trees.
    fn realize(
        &self,
        _db: &Database,
        sql: &VisQuery,
        inter: &QueryBody,
        base_edit: &TreeEdit,
    ) -> Vec<VisCandidate> {
        let agg_options: Vec<Option<AggFunc>> = if self.y_aggs.is_empty() {
            vec![None]
        } else {
            self.y_aggs.iter().copied().map(Some).collect()
        };

        let mut out = Vec::new();
        for agg in &agg_options {
            for &chart in &self.charts {
                let mut edit = base_edit.clone();
                let mut body = inter.clone();

                // Channel-ordered projection.
                let mut select: Vec<Attr> =
                    self.channels.iter().map(|&i| inter.select[i].clone()).collect();

                // y channel: count(*) insertion or aggregate wrap.
                if self.add_count {
                    let table = body.from[0].clone();
                    let count = Attr::agg(AggFunc::Count, table, "*");
                    edit.push(EditOp::InsertAgg {
                        attr: count.col.clone(),
                        agg: AggFunc::Count,
                    });
                    select.push(count);
                } else if let Some(agg) = agg {
                    let y = &mut select[1];
                    edit.push(EditOp::InsertAgg { attr: y.col.clone(), agg: *agg });
                    y.agg = *agg;
                }

                // Grouping / binning insertions on the x (and series) cols.
                let x_col = select[0].col.clone();
                let mut group = body.group.take().unwrap_or_default();
                if let Some(unit) = self.bin {
                    if group.bin.as_ref().map(|b| (&b.col, b.unit)) != Some((&x_col, unit)) {
                        let spec = BinSpec { col: x_col.clone(), unit };
                        edit.push(EditOp::InsertBinning(spec.clone()));
                        group.bin = Some(spec);
                    }
                    // A bin replaces grouping on the same column.
                    group.group_by.retain(|c| *c != x_col);
                } else if self.group_x && !select[0].is_aggregated()
                    && !group.group_by.contains(&x_col) {
                        edit.push(EditOp::InsertGrouping(x_col.clone()));
                        group.group_by.push(x_col.clone());
                    }
                if chart.is_grouped() {
                    if let Some(series) = select.get(2).cloned() {
                        if chart != ChartType::GroupingScatter
                            && !series.is_aggregated()
                            && !group.group_by.contains(&series.col)
                        {
                            edit.push(EditOp::InsertGrouping(series.col.clone()));
                            group.group_by.push(series.col.clone());
                        }
                    }
                }
                // Stale grouping keys (on deleted attributes) would change
                // the aggregation grain invisibly; keep only keys that are
                // projected or binned.
                group
                    .group_by
                    .retain(|c| select.iter().any(|a| a.col == *c));
                body.group = (!group.is_empty()).then_some(group);
                body.select = select;

                // Order must reference a surviving channel; otherwise it was
                // deleted above. Pie/scatter cannot carry order.
                if matches!(chart, ChartType::Pie | ChartType::Scatter | ChartType::GroupingScatter)
                {
                    if let Some(o) = body.order.take() {
                        edit.push(EditOp::DeleteOrder(o));
                    }
                }

                let mut vedit = edit.clone();
                vedit.push(EditOp::InsertVisualize(chart));
                let tree = rebuild(sql, body.clone(), chart);
                out.push(VisCandidate { tree, edit: vedit.clone() });

                // Ordered variant: bar-family sorted by y descending.
                if self.orderable
                    && matches!(chart, ChartType::Bar)
                    && body.order.is_none()
                    && body.superlative.is_none()
                {
                    let y_attr = body.select[1].clone();
                    let spec = OrderSpec { attr: y_attr, dir: OrderDir::Desc };
                    let mut obody = body.clone();
                    obody.order = Some(spec.clone());
                    let mut oedit = vedit;
                    oedit.push(EditOp::InsertOrder(spec));
                    out.push(VisCandidate { tree: rebuild(sql, obody, chart), edit: oedit });
                }
            }
        }
        out
    }
}

/// Reassemble the full query around the edited primary body, mirroring
/// select-level edits onto the right side of a set operation.
fn rebuild(sql: &VisQuery, primary: QueryBody, chart: ChartType) -> VisQuery {
    let query = match &sql.query {
        SetQuery::Simple(_) => SetQuery::Simple(Box::new(primary)),
        SetQuery::Compound { op, right, .. } => {
            // Mirror: keep the right body but align its projection with the
            // left (same positions; counts/groupings mirrored by column
            // position where possible).
            let mut r = (**right).clone();
            let mirrored: Vec<Attr> = primary
                .select
                .iter()
                .map(|a| {
                    if a.agg == AggFunc::Count && a.col.is_star() {
                        Attr::agg(AggFunc::Count, r.from[0].clone(), "*")
                    } else {
                        // Same-named column on the right table if present;
                        // otherwise reuse the left attr (tables often match).
                        a.clone()
                    }
                })
                .collect();
            r.select = mirrored;
            if let Some(g) = &primary.group {
                let mut rg = GroupSpec::default();
                for c in &g.group_by {
                    rg.group_by.push(c.clone());
                }
                rg.bin = g.bin.clone();
                r.group = Some(rg);
            } else {
                r.group = None;
            }
            SetQuery::Compound {
                op: *op,
                left: Box::new(primary),
                right: Box::new(r),
            }
        }
    };
    VisQuery::vis(chart, query)
}

/// The query with every ORDER BY removed, in all bodies of a compound.
/// Ordering never changes *which* rows a query returns — only their
/// sequence — so this edit preserves the result multiset exactly. The
/// differential-oracle law layer uses it to check that the executor agrees,
/// and NL edit generation uses the same invariant when pruning redundant
/// sort phrases.
pub fn strip_order(q: &VisQuery) -> VisQuery {
    let mut out = q.clone();
    for body in out.query.bodies_mut() {
        body.order = None;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, Value};

    #[test]
    fn strip_order_removes_every_order_clause() {
        let q = nv_ast::tokens::parse_vql_str(
            "select t.a from t order by t.a desc union select u.b from u order by u.b asc",
        )
        .unwrap();
        let stripped = strip_order(&q);
        assert!(stripped.query.bodies().iter().all(|b| b.order.is_none()));
        // Nothing else moved.
        assert_eq!(stripped.query.bodies()[0].select, q.query.bodies()[0].select);
        assert_eq!(stripped.chart, q.chart);
    }

    fn db() -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "emp",
            &[
                ("name", ColumnType::Categorical),
                ("dept", ColumnType::Categorical),
                ("salary", ColumnType::Quantitative),
                ("age", ColumnType::Quantitative),
                ("hired", ColumnType::Temporal),
            ],
            vec![
                vec![
                    Value::text("a"),
                    Value::text("x"),
                    Value::Int(100),
                    Value::Int(30),
                    Value::text("2020-01-01"),
                ],
                vec![
                    Value::text("b"),
                    Value::text("y"),
                    Value::Int(200),
                    Value::Int(40),
                    Value::text("2021-02-01"),
                ],
            ],
        ));
        db
    }

    fn sql(vql: &str) -> VisQuery {
        nv_ast::tokens::parse_vql_str(vql).unwrap()
    }

    fn charts_of(cands: &[VisCandidate]) -> HashSet<ChartType> {
        cands.iter().filter_map(|c| c.tree.chart).collect()
    }

    #[test]
    fn single_categorical_gives_bar_and_pie() {
        let cands = generate_candidates(&db(), &sql("select emp.dept from emp"));
        let charts = charts_of(&cands);
        assert!(charts.contains(&ChartType::Bar));
        assert!(charts.contains(&ChartType::Pie));
        // Each candidate groups by dept and counts.
        for c in &cands {
            let b = c.tree.query.primary();
            assert_eq!(b.select.len(), 2, "{}", c.tree.to_vql());
            assert!(b.select[1].agg == AggFunc::Count);
            let has_group_or_bin = b.group.is_some();
            assert!(has_group_or_bin);
        }
    }

    #[test]
    fn temporal_also_gives_line_and_bins() {
        let cands = generate_candidates(&db(), &sql("select emp.hired from emp"));
        let charts = charts_of(&cands);
        assert!(charts.contains(&ChartType::Line));
        assert!(cands.iter().any(|c| c.tree.query.primary().group.as_ref().is_some_and(
            |g| g.bin.as_ref().is_some_and(|b| b.unit == BinUnit::Year)
        )));
        assert!(cands.iter().any(|c| c.tree.query.primary().group.as_ref().is_some_and(
            |g| g.bin.as_ref().is_some_and(|b| b.unit == BinUnit::Month)
        )));
    }

    #[test]
    fn cq_pairs_get_aggregates_and_ordering_variants() {
        let cands = generate_candidates(&db(), &sql("select emp.dept , emp.salary from emp"));
        // Sum and Avg variants exist.
        let has_sum = cands.iter().any(|c| c.tree.query.primary().select[1].agg == AggFunc::Sum);
        let has_avg = cands.iter().any(|c| c.tree.query.primary().select[1].agg == AggFunc::Avg);
        assert!(has_sum && has_avg);
        // Ordered bar variant exists.
        assert!(cands
            .iter()
            .any(|c| c.tree.chart == Some(ChartType::Bar) && c.tree.query.primary().order.is_some()));
        // Subset deletions also yield single-attr charts (dept alone, salary alone).
        assert!(cands
            .iter()
            .any(|c| c.edit.deletion_count() == 1));
    }

    #[test]
    fn qq_gives_scatter_only() {
        let cands = generate_candidates(&db(), &sql("select emp.salary , emp.age from emp"));
        let pair_charts: HashSet<ChartType> = cands
            .iter()
            .filter(|c| c.tree.query.primary().select.len() == 2
                && c.tree.query.primary().select.iter().all(|a| a.agg == AggFunc::None))
            .filter_map(|c| c.tree.chart)
            .collect();
        assert!(pair_charts.contains(&ChartType::Scatter));
        assert!(!pair_charts.contains(&ChartType::Line));
    }

    #[test]
    fn three_var_tqc_gives_grouping_charts() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.hired , emp.salary , emp.dept from emp"),
        );
        let charts = charts_of(&cands);
        assert!(charts.contains(&ChartType::GroupingLine), "{charts:?}");
        assert!(charts.contains(&ChartType::StackedBar));
        // The grouping-line candidates bin the temporal x and group the C.
        let gl = cands
            .iter()
            .find(|c| c.tree.chart == Some(ChartType::GroupingLine))
            .unwrap();
        let g = gl.tree.query.primary().group.as_ref().unwrap();
        assert!(g.bin.is_some());
        assert!(g.group_by.iter().any(|c| c.column == "dept"));
    }

    #[test]
    fn cqc_gives_stacked_bar() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.dept , emp.salary , emp.name from emp"),
        );
        assert!(charts_of(&cands).contains(&ChartType::StackedBar));
    }

    #[test]
    fn qqc_gives_grouping_scatter() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.salary , emp.age , emp.dept from emp"),
        );
        assert!(charts_of(&cands).contains(&ChartType::GroupingScatter));
    }

    #[test]
    fn filter_and_superlative_carry_through() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.dept from emp where emp.age > 20 top 5 by emp.salary"),
        );
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.tree.query.primary().filter.is_some(), "{}", c.tree.to_vql());
            assert!(c.tree.query.primary().superlative.is_some());
        }
    }

    #[test]
    fn order_deletion_variant_recorded() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.dept , emp.salary from emp order by emp.salary desc"),
        );
        assert!(cands.iter().any(|c| c
            .edit
            .deletions()
            .any(|op| matches!(op, EditOp::DeleteOrder(_)))));
    }

    #[test]
    fn deletions_recorded_for_subsets() {
        let cands = generate_candidates(
            &db(),
            &sql("select emp.dept , emp.salary , emp.age , emp.name from emp"),
        );
        // Some candidate deleted at least two attributes (subset of size ≤ 2).
        assert!(cands.iter().any(|c| c.edit.deletion_count() >= 2));
        // All candidates have a Visualize… chart set.
        assert!(cands.iter().all(|c| c.tree.is_vis()));
    }

    #[test]
    fn candidates_are_unique_and_executable() {
        let d = db();
        let cands = generate_candidates(
            &d,
            &sql("select emp.dept , emp.salary , emp.hired from emp where emp.age > 20"),
        );
        let mut seen = HashSet::new();
        for c in &cands {
            assert!(seen.insert(c.tree.to_vql()), "dup: {}", c.tree.to_vql());
            nv_data::execute(&d, &c.tree)
                .unwrap_or_else(|e| panic!("{}: {e}", c.tree.to_vql()));
        }
        assert!(cands.len() >= 10, "only {} candidates", cands.len());
    }

    #[test]
    fn compound_queries_stay_arity_aligned() {
        let d = db();
        let q = sql(
            "select emp.dept from emp where emp.age > 25 \
             union select emp.dept from emp where emp.salary > 150",
        );
        let cands = generate_candidates(&d, &q);
        assert!(!cands.is_empty());
        for c in &cands {
            let rs = nv_data::execute(&d, &c.tree);
            assert!(rs.is_ok(), "{}: {:?}", c.tree.to_vql(), rs.err());
        }
    }

    #[test]
    fn single_quantitative_becomes_histogram() {
        let cands = generate_candidates(&db(), &sql("select emp.salary from emp"));
        let hist = cands
            .iter()
            .find(|c| c.tree.chart == Some(ChartType::Bar))
            .expect("histogram candidate");
        let g = hist.tree.query.primary().group.as_ref().unwrap();
        assert!(matches!(g.bin.as_ref().unwrap().unit, BinUnit::Numeric { .. }));
    }
}
