//! NL smoothing — the back-translation substitute.
//!
//! The paper smooths rule-inserted NL with English→French→English
//! back-translation. No MT model can run in this offline reproduction, so
//! (DESIGN.md, Substitution 3) a deterministic paraphrase smoother plays the
//! same role: seeded synonym substitution, light clause reordering and
//! punctuation normalization. Its effect is measured the same way the paper
//! measures back-translation's — via pairwise BLEU diversity (Table 3).

use rand::rngs::StdRng;
use rand::Rng;

/// Synonym classes used for substitution. Each row is an equivalence class;
/// any member may be rewritten to any other.
const SYNONYMS: &[&[&str]] = &[
    &["show", "display", "present", "give me"],
    &["draw", "plot", "sketch"],
    &["chart", "graph"],
    &["for each", "for every", "per"],
    &["grouped by", "broken down by", "split by"],
    &["number of", "count of", "total number of"],
    &["average", "mean"],
    &["total", "sum of", "overall"],
    &["maximum", "highest", "largest"],
    &["minimum", "lowest", "smallest"],
    &["descending", "decreasing"],
    &["ascending", "increasing"],
    &["proportion", "share", "percentage"],
    &["trend", "change over time"],
    &["whose", "where the"],
    &["sorted by", "ordered by", "ranked by"],
];

/// Apply the smoother to one sentence. `strength` ∈ [0, 1] is the
/// per-opportunity substitution probability.
pub fn smooth(rng: &mut StdRng, sentence: &str, strength: f64) -> String {
    let mut s = sentence.to_string();
    // Work lowercase for matching, restore sentence case at the end.
    let mut lower = s.to_lowercase();
    for class in SYNONYMS {
        for (i, &from) in class.iter().enumerate() {
            if lower.contains(from) && rng.random::<f64>() < strength {
                let mut to = from;
                while to == from && class.len() > 1 {
                    to = class[rng.random_range(0..class.len())];
                }
                let _ = i;
                // Replace the first occurrence only (keeps sentences from
                // degenerating on repeated words).
                if let Some(pos) = lower.find(from) {
                    s = format!("{}{}{}", &s[..pos], to, &s[pos + from.len()..]);
                    lower = s.to_lowercase();
                }
            }
        }
    }
    normalize(&s)
}

/// Punctuation/space/case normalization: collapse runs of spaces, remove
/// space-before-punctuation, avoid doubled terminal punctuation, capitalize
/// the first letter, guarantee a terminal `.`/`?`.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_space = false;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            prev_space = true;
            continue;
        }
        if matches!(ch, '.' | ',' | '?' | '!' | ';' | ':') {
            // Drop the pending space before punctuation, and collapse
            // punctuation runs.
            if out.ends_with(['.', ',', '?', '!', ';', ':']) {
                out.pop();
            }
            out.push(ch);
            prev_space = false;
            continue;
        }
        if prev_space && !out.is_empty() {
            out.push(' ');
        }
        prev_space = false;
        out.push(ch);
    }
    // Sentence case.
    let mut chars: Vec<char> = out.chars().collect();
    if let Some(first) = chars.first_mut() {
        *first = first.to_ascii_uppercase();
    }
    let mut out: String = chars.into_iter().collect();
    if !out.ends_with('.') && !out.ends_with('?') && !out.ends_with('!') {
        out.push('.');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn normalize_cleans_spacing_and_case() {
        assert_eq!(normalize("show  me the   data ."), "Show me the data.");
        assert_eq!(normalize("what is this ?"), "What is this?");
        assert_eq!(normalize("double .. dots.."), "Double. dots.");
        assert_eq!(normalize("no terminal"), "No terminal.");
        assert_eq!(normalize("  spaced , commas ,here. "), "Spaced, commas,here.");
    }

    #[test]
    fn smoothing_preserves_meaning_tokens() {
        let mut r = rng();
        let s = smooth(&mut r, "Show the number of players for each team.", 1.0);
        // Chart-irrelevant content words survive.
        assert!(s.to_lowercase().contains("players"));
        assert!(s.to_lowercase().contains("team"));
        // Something was substituted at full strength.
        assert_ne!(s, "Show the number of players for each team.");
    }

    #[test]
    fn zero_strength_only_normalizes() {
        let mut r = rng();
        let s = smooth(&mut r, "show the trend of sales.", 0.0);
        assert_eq!(s, "Show the trend of sales.");
    }

    #[test]
    fn smoothing_is_seed_deterministic() {
        let a = smooth(&mut StdRng::seed_from_u64(5), "Show the average salary per rank.", 0.8);
        let b = smooth(&mut StdRng::seed_from_u64(5), "Show the average salary per rank.", 0.8);
        assert_eq!(a, b);
    }

    #[test]
    fn increases_surface_diversity() {
        // Different seeds produce different paraphrases of the same input.
        let base = "Show the total sales for each region in a bar chart.";
        let variants: std::collections::HashSet<String> = (0..8)
            .map(|i| smooth(&mut StdRng::seed_from_u64(i), base, 0.7))
            .collect();
        assert!(variants.len() >= 3, "{variants:?}");
    }
}
