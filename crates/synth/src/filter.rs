//! Step 1b — pruning bad candidate visualizations with the DeepEye-style
//! filter (§2.4): execute each candidate, extract its chart data, apply the
//! expert rules and the trained classifier; only good charts survive.

use crate::edits::VisCandidate;
use nv_data::{Database, ExecBudget, ExecCache, ExecError};
use nv_quality::DeepEyeFilter;
use nv_render::{chart_data_budgeted, chart_data_cached_budgeted, ChartData, RenderError};

/// A candidate that survived filtering, with its executed chart data.
#[derive(Debug, Clone)]
pub struct GoodVis {
    pub candidate: VisCandidate,
    pub data: ChartData,
    /// The filter's ranking score, computed in the same pass as the verdict
    /// so downstream ranking never re-extracts chart features.
    pub score: f64,
}

/// Statistics from one filtering pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterStats {
    pub total: usize,
    pub kept: usize,
    /// Candidates whose execution failed (shape errors etc.).
    pub failed_exec: usize,
    /// Candidates pruned by the rules or the classifier.
    pub pruned: usize,
}

/// Apply M(v) to every candidate, keeping the good ones. Uses the default
/// [`ExecBudget`].
///
/// Per-candidate execution failures (shape errors, unknown columns) are
/// tolerated and counted in [`FilterStats::failed_exec`] — a bad candidate
/// is just pruned. Only *systemic* failures abort the whole pass with `Err`:
/// a blown resource budget ([`ExecError::ResourceExhausted`]) or an internal
/// invariant violation ([`ExecError::Internal`]), both of which mean the
/// pair itself is pathological and belongs in quarantine.
pub fn filter_candidates(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
) -> Result<(Vec<GoodVis>, FilterStats), ExecError> {
    filter_impl(db, candidates, filter, None, ExecBudget::default())
}

/// [`filter_candidates`] with an explicit executor resource budget.
pub fn filter_candidates_budgeted(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
    budget: ExecBudget,
) -> Result<(Vec<GoodVis>, FilterStats), ExecError> {
    filter_impl(db, candidates, filter, None, budget)
}

/// Like [`filter_candidates`] but executing candidates through a
/// per-database [`ExecCache`]: sibling candidates overwhelmingly share
/// their FROM/WHERE/GROUP fragments, so the scan work is done once.
pub fn filter_candidates_cached(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
    cache: &mut ExecCache,
) -> Result<(Vec<GoodVis>, FilterStats), ExecError> {
    filter_impl(db, candidates, filter, Some(cache), ExecBudget::default())
}

/// [`filter_candidates_cached`] with an explicit executor resource budget.
pub fn filter_candidates_cached_budgeted(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
    cache: &mut ExecCache,
    budget: ExecBudget,
) -> Result<(Vec<GoodVis>, FilterStats), ExecError> {
    filter_impl(db, candidates, filter, Some(cache), budget)
}

fn filter_impl(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
    mut cache: Option<&mut ExecCache>,
    budget: ExecBudget,
) -> Result<(Vec<GoodVis>, FilterStats), ExecError> {
    let mut stats = FilterStats { total: candidates.len(), ..Default::default() };
    let mut good = Vec::new();
    for candidate in candidates {
        // The `synth.filter` injection point *panics* (keyed on the
        // candidate's VQL) — it exercises the pipeline's catch_unwind
        // isolation, unlike the parser/executor sites which return errors.
        if nv_fault::armed() {
            nv_fault::panic_if("synth.filter", nv_fault::key_str(&candidate.tree.to_vql()));
        }
        let data = match cache.as_deref_mut() {
            Some(c) => chart_data_cached_budgeted(db, &candidate.tree, c, budget),
            None => chart_data_budgeted(db, &candidate.tree, budget),
        };
        match data {
            Err(RenderError::Exec(
                e @ (ExecError::ResourceExhausted(_) | ExecError::Internal(_)),
            )) => return Err(e),
            Err(_) => stats.failed_exec += 1,
            Ok(data) => {
                let (is_good, score) = filter.evaluate(&data);
                if is_good {
                    stats.kept += 1;
                    good.push(GoodVis { candidate, data, score });
                } else {
                    stats.pruned += 1;
                }
            }
        }
    }
    if nv_trace::enabled() {
        nv_trace::count("synth.filter.candidates", stats.total as u64);
        nv_trace::count("synth.filter.kept", stats.kept as u64);
        nv_trace::count("synth.filter.pruned", stats.pruned as u64);
        nv_trace::count("synth.filter.failed_exec", stats.failed_exec as u64);
    }
    Ok((good, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edits::generate_candidates;
    use nv_ast::tokens::parse_vql_str;
    use nv_data::{table_from, ColumnType, Value};

    fn db(n_cats: usize) -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "t",
            &[
                ("cat", ColumnType::Categorical),
                ("q", ColumnType::Quantitative),
            ],
            (0..(n_cats * 3))
                .map(|i| {
                    vec![
                        Value::text(format!("c{}", i % n_cats)),
                        Value::Int((i % 11) as i64),
                    ]
                })
                .collect(),
        ));
        db
    }

    #[test]
    fn keeps_good_prunes_bad() {
        let filter = DeepEyeFilter::new(42);
        // 6 categories → good bar charts.
        let good_db = db(6);
        let cands = generate_candidates(
            &good_db,
            &parse_vql_str("select t.cat , t.q from t").unwrap(),
        );
        let (good, stats) = filter_candidates(&good_db, cands, &filter).unwrap();
        assert!(stats.kept > 0, "{stats:?}");
        assert_eq!(stats.total, stats.kept + stats.pruned + stats.failed_exec);
        assert!(!good.is_empty());

        // 300 categories → bar/pie variants all pruned.
        let bad_db = db(300);
        let cands = generate_candidates(
            &bad_db,
            &parse_vql_str("select t.cat from t").unwrap(),
        );
        let (good, stats) = filter_candidates(&bad_db, cands, &filter).unwrap();
        assert_eq!(good.len(), 0, "{stats:?}");
        assert!(stats.pruned > 0);
    }

    #[test]
    fn cached_filtering_matches_uncached() {
        let filter = DeepEyeFilter::new(42);
        let d = db(6);
        let cands = generate_candidates(
            &d,
            &parse_vql_str("select t.cat , t.q from t").unwrap(),
        );
        let (plain, s1) = filter_candidates(&d, cands.clone(), &filter).unwrap();
        let mut cache = nv_data::ExecCache::new();
        let (cached, s2) = filter_candidates_cached(&d, cands, &filter, &mut cache).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(plain.len(), cached.len());
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.data, b.data);
            assert_eq!(a.score, b.score);
        }
        assert!(cache.stats.hits() > 0, "{:?}", cache.stats);
    }

    #[test]
    fn good_vis_carries_chart_data() {
        let filter = DeepEyeFilter::new(42);
        let d = db(5);
        let cands = generate_candidates(&d, &parse_vql_str("select t.cat from t").unwrap());
        let (good, _) = filter_candidates(&d, cands, &filter).unwrap();
        for g in &good {
            assert!(!g.data.rows.is_empty());
            assert_eq!(Some(g.data.chart), g.candidate.tree.chart);
        }
    }

    #[test]
    fn exhausted_budget_aborts_the_pass() {
        let filter = DeepEyeFilter::new(42);
        let d = db(6);
        let cands = generate_candidates(
            &d,
            &parse_vql_str("select t.cat , t.q from t").unwrap(),
        );
        assert!(!cands.is_empty());
        // Starve the executor: the pass must surface ResourceExhausted
        // rather than count every candidate as a routine exec failure.
        let starved = ExecBudget { fuel: 1, ..ExecBudget::default() };
        let e = filter_candidates_budgeted(&d, cands.clone(), &filter, starved).unwrap_err();
        assert!(matches!(e, ExecError::ResourceExhausted(_)), "{e}");
        let mut cache = nv_data::ExecCache::new();
        let e = filter_candidates_cached_budgeted(&d, cands, &filter, &mut cache, starved)
            .unwrap_err();
        assert!(matches!(e, ExecError::ResourceExhausted(_)), "{e}");
    }
}
