//! Step 1b — pruning bad candidate visualizations with the DeepEye-style
//! filter (§2.4): execute each candidate, extract its chart data, apply the
//! expert rules and the trained classifier; only good charts survive.

use crate::edits::VisCandidate;
use nv_data::Database;
use nv_quality::DeepEyeFilter;
use nv_render::{chart_data, ChartData};

/// A candidate that survived filtering, with its executed chart data.
#[derive(Debug, Clone)]
pub struct GoodVis {
    pub candidate: VisCandidate,
    pub data: ChartData,
}

/// Statistics from one filtering pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterStats {
    pub total: usize,
    pub kept: usize,
    /// Candidates whose execution failed (shape errors etc.).
    pub failed_exec: usize,
    /// Candidates pruned by the rules or the classifier.
    pub pruned: usize,
}

/// Apply M(v) to every candidate, keeping the good ones.
pub fn filter_candidates(
    db: &Database,
    candidates: Vec<VisCandidate>,
    filter: &DeepEyeFilter,
) -> (Vec<GoodVis>, FilterStats) {
    let mut stats = FilterStats { total: candidates.len(), ..Default::default() };
    let mut good = Vec::new();
    for candidate in candidates {
        match chart_data(db, &candidate.tree) {
            Err(_) => stats.failed_exec += 1,
            Ok(data) => {
                if filter.is_good(&data) {
                    stats.kept += 1;
                    good.push(GoodVis { candidate, data });
                } else {
                    stats.pruned += 1;
                }
            }
        }
    }
    (good, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edits::generate_candidates;
    use nv_ast::tokens::parse_vql_str;
    use nv_data::{table_from, ColumnType, Value};

    fn db(n_cats: usize) -> Database {
        let mut db = Database::new("d", "Demo");
        db.add_table(table_from(
            "t",
            &[
                ("cat", ColumnType::Categorical),
                ("q", ColumnType::Quantitative),
            ],
            (0..(n_cats * 3))
                .map(|i| {
                    vec![
                        Value::text(format!("c{}", i % n_cats)),
                        Value::Int((i % 11) as i64),
                    ]
                })
                .collect(),
        ));
        db
    }

    #[test]
    fn keeps_good_prunes_bad() {
        let filter = DeepEyeFilter::new(42);
        // 6 categories → good bar charts.
        let good_db = db(6);
        let cands = generate_candidates(
            &good_db,
            &parse_vql_str("select t.cat , t.q from t").unwrap(),
        );
        let (good, stats) = filter_candidates(&good_db, cands, &filter);
        assert!(stats.kept > 0, "{stats:?}");
        assert_eq!(stats.total, stats.kept + stats.pruned + stats.failed_exec);
        assert!(!good.is_empty());

        // 300 categories → bar/pie variants all pruned.
        let bad_db = db(300);
        let cands = generate_candidates(
            &bad_db,
            &parse_vql_str("select t.cat from t").unwrap(),
        );
        let (good, stats) = filter_candidates(&bad_db, cands, &filter);
        assert_eq!(good.len(), 0, "{stats:?}");
        assert!(stats.pruned > 0);
    }

    #[test]
    fn good_vis_carries_chart_data() {
        let filter = DeepEyeFilter::new(42);
        let d = db(5);
        let cands = generate_candidates(&d, &parse_vql_str("select t.cat from t").unwrap());
        let (good, _) = filter_candidates(&d, cands, &filter);
        for g in &good {
            assert!(!g.data.rows.is_empty());
            assert_eq!(Some(g.data.chart), g.candidate.tree.chart);
        }
    }
}
