//! Step 2 — NL synthesis (§2.5): revise the SQL pair's NL query to reflect
//! the tree edits Δ, producing several NL variants per VIS tree.
//!
//! * **Insertions** are verbalized with phrase rules (the paper extracts
//!   these from Ask Data / NL4DV; the rule table of §2.5 is reproduced in
//!   [`chart_phrase`], [`grouping_phrase`], [`binning_phrase`],
//!   [`order_phrase`] and the aggregate wording).
//! * **Deletions** cannot be rewritten automatically (the deleted clause may
//!   be implicit in the original NL); the paper had two PhD students revise
//!   those by hand (~1 min each). We simulate that manual pass by
//!   regenerating the data-description from the (fully known) VIS tree —
//!   see [`describe_data_part`] — and flag the pair via
//!   [`NlResult::needs_manual_revision`] so the cost model (§3.1) can count
//!   it.
//! * Every variant is then smoothed (back-translation substitute,
//!   [`crate::smoother`]).

use crate::edits::VisCandidate;
use crate::smoother::{normalize, smooth};
use nv_ast::*;
use nv_data::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of NL synthesis for one VIS tree.
#[derive(Debug, Clone, PartialEq)]
pub struct NlResult {
    pub variants: Vec<String>,
    /// True when the edit contained deletions (§2.5: manually revised; here
    /// simulated and counted by the man-hour model).
    pub needs_manual_revision: bool,
}

/// The NL synthesizer. Seeded: same input ⇒ same variants.
pub struct NlSynthesizer {
    rng: StdRng,
    /// Variants to produce per vis (paper averages 3.75 per vis).
    pub variants_per_vis: std::ops::RangeInclusive<usize>,
    /// Smoother strength.
    pub smoothing: f64,
}

impl NlSynthesizer {
    pub fn new(seed: u64) -> NlSynthesizer {
        NlSynthesizer { rng: StdRng::seed_from_u64(seed), variants_per_vis: 3..=5, smoothing: 0.45 }
    }

    /// Produce NL variants for one filtered candidate.
    pub fn synthesize(
        &mut self,
        db: &Database,
        original_nl: &str,
        vis: &VisCandidate,
    ) -> NlResult {
        let needs_manual = vis.edit.needs_manual_nl_revision();
        // Core data description: the original NL when it still covers the
        // query; a regenerated description after deletions.
        let core = if needs_manual {
            describe_data_part(db, &vis.tree)
        } else {
            trim_terminal(original_nl)
        };

        let n = self
            .rng
            .random_range(*self.variants_per_vis.start()..=*self.variants_per_vis.end());
        let mut variants = Vec::with_capacity(n);
        let mut guard = 0;
        while variants.len() < n && guard < n * 6 {
            guard += 1;
            let raw = self.one_variant(&core, vis);
            let smoothed = smooth(&mut self.rng, &raw, self.smoothing);
            if !variants.contains(&smoothed) {
                variants.push(smoothed);
            }
        }
        NlResult { variants, needs_manual_revision: needs_manual }
    }

    /// One raw (pre-smoothing) variant: wrap the core with the chart phrase
    /// and append insertion phrases.
    fn one_variant(&mut self, core: &str, vis: &VisCandidate) -> String {
        // Candidates are always VIS trees; fall back to Bar rather than
        // panic if a caller ever hands in an unvisualized tree.
        let chart = vis.tree.chart.unwrap_or(ChartType::Bar);
        let mut tail_phrases: Vec<String> = Vec::new();
        for op in vis.edit.insertions() {
            match op {
                EditOp::InsertGrouping(col)
                    // Skip when the grouping is already implied by a count
                    // phrase mentioning the column (avoids "for each x for
                    // each x").
                    if !core.to_lowercase().contains(&display(&col.column)) => {
                        tail_phrases.push(self.grouping_phrase(col));
                    }
                EditOp::InsertBinning(spec) => tail_phrases.push(self.binning_phrase(spec)),
                EditOp::InsertOrder(spec) => tail_phrases.push(self.order_phrase(spec)),
                EditOp::InsertAgg { .. } | EditOp::InsertVisualize(_) => {}
                _ => {}
            }
        }
        // The count/agg insertion is verbalized as part of the y phrase when
        // the core was regenerated; when the core is the original NL, a
        // count phrase is prefixed.
        let count_inserted = vis
            .edit
            .insertions()
            .any(|op| matches!(op, EditOp::InsertAgg { agg: AggFunc::Count, .. }));
        let mut body = core.to_string();
        if count_inserted && !body.to_lowercase().contains("how many")
            && !body.to_lowercase().contains("number of")
        {
            let lead = pick(&mut self.rng, &["the number of records of", "a count of"]);
            body = format!("{lead} {body}");
        }

        let tail = if tail_phrases.is_empty() {
            String::new()
        } else {
            format!(" {}", tail_phrases.join(", "))
        };
        let phrase = self.chart_phrase(chart);
        match phrase {
            ChartPhrase::Prefix(p) => normalize(&format!("{p} {body}{tail}")),
            ChartPhrase::Suffix(sfx) => normalize(&format!("{body}{tail}{sfx}")),
        }
    }

    fn chart_phrase(&mut self, chart: ChartType) -> ChartPhrase {
        let name = chart.display_name();
        // Pie charts get the implicit "proportion" phrasing sometimes
        // (paper Example 5).
        if chart == ChartType::Pie && self.rng.random::<f64>() < 0.35 {
            return ChartPhrase::Prefix("show the proportion about".into());
        }
        if self.rng.random::<f64>() < 0.5 {
            let verb = pick(&mut self.rng, &["show", "visualize", "draw", "plot", "give me"]);
            ChartPhrase::Prefix(format!("{verb} a {name} about"))
        } else {
            let link = pick(&mut self.rng, &[", as a", ", in a", ", using a", ", with a"]);
            ChartPhrase::Suffix(format!("{link} {name}"))
        }
    }

    fn grouping_phrase(&mut self, col: &ColumnRef) -> String {
        let c = display(&col.column);
        match self.rng.random_range(0..3) {
            0 => format!("for each {c}"),
            1 => format!("grouped by {c}"),
            _ => format!("by each {c}"),
        }
    }

    fn binning_phrase(&mut self, spec: &BinSpec) -> String {
        let c = display(&spec.col.column);
        match spec.unit {
            BinUnit::Numeric { .. } => {
                format!("with {c} divided into buckets")
            }
            unit => {
                let u = unit.keyword();
                match self.rng.random_range(0..3) {
                    0 => format!("with a bin of {u} on {c}"),
                    1 => format!("binned by {u}"),
                    _ => format!("in a bucket of {u}"),
                }
            }
        }
    }

    fn order_phrase(&mut self, spec: &OrderSpec) -> String {
        let target = if spec.attr.agg == AggFunc::Count {
            "the count".to_string()
        } else {
            format!("the {}", display(&spec.attr.col.column))
        };
        let dir = match spec.dir {
            OrderDir::Asc => "ascending",
            OrderDir::Desc => "descending",
        };
        match self.rng.random_range(0..2) {
            0 => format!("sorted by {target} in {dir} order"),
            _ => format!("ordered by {target} from {}", if dir == "descending" { "high to low" } else { "low to high" }),
        }
    }
}

enum ChartPhrase {
    Prefix(String),
    Suffix(String),
}

/// Regenerate the *what data* description from a VIS tree — the simulated
/// "manual revision" used when deletions invalidated the original NL.
pub fn describe_data_part(db: &Database, tree: &VisQuery) -> String {
    let _ = db;
    let body = tree.query.primary();
    let table = display(body.from.first().map(String::as_str).unwrap_or("data"));
    // x / y description.
    let x = body.select.first();
    let y = body.select.get(1);
    let y_phrase = match y {
        Some(a) if a.agg == AggFunc::Count => format!("how many {table} records"),
        Some(a) if a.agg != AggFunc::None => format!(
            "the {} {}",
            agg_word(a.agg),
            display(&a.col.column)
        ),
        Some(a) => format!("the {}", display(&a.col.column)),
        None => format!("the {table} records"),
    };
    let x_phrase = match x {
        Some(a) => format!(" across {}", display(&a.col.column)),
        None => String::new(),
    };
    let series_phrase = body
        .select
        .get(2)
        .map(|a| format!(", colored by {}", display(&a.col.column)))
        .unwrap_or_default();

    let mut filters = Vec::new();
    if let Some(p) = &body.filter {
        p.for_each_leaf(&mut |leaf| filters.push(filter_phrase(leaf)));
    }
    let filter_phrase = if filters.is_empty() {
        String::new()
    } else {
        format!(" for records {}", filters.join(" and "))
    };
    let sup_phrase = body
        .superlative
        .as_ref()
        .map(|s| {
            format!(
                ", keeping the {} {} by {}",
                s.k,
                if s.dir == SuperDir::Most { "largest" } else { "smallest" },
                display(&s.attr.col.column)
            )
        })
        .unwrap_or_default();

    format!("{y_phrase}{x_phrase} of {table}{series_phrase}{filter_phrase}{sup_phrase}")
}

fn filter_phrase(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { op, attr, rhs } => {
            let word = match op {
                CmpOp::Eq => "is",
                CmpOp::Ne => "is not",
                CmpOp::Lt => "is below",
                CmpOp::Le => "is at most",
                CmpOp::Gt => "is above",
                CmpOp::Ge => "is at least",
            };
            format!("whose {} {word} {}", display(&attr.col.column), operand_phrase(rhs))
        }
        Predicate::Between { attr, low, high } => format!(
            "whose {} is between {} and {}",
            display(&attr.col.column),
            operand_phrase(low),
            operand_phrase(high)
        ),
        Predicate::Like { attr, pattern, negated } => format!(
            "whose {} {} like {}",
            display(&attr.col.column),
            if *negated { "does not look" } else { "looks" },
            pattern.replace('%', "")
        ),
        Predicate::In { attr, negated, .. } => format!(
            "whose {} is {}in the related set",
            display(&attr.col.column),
            if *negated { "not " } else { "" }
        ),
        Predicate::And(..) | Predicate::Or(..) => unreachable!("leaf visitor"),
    }
}

fn operand_phrase(o: &Operand) -> String {
    match o {
        // `to_token` doubles embedded quotes, so the quoted span in the NL
        // stays parseable by the V-slot extractor even for values like
        // `O'Hare` (serialize → extract must be the identity on text).
        Operand::Lit(l) => l.to_token(),
        Operand::List(ls) => ls
            .iter()
            .map(Literal::to_token)
            .collect::<Vec<_>>()
            .join(" or "),
        Operand::Subquery(_) => "the matching subset".into(),
    }
}

fn agg_word(a: AggFunc) -> &'static str {
    match a {
        AggFunc::Avg => "average",
        AggFunc::Sum => "total",
        AggFunc::Max => "maximum",
        AggFunc::Min => "minimum",
        AggFunc::Count => "number of",
        AggFunc::None => "",
    }
}

fn display(ident: &str) -> String {
    ident.replace('_', " ")
}

fn trim_terminal(s: &str) -> String {
    s.trim().trim_end_matches(['.', '?', '!']).to_string()
}

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.random_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edits::generate_candidates;
    use nv_data::{table_from, ColumnType, Value};

    fn db() -> Database {
        let mut db = Database::new("d", "College");
        db.add_table(table_from(
            "faculty",
            &[
                ("sex", ColumnType::Categorical),
                ("salary", ColumnType::Quantitative),
                ("rank", ColumnType::Categorical),
            ],
            vec![
                vec![Value::text("male"), Value::Int(100), Value::text("full")],
                vec![Value::text("female"), Value::Int(120), Value::text("full")],
                vec![Value::text("female"), Value::Int(90), Value::text("assistant")],
            ],
        ));
        db
    }

    fn pie_candidate() -> VisCandidate {
        let d = db();
        let cands = generate_candidates(
            &d,
            &nv_ast::tokens::parse_vql_str("select faculty.sex from faculty").unwrap(),
        );
        cands
            .into_iter()
            .find(|c| c.tree.chart == Some(ChartType::Pie))
            .unwrap()
    }

    #[test]
    fn variants_mention_chart_and_keep_core() {
        let d = db();
        let mut synth = NlSynthesizer::new(42);
        let original = "How many male and female faculties do we have?";
        let res = synth.synthesize(&d, original, &pie_candidate());
        assert!((3..=5).contains(&res.variants.len()));
        for v in &res.variants {
            let lv = v.to_lowercase();
            assert!(
                lv.contains("pie") || lv.contains("proportion") || lv.contains("share")
                    || lv.contains("percentage"),
                "no pie signal in: {v}"
            );
            assert!(lv.contains("male") || lv.contains("facult"), "core lost: {v}");
        }
        assert!(!res.needs_manual_revision);
    }

    #[test]
    fn variants_are_distinct_and_normalized() {
        let d = db();
        let mut synth = NlSynthesizer::new(1);
        let res = synth.synthesize(&d, "How many faculties per sex?", &pie_candidate());
        let set: std::collections::HashSet<&String> = res.variants.iter().collect();
        assert_eq!(set.len(), res.variants.len());
        for v in &res.variants {
            assert!(v.ends_with('.') || v.ends_with('?'), "{v}");
            assert!(!v.contains("  "), "{v}");
            assert!(v.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn deletion_triggers_regenerated_core() {
        let d = db();
        let cands = generate_candidates(
            &d,
            &nv_ast::tokens::parse_vql_str(
                "select faculty.sex , faculty.salary , faculty.rank from faculty",
            )
            .unwrap(),
        );
        let deleted = cands
            .iter()
            .find(|c| c.edit.deletion_count() >= 2 && c.tree.chart == Some(ChartType::Bar))
            .expect("a heavily-deleted bar candidate");
        let mut synth = NlSynthesizer::new(7);
        let res = synth.synthesize(&d, "Show sex, salary, and rank of all faculty.", deleted);
        assert!(res.needs_manual_revision);
        // The regenerated core should NOT parrot the original sentence.
        for v in &res.variants {
            assert!(!v.contains("sex, salary, and rank"), "{v}");
        }
    }

    #[test]
    fn grouping_and_order_phrases_appear() {
        let d = db();
        let cands = generate_candidates(
            &d,
            &nv_ast::tokens::parse_vql_str("select faculty.rank , faculty.salary from faculty")
                .unwrap(),
        );
        let ordered = cands
            .iter()
            .find(|c| c.tree.query.primary().order.is_some())
            .expect("ordered variant");
        let mut synth = NlSynthesizer::new(3);
        let res = synth.synthesize(&d, "What is the salary for each rank?", ordered);
        let any_order = res.variants.iter().any(|v| {
            let lv = v.to_lowercase();
            lv.contains("sort") || lv.contains("order") || lv.contains("rank")
                || lv.contains("high to low") || lv.contains("descending") || lv.contains("decreasing")
        });
        assert!(any_order, "{:?}", res.variants);
    }

    #[test]
    fn describe_data_part_covers_clauses() {
        let d = db();
        let tree = nv_ast::tokens::parse_vql_str(
            "visualize bar select faculty.rank , avg ( faculty.salary ) from faculty \
             where faculty.sex = 'female' group by faculty.rank top 3 by avg ( faculty.salary )",
        )
        .unwrap();
        let s = describe_data_part(&d, &tree);
        assert!(s.contains("average salary"), "{s}");
        assert!(s.contains("rank"), "{s}");
        assert!(s.contains("female"), "{s}");
        assert!(s.contains("3 largest"), "{s}");
    }

    #[test]
    fn seeded_determinism() {
        let d = db();
        let c = pie_candidate();
        let a = NlSynthesizer::new(9).synthesize(&d, "How many per sex?", &c);
        let b = NlSynthesizer::new(9).synthesize(&d, "How many per sex?", &c);
        assert_eq!(a, b);
    }
}
