//! # nv-synth — the two synthesis steps of nl2sql-to-nl2vis
//!
//! * Step 1: [`edits`] generates candidate VIS trees from an SQL tree via
//!   deletions + insertions (§2.3), and [`filter`] prunes bad charts with
//!   the DeepEye-style filter (§2.4).
//! * Step 2: [`nledit`] revises the SQL pair's NL to reflect the tree edits
//!   (§2.5), smoothing every variant with the back-translation substitute
//!   in [`smoother`].
//!
//! `nv-core` wires these into the end-to-end pipeline.

pub mod edits;
pub mod filter;
pub mod nledit;
pub mod smoother;

pub use edits::{attr_ctype, generate_candidates, strip_order, VisCandidate};
pub use filter::{
    filter_candidates, filter_candidates_budgeted, filter_candidates_cached,
    filter_candidates_cached_budgeted, FilterStats, GoodVis,
};
pub use nledit::{describe_data_part, NlResult, NlSynthesizer};
pub use smoother::{normalize, smooth};
