//! Dataset preparation: (NL, VIS) pairs → token-id samples.
//!
//! Per the paper (§4.1), the encoder input is the NL token sequence
//! concatenated with the database schema tokens (`X = [q₁…q_l, a₁…a_m]`);
//! the decoder target is the linearized VIS query with literal values masked
//! to `<value>`.

use crate::values::mask_values;
use crate::vocab::{nl_tokens, Vocab};
use nv_core::NvBench;
use nv_data::Database;
use nv_nn::Sample;

/// Build the source token strings for one (nl, db) input.
pub fn source_tokens(nl: &str, db: &Database) -> Vec<String> {
    let mut toks = nl_tokens(nl);
    toks.push("<sep>".to_string());
    toks.extend(db.schema_tokens().iter().map(|t| t.to_lowercase()));
    toks
}

/// Build the masked target token strings for one vis tree.
pub fn target_tokens(tree: &nv_ast::VisQuery) -> Vec<String> {
    let (masked, _) = mask_values(&tree.to_tokens());
    masked
}

/// A prepared dataset: a shared vocab plus one sample per benchmark pair
/// (index-aligned with `bench.pairs`).
#[derive(Debug, Clone)]
pub struct Dataset {
    pub vocab: Vocab,
    pub samples: Vec<Sample>,
}

/// Prepare the dataset for a benchmark. NL tokens below `min_freq` become
/// `<unk>`; target-side tokens are always kept (the decoder must be able to
/// emit every VQL keyword and schema token it was trained on).
pub fn build_dataset(bench: &NvBench, min_freq: usize) -> Dataset {
    let mut src_streams: Vec<Vec<String>> = Vec::with_capacity(bench.pairs.len());
    let mut tgt_streams: Vec<Vec<String>> = Vec::with_capacity(bench.pairs.len());
    for pair in &bench.pairs {
        let vis = &bench.vis_objects[pair.vis_id];
        let db = bench.database(&vis.db_name).expect("pair db exists");
        src_streams.push(source_tokens(&pair.nl, db));
        tgt_streams.push(target_tokens(&vis.tree));
    }

    // Protect target tokens from the frequency cutoff by counting them with
    // a weight that always clears `min_freq`.
    let mut streams: Vec<&[String]> = Vec::new();
    for s in &src_streams {
        streams.push(s.as_slice());
    }
    for t in &tgt_streams {
        for _ in 0..min_freq.max(1) {
            streams.push(t.as_slice());
        }
    }
    let vocab = Vocab::build(streams.into_iter(), min_freq.max(1));

    let samples = src_streams
        .iter()
        .zip(&tgt_streams)
        .map(|(s, t)| Sample { src: vocab.encode(s), tgt: vocab.encode(t) })
        .collect();

    Dataset { vocab, samples }
}

impl Dataset {
    /// Subset of samples by pair index.
    pub fn subset(&self, idx: &[usize]) -> Vec<Sample> {
        idx.iter().map(|&i| self.samples[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::SEP;
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(11));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn dataset_is_aligned_and_decodable() {
        let b = bench();
        let ds = build_dataset(&b, 2);
        assert_eq!(ds.samples.len(), b.pairs.len());
        assert!(ds.vocab.len() > 50);
        // Every target token is in-vocab (no <unk> on the decoder side).
        for (i, s) in ds.samples.iter().enumerate() {
            assert!(
                !s.tgt.contains(&crate::vocab::UNK),
                "pair {i} has unk in target: {:?}",
                ds.vocab.decode(&s.tgt)
            );
            assert!(!s.src.is_empty() && !s.tgt.is_empty());
        }
    }

    #[test]
    fn source_contains_sep_and_schema() {
        let b = bench();
        let ds = build_dataset(&b, 2);
        let pair = &b.pairs[0];
        let vis = &b.vis_objects[pair.vis_id];
        let db = b.database(&vis.db_name).unwrap();
        let src = source_tokens(&pair.nl, db);
        let sep_pos = src.iter().position(|t| t == "<sep>").unwrap();
        assert!(sep_pos > 0 && sep_pos < src.len() - 1);
        // Schema tokens follow the separator.
        assert!(src[sep_pos + 1].contains('.'));
        assert_eq!(ds.samples[0].src[sep_pos], SEP);
    }

    #[test]
    fn targets_are_masked() {
        let b = bench();
        for v in &b.vis_objects {
            let t = target_tokens(&v.tree);
            for tok in &t {
                assert!(
                    nv_ast::tokens::parse_literal(tok)
                        .map_or(true, |l| matches!(l, nv_ast::Literal::Null | nv_ast::Literal::Bool(_))),
                    "unmasked literal {tok} in {}",
                    v.vql
                );
            }
        }
    }

    #[test]
    fn subset_selects_rows() {
        let b = bench();
        let ds = build_dataset(&b, 2);
        let sub = ds.subset(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0], ds.samples[0]);
        assert_eq!(sub[1], ds.samples[2]);
    }
}
