//! Shared token vocabulary for the seq2vis models.
//!
//! One id space covers NL words, schema tokens (`table.column`) and VQL
//! keywords — required by the copy mechanism (a source schema token can be
//! emitted directly into the output). Literal values never enter the vocab:
//! they are masked to `<value>` (paper §4.2: V-slots are filled by a
//! heuristic, not predicted).

use std::collections::HashMap;

/// Special-token ids (fixed positions at the front of the vocab).
pub const BOS: usize = 0;
pub const EOS: usize = 1;
pub const UNK: usize = 2;
/// Masked literal value slot.
pub const VALUE: usize = 3;
/// Separator between the NL tokens and the appended schema tokens.
pub const SEP: usize = 4;

const SPECIALS: [&str; 5] = ["<bos>", "<eos>", "<unk>", "<value>", "<sep>"];

/// A frozen token ↔ id mapping.
#[derive(Debug, Clone)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocab {
    /// Build from token streams, keeping tokens with frequency ≥ `min_freq`.
    pub fn build<'a>(streams: impl Iterator<Item = &'a [String]>, min_freq: usize) -> Vocab {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for stream in streams {
            for tok in stream {
                *freq.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(&str, usize)> = freq
            .into_iter()
            .filter(|(t, c)| *c >= min_freq && !SPECIALS.contains(t))
            .collect();
        // Deterministic order: by frequency desc, then lexicographic.
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut tokens: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        tokens.extend(kept.into_iter().map(|(t, _)| t.to_string()));
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocab { tokens, index }
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        false // specials are always present
    }

    pub fn id(&self, token: &str) -> usize {
        *self.index.get(token).unwrap_or(&UNK)
    }

    pub fn contains(&self, token: &str) -> bool {
        self.index.contains_key(token)
    }

    pub fn token(&self, id: usize) -> &str {
        self.tokens.get(id).map(String::as_str).unwrap_or("<unk>")
    }

    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| self.token(i).to_string()).collect()
    }
}

/// Tokenize an NL sentence for the encoder: lowercase, split punctuation,
/// but keep single-quoted spans and `table.column`-shaped tokens intact.
pub fn nl_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<String>| {
        if !cur.is_empty() {
            out.push(std::mem::take(cur).to_lowercase());
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                flush(&mut cur, &mut out);
                // Mirror `tokenize_vql`: a doubled quote inside the span is
                // an escape, not a terminator.
                let mut quoted = String::from("'");
                while let Some(&n) = chars.peek() {
                    chars.next();
                    quoted.push(n);
                    if n == '\'' {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                            quoted.push('\'');
                        } else {
                            break;
                        }
                    }
                }
                out.push(quoted.to_lowercase());
            }
            c if c.is_whitespace() => flush(&mut cur, &mut out),
            ',' | '?' | '!' | ';' | ':' | '(' | ')' => {
                flush(&mut cur, &mut out);
            }
            '.' => {
                // Keep dots inside identifiers/numbers (t.col, 3.5); strip
                // sentence-final dots.
                if cur.is_empty() || chars.peek().is_none_or(|n| n.is_whitespace()) {
                    flush(&mut cur, &mut out);
                } else {
                    cur.push('.');
                }
            }
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_stable() {
        let v = Vocab::build(std::iter::empty(), 1);
        assert_eq!(v.len(), 5);
        assert_eq!(v.id("<bos>"), BOS);
        assert_eq!(v.id("<eos>"), EOS);
        assert_eq!(v.id("<unk>"), UNK);
        assert_eq!(v.id("<value>"), VALUE);
        assert_eq!(v.id("<sep>"), SEP);
        assert!(!v.is_empty());
    }

    #[test]
    fn build_respects_min_freq_and_is_deterministic() {
        let a = vec!["apple".to_string(), "banana".into(), "apple".into()];
        let b = vec!["apple".to_string(), "cherry".into()];
        let v1 = Vocab::build([a.as_slice(), b.as_slice()].into_iter(), 2);
        assert!(v1.contains("apple"));
        assert!(!v1.contains("banana"));
        let v2 = Vocab::build([a.as_slice(), b.as_slice()].into_iter(), 2);
        assert_eq!(v1.decode(&[5]), v2.decode(&[5]));
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let a = vec!["known".to_string()];
        let v = Vocab::build([a.as_slice()].into_iter(), 1);
        assert_eq!(v.id("mystery"), UNK);
        assert_eq!(v.token(9999), "<unk>");
        let enc = v.encode(&["known".into(), "mystery".into()]);
        assert_eq!(enc[1], UNK);
    }

    #[test]
    fn round_trip_encode_decode() {
        let s = vec!["show".to_string(), "bar".into(), "chart".into()];
        let v = Vocab::build([s.as_slice()].into_iter(), 1);
        let ids = v.encode(&s);
        assert_eq!(v.decode(&ids), s);
    }

    #[test]
    fn nl_tokenizer_keeps_quotes_and_identifiers() {
        let toks = nl_tokens("Show flights to 'New York', sorted by t.price desc.");
        assert!(toks.contains(&"'new york'".to_string()), "{toks:?}");
        assert!(toks.contains(&"t.price".to_string()));
        assert!(toks.contains(&"sorted".to_string()));
        assert!(!toks.iter().any(|t| t.contains(',')));
        assert_eq!(*toks.last().unwrap(), "desc");
    }

    #[test]
    fn nl_tokenizer_keeps_decimal_numbers() {
        let toks = nl_tokens("gpa above 3.5 please");
        assert!(toks.contains(&"3.5".to_string()), "{toks:?}");
    }
}
