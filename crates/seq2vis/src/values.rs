//! Value masking and the heuristic V-slot filler (paper §4.2).
//!
//! seq2vis does not predict literal values. Target VQL sequences have every
//! literal replaced by `<value>`; after decoding, a heuristic extracts
//! candidate values from the NL question and fills the slots back in. The
//! paper reports ~92.3% filling accuracy; `exp_values` measures ours.

use nv_ast::tokens::parse_literal;
use nv_ast::Literal;

/// Replace literal tokens in a VQL token sequence with `<value>`; returns
/// the masked sequence and the extracted literals in order.
pub fn mask_values(tokens: &[String]) -> (Vec<String>, Vec<Literal>) {
    let mut masked = Vec::with_capacity(tokens.len());
    let mut values = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let maskable = match parse_literal(tok) {
            // null/true/false are grammar keywords, not V-slots.
            Some(Literal::Null) | Some(Literal::Bool(_)) | None => false,
            Some(lit) => {
                // A number immediately after top/bottom is the superlative k
                // — still a V in the grammar, mask it too. Everything else
                // that parses as a literal *is* an operand position in VQL.
                values.push(lit);
                let _ = i;
                true
            }
        };
        masked.push(if maskable { "<value>".to_string() } else { tok.clone() });
    }
    (masked, values)
}

/// A candidate value mined from the NL question.
#[derive(Debug, Clone, PartialEq)]
pub enum Candidate {
    Number(f64),
    Text(String),
}

/// Extract value candidates from the raw NL string, in order of appearance:
/// quoted spans become text candidates; number-shaped words become numeric
/// candidates (date-like strings stay text).
pub fn extract_candidates(nl: &str) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut chars = nl.chars().peekable();
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut Vec<Candidate>| {
        if word.is_empty() {
            return;
        }
        let w = std::mem::take(word);
        let trimmed = w.trim_matches(|c: char| !c.is_alphanumeric() && c != '-' && c != '.');
        if trimmed.is_empty() {
            return;
        }
        if looks_like_date(trimmed) {
            out.push(Candidate::Text(trimmed.to_string()));
        } else if let Ok(n) = trimmed.trim_end_matches('.').parse::<f64>() {
            out.push(Candidate::Number(n));
        }
    };
    while let Some(c) = chars.next() {
        if c == '\'' {
            flush(&mut word, &mut out);
            // Quoted span; a doubled quote is an escaped literal quote, so
            // `'O''Hare'` yields the candidate `O'Hare`.
            let mut quoted = String::new();
            while let Some(&n) = chars.peek() {
                chars.next();
                if n == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next();
                        quoted.push('\'');
                    } else {
                        break;
                    }
                } else {
                    quoted.push(n);
                }
            }
            if !quoted.is_empty() {
                out.push(Candidate::Text(quoted));
            }
        } else if c.is_whitespace() {
            flush(&mut word, &mut out);
        } else {
            word.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}

fn looks_like_date(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() == 3 && parts.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
}

/// Fill `<value>` slots in a decoded VQL token sequence from NL candidates.
///
/// Strategy: consume candidates in order, matching slot type when
/// inferable from the preceding context (a `like` slot wants text; `top`/
/// `bottom` want a small integer; comparison against a *quoted* candidate
/// prefers text). Unfilled slots fall back to `0` so the sequence still
/// parses — a wrong value is scored by result matching, not a crash.
pub fn fill_values(tokens: &[String], nl: &str) -> Vec<String> {
    let mut candidates = extract_candidates(nl);
    let mut out = Vec::with_capacity(tokens.len());
    for i in 0..tokens.len() {
        if tokens[i] != "<value>" {
            out.push(tokens[i].clone());
            continue;
        }
        let prev = if i > 0 { tokens[i - 1].as_str() } else { "" };
        let prev2 = if i > 1 { tokens[i - 2].as_str() } else { "" };
        let want_text = prev == "like" || prev2 == "not" && prev == "like";
        let want_small_int = prev == "top" || prev == "bottom";
        let pick = if want_text {
            take_first(&mut candidates, |c| matches!(c, Candidate::Text(_)))
        } else if want_small_int {
            take_first(&mut candidates, |c| {
                matches!(c, Candidate::Number(n) if *n >= 1.0 && *n <= 1000.0 && n.fract() == 0.0)
            })
        } else {
            // Generic slot: next candidate of any kind.
            (!candidates.is_empty()).then(|| candidates.remove(0))
        };
        out.push(match pick {
            Some(Candidate::Number(n)) if !want_text => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
            Some(Candidate::Text(s)) => Literal::Text(s).to_token(),
            // LIKE requires a quoted pattern; a numeric or missing candidate
            // degrades to the match-all pattern rather than a parse error.
            Some(Candidate::Number(n)) => Literal::Text(format!("{n}")).to_token(),
            None if want_text => "'%'".to_string(),
            None => "0".to_string(),
        });
    }
    out
}

fn take_first(v: &mut Vec<Candidate>, pred: impl Fn(&Candidate) -> bool) -> Option<Candidate> {
    let pos = v.iter().position(pred)?;
    Some(v.remove(pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::{parse_vql, tokenize_vql};

    #[test]
    fn mask_replaces_literals_only() {
        let toks = tokenize_vql(
            "select t.a from t where ( t.price > 500 and t.city = 'New York' ) top 3 by t.price",
        );
        let (masked, values) = mask_values(&toks);
        let masked_str = masked.join(" ");
        assert_eq!(
            masked_str,
            "select t.a from t where ( t.price > <value> and t.city = <value> ) top <value> by t.price"
        );
        assert_eq!(
            values,
            vec![
                Literal::Int(500),
                Literal::Text("New York".into()),
                Literal::Int(3)
            ]
        );
    }

    #[test]
    fn keywords_are_not_masked() {
        let toks = tokenize_vql("select t.a from t where t.flag = true");
        let (masked, values) = mask_values(&toks);
        assert!(masked.contains(&"true".to_string()));
        assert!(values.is_empty());
    }

    #[test]
    fn extract_candidates_ordered() {
        let c = extract_candidates(
            "Show flights above 500 dollars to 'New York' after 2020-01-01, top 3.",
        );
        assert_eq!(
            c,
            vec![
                Candidate::Number(500.0),
                Candidate::Text("New York".into()),
                Candidate::Text("2020-01-01".into()),
                Candidate::Number(3.0),
            ]
        );
    }

    #[test]
    fn fill_round_trips_typical_query() {
        let toks = tokenize_vql(
            "visualize bar select t.city , count ( t.* ) from t \
             where ( t.price > 500 and t.city = 'new york' ) group by t.city top 3 by count ( t.* )",
        );
        let (masked, _) = mask_values(&toks);
        let filled = fill_values(
            &masked,
            "Show a bar of cities with price over 500 in 'new york', top 3.",
        );
        assert_eq!(filled.join(" "), toks.join(" "));
        // And the filled sequence parses.
        parse_vql(&filled).unwrap();
    }

    #[test]
    fn unfillable_slots_default_to_zero() {
        let masked: Vec<String> = tokenize_vql("select t.a from t where t.x > <value>")
            .into_iter()
            .collect();
        let filled = fill_values(&masked, "no numbers here at all");
        assert_eq!(filled.last().unwrap(), "0");
        parse_vql(&filled).unwrap();
    }

    #[test]
    fn like_slot_prefers_text() {
        let masked: Vec<String> =
            tokenize_vql("select t.a from t where t.name like <value>").into_iter().collect();
        let filled = fill_values(&masked, "names starting with 'Inter%' among 500 rows");
        assert!(filled.join(" ").contains("'Inter%'"), "{filled:?}");
    }

    #[test]
    fn superlative_slot_prefers_small_integer() {
        let masked: Vec<String> =
            tokenize_vql("select t.a from t top <value> by t.price").into_iter().collect();
        let filled = fill_values(&masked, "give the 5 most expensive at 1234.75 dollars");
        // 1234.75 is fractional; 5 is the integer pick.
        assert!(filled.contains(&"5".to_string()), "{filled:?}");
    }

    #[test]
    fn embedded_quote_value_fills_back_canonically() {
        // The PR 3 regression literal, end to end through the value channel:
        // serializer-escaped VQL → mask → NL span → extract → refill.
        let toks = tokenize_vql("select t.a from t where t.name = '%''J'");
        let (masked, values) = mask_values(&toks);
        assert_eq!(values, vec![Literal::Text("%'J".into())]);
        let filled = fill_values(&masked, "rows whose name is '%''J' please");
        assert_eq!(filled.join(" "), toks.join(" "));
        parse_vql(&filled).unwrap();
    }

    #[test]
    fn extract_honors_doubled_quote_escapes() {
        let c = extract_candidates("flights from 'O''Hare' after 500");
        assert_eq!(
            c,
            vec![Candidate::Text("O'Hare".into()), Candidate::Number(500.0)]
        );
    }

    #[test]
    fn date_candidates_stay_textual() {
        let c = extract_candidates("cases until 2020-09-13 only");
        assert_eq!(c, vec![Candidate::Text("2020-09-13".into())]);
    }
}
