//! The three §4.2 accuracy metrics plus the aggregations behind Table 4,
//! Table 5 and Figure 17.
//!
//! * **tree matching** — the predicted VIS AST exactly matches the gold AST
//!   (numeric literals compare by value, so `3` ≡ `3.0`);
//! * **result matching** — both trees execute to the same chart data on the
//!   database, even if the ASTs differ;
//! * **component matching** — per-component signature equality (VIS type,
//!   Axis/Select, Where, Join, Grouping, Binning, Order).

use nv_ast::{ChartType, Components, Hardness, Literal, Operand, Predicate, SetQuery, VisQuery};
use nv_core::{Nl2VisPredictor, NvBench};
use nv_data::execute;
use std::collections::BTreeMap;

/// Per-pair evaluation outcome.
#[derive(Debug, Clone)]
pub struct EvalCase {
    pub pair_id: usize,
    pub gold_chart: ChartType,
    pub hardness: Hardness,
    /// The system produced a parseable tree at all.
    pub predicted: bool,
    pub pred_chart: Option<ChartType>,
    pub tree_match: bool,
    pub result_match: bool,
    /// Per-component match in [`nv_ast::components::COMPONENT_NAMES`] order.
    pub comp_match: [bool; 7],
    /// Whether the component is present on either side (accuracy
    /// denominator).
    pub comp_present: [bool; 7],
}

/// Evaluation over a pair subset.
#[derive(Debug, Clone)]
pub struct EvalReport {
    pub system: String,
    pub cases: Vec<EvalCase>,
}

/// Normalize numeric literals so `3` and `3.0` compare equal at tree level.
fn normalize_tree(q: &VisQuery) -> VisQuery {
    let mut q = q.clone();
    fn norm_op(o: &mut Operand) {
        match o {
            Operand::Lit(l) => norm_lit(l),
            Operand::List(ls) => ls.iter_mut().for_each(norm_lit),
            Operand::Subquery(s) => norm_set(s),
        }
    }
    fn norm_lit(l: &mut Literal) {
        if let Literal::Float(f) = l {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                *l = Literal::Int(*f as i64);
            }
        }
    }
    fn norm_pred(p: &mut Predicate) {
        match p {
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                norm_pred(a);
                norm_pred(b);
            }
            Predicate::Cmp { rhs, .. } => norm_op(rhs),
            Predicate::Between { low, high, .. } => {
                norm_op(low);
                norm_op(high);
            }
            Predicate::In { rhs, .. } => norm_op(rhs),
            Predicate::Like { .. } => {}
        }
    }
    fn norm_set(s: &mut SetQuery) {
        match s {
            SetQuery::Simple(b) => {
                if let Some(f) = &mut b.filter {
                    norm_pred(f);
                }
            }
            SetQuery::Compound { left, right, .. } => {
                for b in [left, right] {
                    if let Some(f) = &mut b.filter {
                        norm_pred(f);
                    }
                }
            }
        }
    }
    norm_set(&mut q.query);
    q
}

/// Evaluate one predictor over a subset of benchmark pairs.
pub fn evaluate(pred: &dyn Nl2VisPredictor, bench: &NvBench, pair_idx: &[usize]) -> EvalReport {
    let mut cases = Vec::with_capacity(pair_idx.len());
    for &pi in pair_idx {
        let pair = &bench.pairs[pi];
        let vis = &bench.vis_objects[pair.vis_id];
        let db = bench.database(&vis.db_name).expect("db exists");
        let gold = normalize_tree(&vis.tree);
        let gold_comp = Components::of(&gold);

        let predicted = pred.predict(&pair.nl, db).map(|t| normalize_tree(&t));
        let mut case = EvalCase {
            pair_id: pair.pair_id,
            gold_chart: vis.chart,
            hardness: vis.hardness,
            predicted: predicted.is_some(),
            pred_chart: predicted.as_ref().and_then(|t| t.chart),
            tree_match: false,
            result_match: false,
            comp_match: [false; 7],
            comp_present: gold_comp.present_either(&Components::default()),
        };
        if let Some(p) = predicted {
            case.tree_match = p == gold;
            let pc = Components::of(&p);
            case.comp_match = pc.matches(&gold_comp);
            case.comp_present = pc.present_either(&gold_comp);
            case.result_match = if case.tree_match {
                true
            } else if p.chart == gold.chart {
                match (execute(db, &p), execute(db, &gold)) {
                    (Ok(a), Ok(b)) => a.data_eq(&b),
                    _ => false,
                }
            } else {
                false
            };
        }
        cases.push(case);
    }
    EvalReport { system: pred.name(), cases }
}

/// Top-k tree-matching accuracy (Table 5's DeepEye top-1/3/6/all columns):
/// a hit if any of the k predictions tree- or result-matches.
pub fn evaluate_top_k(
    pred: &dyn Nl2VisPredictor,
    bench: &NvBench,
    pair_idx: &[usize],
    k: usize,
) -> BTreeMap<Hardness, (usize, usize)> {
    let mut by_hard: BTreeMap<Hardness, (usize, usize)> = BTreeMap::new();
    for &pi in pair_idx {
        let pair = &bench.pairs[pi];
        let vis = &bench.vis_objects[pair.vis_id];
        let db = bench.database(&vis.db_name).expect("db exists");
        let gold = normalize_tree(&vis.tree);
        let hit = pred
            .predict_top_k(&pair.nl, db, k)
            .iter()
            .any(|t| normalize_tree(t) == gold);
        let e = by_hard.entry(vis.hardness).or_insert((0, 0));
        e.1 += 1;
        if hit {
            e.0 += 1;
        }
    }
    by_hard
}

impl EvalReport {
    pub fn n(&self) -> usize {
        self.cases.len()
    }

    /// Acc_tree.
    pub fn tree_accuracy(&self) -> f64 {
        ratio(self.cases.iter().filter(|c| c.tree_match).count(), self.n())
    }

    /// Acc_res.
    pub fn result_accuracy(&self) -> f64 {
        ratio(self.cases.iter().filter(|c| c.result_match).count(), self.n())
    }

    /// Tree accuracy by hardness (Figure 17(b) columns, Table 5 rows).
    pub fn by_hardness(&self) -> BTreeMap<Hardness, f64> {
        let mut m: BTreeMap<Hardness, (usize, usize)> = BTreeMap::new();
        for c in &self.cases {
            let e = m.entry(c.hardness).or_insert((0, 0));
            e.1 += 1;
            if c.tree_match {
                e.0 += 1;
            }
        }
        m.into_iter().map(|(h, (a, b))| (h, ratio(a, b))).collect()
    }

    /// Tree accuracy by gold chart type.
    pub fn by_chart(&self) -> BTreeMap<ChartType, f64> {
        let mut m: BTreeMap<ChartType, (usize, usize)> = BTreeMap::new();
        for c in &self.cases {
            let e = m.entry(c.gold_chart).or_insert((0, 0));
            e.1 += 1;
            if c.tree_match {
                e.0 += 1;
            }
        }
        m.into_iter().map(|(h, (a, b))| (h, ratio(a, b))).collect()
    }

    /// The full Figure-17 matrix: tree accuracy by (chart, hardness), with
    /// counts.
    pub fn matrix(&self) -> BTreeMap<(ChartType, Hardness), (usize, usize)> {
        let mut m: BTreeMap<(ChartType, Hardness), (usize, usize)> = BTreeMap::new();
        for c in &self.cases {
            let e = m.entry((c.gold_chart, c.hardness)).or_insert((0, 0));
            e.1 += 1;
            if c.tree_match {
                e.0 += 1;
            }
        }
        m
    }

    /// Table 4's "VIS" block: per gold chart type, how often the predicted
    /// chart type is right; plus the overall chart-type accuracy ("All").
    pub fn chart_type_accuracy(&self) -> (BTreeMap<ChartType, f64>, f64) {
        let mut m: BTreeMap<ChartType, (usize, usize)> = BTreeMap::new();
        let mut all = (0usize, 0usize);
        for c in &self.cases {
            let e = m.entry(c.gold_chart).or_insert((0, 0));
            e.1 += 1;
            all.1 += 1;
            if c.pred_chart == Some(c.gold_chart) {
                e.0 += 1;
                all.0 += 1;
            }
        }
        (
            m.into_iter().map(|(h, (a, b))| (h, ratio(a, b))).collect(),
            ratio(all.0, all.1),
        )
    }

    /// Table 4's Axis/Data blocks: accuracy per component, over pairs where
    /// the component is present on either side.
    pub fn component_accuracy(&self) -> BTreeMap<&'static str, f64> {
        let mut m = BTreeMap::new();
        for (i, name) in nv_ast::components::COMPONENT_NAMES.iter().enumerate() {
            let mut hit = 0;
            let mut tot = 0;
            for c in &self.cases {
                if c.comp_present[i] {
                    tot += 1;
                    if c.comp_match[i] {
                        hit += 1;
                    }
                }
            }
            if tot > 0 {
                m.insert(*name, ratio(hit, tot));
            }
        }
        m
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Accuracy of the V-slot heuristic alone (paper §4.2: ~92.3%): mask the
/// gold tree's values, refill from the NL, and check the values (not the
/// rest of the tree) are recovered.
pub fn value_fill_accuracy(bench: &NvBench, pair_idx: &[usize]) -> (f64, usize) {
    use crate::values::{fill_values, mask_values};
    let mut hit = 0usize;
    let mut tot = 0usize;
    for &pi in pair_idx {
        let pair = &bench.pairs[pi];
        let vis = &bench.vis_objects[pair.vis_id];
        let gold_tokens = vis.tree.to_tokens();
        let (masked, values) = mask_values(&gold_tokens);
        if values.is_empty() {
            continue;
        }
        tot += 1;
        let filled = fill_values(&masked, &pair.nl);
        if let (Ok(f), Ok(g)) = (nv_ast::parse_vql(&filled), nv_ast::parse_vql(&gold_tokens)) {
            if normalize_tree(&f) == normalize_tree(&g) {
                hit += 1;
            }
        }
    }
    (ratio(hit, tot), tot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::parse_vql_str;
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_data::Database;
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(31));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    /// Pair indices whose NL text is unique benchmark-wide (the test oracle
    /// looks trees up by NL, so duplicated NL would be ambiguous).
    fn unique_nl_idx(b: &NvBench, cap: usize) -> Vec<usize> {
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for p in &b.pairs {
            *counts.entry(p.nl.as_str()).or_default() += 1;
        }
        (0..b.pairs.len())
            .filter(|&i| counts[b.pairs[i].nl.as_str()] == 1)
            .take(cap)
            .collect()
    }

    /// An oracle that always returns the gold tree (upper bound), and a
    /// chart-flipping near-miss predictor.
    struct Oracle<'a>(&'a NvBench, bool);

    impl Nl2VisPredictor for Oracle<'_> {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn predict(&self, nl: &str, _db: &Database) -> Option<VisQuery> {
            let pair = self.0.pairs.iter().find(|p| p.nl == nl)?;
            let mut tree = self.0.vis_objects[pair.vis_id].tree.clone();
            if self.1 {
                // Flip the chart type to spoil VIS while keeping data parts.
                tree.chart = Some(match tree.chart.unwrap() {
                    ChartType::Bar => ChartType::Pie,
                    _ => ChartType::Bar,
                });
            }
            Some(tree)
        }
    }

    #[test]
    fn oracle_scores_perfectly() {
        let b = bench();
        let idx = unique_nl_idx(&b, 40);
        let r = evaluate(&Oracle(&b, false), &b, &idx);
        assert_eq!(r.tree_accuracy(), 1.0);
        assert_eq!(r.result_accuracy(), 1.0);
        let (_, all_chart) = r.chart_type_accuracy();
        assert_eq!(all_chart, 1.0);
        for (_, acc) in r.component_accuracy() {
            assert_eq!(acc, 1.0);
        }
        for (_, acc) in r.by_hardness() {
            assert_eq!(acc, 1.0);
        }
    }

    #[test]
    fn chart_flip_spoils_vis_but_not_data_components() {
        let b = bench();
        let idx = unique_nl_idx(&b, 40);
        let r = evaluate(&Oracle(&b, true), &b, &idx);
        assert_eq!(r.tree_accuracy(), 0.0);
        let (_, chart_acc) = r.chart_type_accuracy();
        assert_eq!(chart_acc, 0.0);
        let comp = r.component_accuracy();
        assert_eq!(comp["axis"], 1.0);
        assert_eq!(comp["vis"], 0.0);
        // Result matching requires the same chart type.
        assert_eq!(r.result_accuracy(), 0.0);
    }

    #[test]
    fn never_predicting_scores_zero() {
        struct Mute;
        impl Nl2VisPredictor for Mute {
            fn name(&self) -> String {
                "mute".into()
            }
            fn predict(&self, _: &str, _: &Database) -> Option<VisQuery> {
                None
            }
        }
        let b = bench();
        let idx: Vec<usize> = (0..b.pairs.len().min(10)).collect();
        let r = evaluate(&Mute, &b, &idx);
        assert_eq!(r.tree_accuracy(), 0.0);
        assert!(r.cases.iter().all(|c| !c.predicted));
    }

    #[test]
    fn normalize_tree_equates_int_float() {
        let a = parse_vql_str("select t.a from t where t.x > 3").unwrap();
        let b = parse_vql_str("select t.a from t where t.x > 3.0").unwrap();
        assert_ne!(a, b);
        assert_eq!(normalize_tree(&a), normalize_tree(&b));
    }

    #[test]
    fn value_fill_accuracy_is_high_on_synthetic_nl() {
        let b = bench();
        let idx: Vec<usize> = (0..b.pairs.len()).collect();
        let (acc, n) = value_fill_accuracy(&b, &idx);
        assert!(n > 10, "need pairs with values, got {n}");
        assert!(acc > 0.6, "value fill accuracy {acc} over {n}");
    }

    #[test]
    fn top_k_counts_by_hardness() {
        let b = bench();
        let idx = unique_nl_idx(&b, 30);
        let m = evaluate_top_k(&Oracle(&b, false), &b, &idx, 1);
        let total: usize = m.values().map(|(_, t)| t).sum();
        let hits: usize = m.values().map(|(h, _)| h).sum();
        assert_eq!(total, idx.len());
        assert_eq!(hits, idx.len());
    }
}
