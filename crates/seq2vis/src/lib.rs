//! # nv-seq2vis — neural NL2VIS translation (paper §4)
//!
//! * [`vocab`] — shared NL/schema/VQL vocabulary (one id space, as the copy
//!   mechanism requires);
//! * [`data`] — (NL, VIS) pairs → encoder/decoder samples, with literal
//!   values masked to `<value>`;
//! * [`values`] — the §4.2 heuristic that extracts values from the NL and
//!   fills decoded V-slots (~92% accurate in the paper);
//! * [`model`] — the three seq2vis variants over the `nv-nn` substrate;
//! * [`metrics`] — tree / result / component matching accuracy and the
//!   aggregations behind Table 4, Table 5 and Figure 17.

pub mod data;
pub mod metrics;
pub mod model;
pub mod values;
pub mod vocab;

pub use data::{build_dataset, source_tokens, target_tokens, Dataset};
pub use metrics::{evaluate, evaluate_top_k, value_fill_accuracy, EvalCase, EvalReport};
pub use model::{Seq2Vis, Seq2VisConfig};
pub use values::{extract_candidates, fill_values, mask_values, Candidate};
pub use vocab::{nl_tokens, Vocab};
