//! The seq2vis translator: neural seq2seq + vocab + value filling, exposed
//! through the shared [`Nl2VisPredictor`] interface.

use crate::data::{build_dataset, source_tokens, Dataset};
use crate::values::fill_values;
use crate::vocab::{Vocab, BOS, EOS};
use nv_ast::tokens::parse_vql;
use nv_ast::VisQuery;
use nv_core::{Nl2VisPredictor, NvBench, Split};
use nv_data::Database;
use nv_nn::{fit, KernelPolicy, ModelVariant, Sample, Seq2Seq, Seq2SeqConfig, TrainReport};

/// Training-size hyperparameters.
#[derive(Debug, Clone)]
pub struct Seq2VisConfig {
    pub variant: ModelVariant,
    pub embed_dim: usize,
    pub hidden: usize,
    pub lr: f32,
    pub batch: usize,
    pub max_epochs: usize,
    /// Early-stopping patience (paper: 5).
    pub patience: usize,
    /// NL-token frequency cutoff for the vocab.
    pub min_freq: usize,
    pub seed: u64,
    /// Batch-member worker threads for training (0 = one per core);
    /// training is bit-identical for any value.
    pub threads: usize,
}

impl Seq2VisConfig {
    pub fn new(variant: ModelVariant) -> Seq2VisConfig {
        Seq2VisConfig {
            variant,
            embed_dim: 48,
            hidden: 64,
            lr: 2e-3,
            batch: 16,
            max_epochs: 18,
            patience: 5,
            min_freq: 2,
            seed: 42,
            threads: 0,
        }
    }

    /// Tiny settings for unit tests.
    pub fn tiny(variant: ModelVariant) -> Seq2VisConfig {
        Seq2VisConfig {
            embed_dim: 24,
            hidden: 32,
            max_epochs: 6,
            patience: 3,
            ..Seq2VisConfig::new(variant)
        }
    }
}

/// A trained (or trainable) seq2vis model.
pub struct Seq2Vis {
    pub cfg: Seq2VisConfig,
    pub vocab: Vocab,
    model: Seq2Seq,
}

impl Seq2Vis {
    /// Build the dataset and an untrained model for a benchmark.
    pub fn prepare(bench: &NvBench, cfg: Seq2VisConfig) -> (Seq2Vis, Dataset) {
        let dataset = build_dataset(bench, cfg.min_freq);
        let model = Seq2Vis::from_dataset(&dataset, cfg);
        (model, dataset)
    }

    /// A fresh untrained model over an already-built dataset (avoids
    /// re-tokenizing the benchmark when training many models, e.g. the
    /// Figure-18 injection sweep).
    pub fn from_dataset(dataset: &Dataset, cfg: Seq2VisConfig) -> Seq2Vis {
        let s2s_cfg = Seq2SeqConfig {
            vocab: dataset.vocab.len(),
            embed_dim: cfg.embed_dim,
            hidden: cfg.hidden,
            variant: cfg.variant,
            seed: cfg.seed,
            lr: cfg.lr,
            clip: 2.0,
            batch: cfg.batch,
            bos: BOS,
            eos: EOS,
            max_decode_len: 80,
            threads: cfg.threads,
            kernel: KernelPolicy::Fast,
        };
        let model = Seq2Seq::new(s2s_cfg);
        Seq2Vis { cfg, vocab: dataset.vocab.clone(), model }
    }

    /// Train on a split of the dataset.
    pub fn train(&mut self, dataset: &Dataset, split: &Split) -> TrainReport {
        let train = dataset.subset(&split.train);
        let val = dataset.subset(&split.val);
        fit(&mut self.model, &train, &val, self.cfg.max_epochs, self.cfg.patience)
    }

    /// Train on explicit sample vectors (used by the §4.5 injection
    /// experiment, which manipulates the training set directly).
    pub fn train_on(&mut self, train: &[Sample], val: &[Sample]) -> TrainReport {
        fit(&mut self.model, train, val, self.cfg.max_epochs, self.cfg.patience)
    }

    /// Decode the masked VQL token sequence for an NL query.
    pub fn predict_tokens(&self, nl: &str, db: &Database) -> Vec<String> {
        let src = self.vocab.encode(&source_tokens(nl, db));
        let out_ids = self.model.decode(&src);
        self.vocab.decode(&out_ids)
    }

    pub fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }
}

impl Nl2VisPredictor for Seq2Vis {
    fn name(&self) -> String {
        self.cfg.variant.name().to_string()
    }

    fn predict(&self, nl: &str, db: &Database) -> Option<VisQuery> {
        let masked = self.predict_tokens(nl, db);
        let filled = fill_values(&masked, nl);
        parse_vql(&filled).ok()
    }

    /// Beam-search top-k (an extension over the paper's greedy decoder);
    /// unparseable beams are dropped.
    fn predict_top_k(&self, nl: &str, db: &Database, k: usize) -> Vec<VisQuery> {
        if k == 0 {
            return vec![];
        }
        let src = self.vocab.encode(&source_tokens(nl, db));
        let mut out = Vec::new();
        for (ids, _score) in self.model.decode_beam(&src, k) {
            let masked = self.vocab.decode(&ids);
            let filled = fill_values(&masked, nl);
            if let Ok(tree) = parse_vql(&filled) {
                if !out.contains(&tree) {
                    out.push(tree);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_core::{Nl2SqlToNl2Vis, SynthesizerConfig};
    use nv_spider::{CorpusConfig, SpiderCorpus};

    fn bench() -> NvBench {
        let corpus = SpiderCorpus::generate(&CorpusConfig::small(21));
        Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
    }

    #[test]
    fn prepare_builds_consistent_model() {
        let b = bench();
        let (model, ds) = Seq2Vis::prepare(&b, Seq2VisConfig::tiny(ModelVariant::Attention));
        assert_eq!(model.vocab.len(), ds.vocab.len());
        assert!(model.n_parameters() > 10_000);
        assert_eq!(model.name(), "seq2vis+attention");
    }

    #[test]
    fn untrained_model_still_predicts_something_or_none() {
        let b = bench();
        let (model, _) = Seq2Vis::prepare(&b, Seq2VisConfig::tiny(ModelVariant::Basic));
        let pair = &b.pairs[0];
        let vis = &b.vis_objects[pair.vis_id];
        let db = b.database(&vis.db_name).unwrap();
        // Untrained output is garbage; it must not panic either way.
        let _ = model.predict(&pair.nl, db);
    }

    #[test]
    fn training_improves_val_loss() {
        let b = bench();
        let (model, ds) = Seq2Vis::prepare(&b, Seq2VisConfig::tiny(ModelVariant::Attention));
        let split = b.split(42);
        // Use a small subset to keep the test fast.
        let train: Vec<_> = ds.subset(&split.train[..60.min(split.train.len())]);
        let val: Vec<_> = ds.subset(&split.val);
        let before = {
            let mut probe = model;
            let report = probe.train_on(&train, &val);
            assert!(report.epochs_run >= 2);
            assert!(
                report.val_losses.last().unwrap() <= report.val_losses.first().unwrap(),
                "{:?}",
                report.val_losses
            );
            report
        };
        assert!(before.best_val_loss.is_finite());
    }
}
