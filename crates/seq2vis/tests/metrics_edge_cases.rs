//! Edge cases for the §4.2 evaluation metrics (ISSUE 5 satellite): empty
//! inputs, degenerate predictions, zero-support aggregation buckets, and a
//! pinned case where tree matching and result matching disagree.

use nv_ast::{ChartType, Predicate, VisQuery};
use nv_core::{Nl2SqlToNl2Vis, Nl2VisPredictor, NvBench, SynthesizerConfig};
use nv_data::Database;
use nv_seq2vis::metrics::{evaluate, evaluate_top_k};
use nv_spider::{CorpusConfig, SpiderCorpus};

fn bench() -> NvBench {
    let corpus = SpiderCorpus::generate(&CorpusConfig::small(31));
    Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench
}

/// Pair indices whose NL text is unique benchmark-wide (the lookup-based
/// test predictors would be ambiguous on duplicated NL).
fn unique_nl_idx(b: &NvBench, cap: usize) -> Vec<usize> {
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for p in &b.pairs {
        *counts.entry(p.nl.as_str()).or_default() += 1;
    }
    (0..b.pairs.len())
        .filter(|&i| counts[b.pairs[i].nl.as_str()] == 1)
        .take(cap)
        .collect()
}

/// Looks the gold tree up by NL and applies a mutation before returning it.
struct Mutator<'a> {
    bench: &'a NvBench,
    mutate: fn(&mut VisQuery),
}

impl Nl2VisPredictor for Mutator<'_> {
    fn name(&self) -> String {
        "mutator".into()
    }
    fn predict(&self, nl: &str, _db: &Database) -> Option<VisQuery> {
        let pair = self.bench.pairs.iter().find(|p| p.nl == nl)?;
        let mut tree = self.bench.vis_objects[pair.vis_id].tree.clone();
        (self.mutate)(&mut tree);
        Some(tree)
    }
}

/// An evaluation over **zero pairs** must report 0.0 accuracies (never
/// NaN) and empty aggregation tables.
#[test]
fn empty_pair_set_reports_zero_not_nan() {
    let b = bench();
    let noop = Mutator { bench: &b, mutate: |_| {} };
    let r = evaluate(&noop, &b, &[]);
    assert_eq!(r.n(), 0);
    assert_eq!(r.tree_accuracy(), 0.0);
    assert_eq!(r.result_accuracy(), 0.0);
    assert!(r.tree_accuracy().is_finite() && r.result_accuracy().is_finite());
    assert!(r.by_hardness().is_empty());
    assert!(r.by_chart().is_empty());
    assert!(r.matrix().is_empty());
    assert!(r.component_accuracy().is_empty());
    let (by_chart, all) = r.chart_type_accuracy();
    assert!(by_chart.is_empty());
    assert_eq!(all, 0.0);
    assert!(evaluate_top_k(&noop, &b, &[], 3).is_empty());
}

/// A prediction with a **duplicated select column** is a legal tree: the
/// evaluator must not panic, must score it as a tree mismatch, and every
/// reported number must stay finite.
#[test]
fn duplicate_select_components_are_scored_not_crashed() {
    let b = bench();
    let dup = Mutator {
        bench: &b,
        mutate: |t| {
            let body = t.query.primary_mut();
            if let Some(last) = body.select.last().cloned() {
                body.select.push(last);
            }
        },
    };
    let idx = unique_nl_idx(&b, 30);
    let r = evaluate(&dup, &b, &idx);
    assert_eq!(r.n(), idx.len());
    // Duplicating an axis attribute changes the tree.
    assert_eq!(r.tree_accuracy(), 0.0);
    assert!(r.result_accuracy().is_finite());
    for (_, acc) in r.component_accuracy() {
        assert!((0.0..=1.0).contains(&acc));
    }
    // The chart type is untouched by the mutation.
    let (_, chart_acc) = r.chart_type_accuracy();
    assert_eq!(chart_acc, 1.0);
}

/// Per-chart and per-(chart, hardness) buckets appear only for charts with
/// support in the evaluated subset — absent buckets are omitted rather
/// than reported as 0/0 = NaN.
#[test]
fn zero_support_chart_buckets_are_omitted_and_finite() {
    let b = bench();
    let noop = Mutator { bench: &b, mutate: |_| {} };
    // Evaluate only the bar-chart pairs: every other chart bucket has zero
    // support.
    let bar_idx: Vec<usize> = unique_nl_idx(&b, usize::MAX)
        .into_iter()
        .filter(|&i| b.vis_objects[b.pairs[i].vis_id].chart == ChartType::Bar)
        .take(20)
        .collect();
    assert!(!bar_idx.is_empty(), "corpus has no bar charts");
    let r = evaluate(&noop, &b, &bar_idx);
    let by_chart = r.by_chart();
    assert_eq!(by_chart.keys().copied().collect::<Vec<_>>(), vec![ChartType::Bar]);
    assert!(by_chart.values().all(|v| v.is_finite()));
    let (chart_acc, all) = r.chart_type_accuracy();
    assert_eq!(chart_acc.len(), 1);
    assert!(all.is_finite());
    for ((chart, _), (hit, tot)) in r.matrix() {
        assert_eq!(chart, ChartType::Bar);
        assert!(tot > 0 && hit <= tot);
    }
    // Components without support on any pair are omitted, not NaN.
    for (_, acc) in r.component_accuracy() {
        assert!(acc.is_finite());
    }
}

/// Pinned disagreement case: swapping the conjuncts of an `AND` filter
/// changes the AST (tree mismatch) but not the rows it selects (result
/// match). This is exactly the gap result matching exists to close.
#[test]
fn swapped_and_conjuncts_fail_tree_match_but_pass_result_match() {
    let b = bench();
    let swap = Mutator {
        bench: &b,
        mutate: |t| {
            for body in t.query.bodies_mut() {
                body.filter = match body.filter.take() {
                    Some(Predicate::And(l, r)) => Some(Predicate::And(r, l)),
                    other => other,
                };
            }
        },
    };
    // Restrict to pairs whose gold filter really is a top-level AND, so
    // every evaluated case exercises the disagreement.
    let and_idx: Vec<usize> = unique_nl_idx(&b, usize::MAX)
        .into_iter()
        .filter(|&i| {
            b.vis_objects[b.pairs[i].vis_id]
                .tree
                .query
                .bodies()
                .iter()
                .any(|body| matches!(body.filter, Some(Predicate::And(..))))
        })
        .take(12)
        .collect();
    assert!(!and_idx.is_empty(), "corpus has no AND filters to pin against");
    let r = evaluate(&swap, &b, &and_idx);
    assert_eq!(r.tree_accuracy(), 0.0, "swapped conjuncts must not tree-match");
    assert_eq!(r.result_accuracy(), 1.0, "swapped conjuncts must result-match");
    for c in &r.cases {
        assert!(!c.tree_match && c.result_match);
    }
}
