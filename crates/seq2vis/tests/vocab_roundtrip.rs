//! Property tests for the seq2vis vocabulary and NL tokenizer (ISSUE 5
//! satellite): `nl_tokens` never panics on arbitrary text, the
//! tokens → ids → tokens round trip through a vocab built over them is
//! lossless, and canonical escaped-quote tokens (`'it''s'`-style, the PR-4
//! quoting convention shared with the VQL tokenizer) survive intact.

use nv_seq2vis::vocab::{nl_tokens, Vocab, UNK};
use proptest::prelude::*;

/// Messy free text: words, punctuation the tokenizer splits on, quote
/// characters (balanced or not), dots in identifier/number/sentence
/// positions, and some non-ASCII.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[a-zA-Z]{1,8}".prop_map(|w| w),
            "[0-9]{1,3}(\\.[0-9]{1,2})?".prop_map(|n| n),
            "[a-z]{1,4}\\.[a-z]{1,4}".prop_map(|c| c),
            Just("'".to_string()),
            Just("''".to_string()),
            Just(",".to_string()),
            Just("?".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(".".to_string()),
            Just(":".to_string()),
            Just("é漢".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.join(" "))
}

proptest! {
    /// The tokenizer totals: no panic, no empty tokens, nothing containing
    /// whitespace outside a quoted span, everything lowercased.
    #[test]
    fn nl_tokens_never_panics_and_is_canonical(s in arb_text()) {
        let toks = nl_tokens(&s);
        for t in &toks {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.to_lowercase(), t.clone());
            if !t.starts_with('\'') {
                prop_assert!(!t.chars().any(char::is_whitespace), "{:?}", t);
            }
        }
    }

    /// tokens → encode → decode is the identity once the vocab contains
    /// the tokens (min_freq = 1 keeps everything).
    #[test]
    fn encode_decode_round_trips(s in arb_text()) {
        let toks = nl_tokens(&s);
        let vocab = Vocab::build([toks.as_slice()].into_iter(), 1);
        let ids = vocab.encode(&toks);
        prop_assert_eq!(vocab.decode(&ids), toks);
    }

    /// Tokens dropped by the frequency cutoff decode to `<unk>` — decoding
    /// never panics or invents tokens.
    #[test]
    fn rare_tokens_degrade_to_unk_without_panic(s in arb_text()) {
        let toks = nl_tokens(&s);
        // min_freq 2 over a single stream drops every unrepeated token.
        let vocab = Vocab::build([toks.as_slice()].into_iter(), 2);
        let ids = vocab.encode(&toks);
        let back = vocab.decode(&ids);
        prop_assert_eq!(back.len(), toks.len());
        for (id, (orig, dec)) in ids.iter().zip(toks.iter().zip(&back)) {
            if *id == UNK && orig != "<unk>" {
                prop_assert_eq!(dec.as_str(), "<unk>");
            } else {
                prop_assert_eq!(dec, orig);
            }
        }
    }

    /// A quoted span whose inner text carries a doubled-quote escape is
    /// kept as ONE canonical token (the PR-4 convention shared with
    /// `tokenize_vql`), and survives the vocab round trip bit-for-bit.
    #[test]
    fn escaped_quote_tokens_round_trip(inner in "[a-z]{1,6}", tail in "[a-z]{1,6}") {
        let text = format!("find '{inner}''{tail}' rows");
        let toks = nl_tokens(&text);
        let quoted = format!("'{inner}''{tail}'");
        prop_assert!(
            toks.contains(&quoted),
            "tokenizer split the escaped span: {:?}", toks
        );
        let vocab = Vocab::build([toks.as_slice()].into_iter(), 1);
        let ids = vocab.encode(&toks);
        let back = vocab.decode(&ids);
        prop_assert!(back.contains(&quoted));
        prop_assert_eq!(back, toks);
    }
}

/// Deterministic pin of the escape convention, independent of generators.
#[test]
fn escaped_quote_pin() {
    let toks = nl_tokens("Who said 'it''s fine' yesterday?");
    assert!(toks.contains(&"'it''s fine'".to_string()), "{toks:?}");
    let vocab = Vocab::build([toks.as_slice()].into_iter(), 1);
    assert_eq!(vocab.decode(&vocab.encode(&toks)), toks);
}
