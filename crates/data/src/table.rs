//! In-memory tables and databases.

use crate::schema::{Column, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A row-oriented in-memory table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Table {
        Table { schema, rows: Vec::new() }
    }

    /// Build a table, validating that every row has the schema's arity.
    pub fn with_rows(schema: TableSchema, rows: Vec<Vec<Value>>) -> Result<Table, String> {
        let arity = schema.columns.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != arity {
                return Err(format!(
                    "row {i} of table '{}' has {} values, schema has {arity} columns",
                    schema.name,
                    r.len()
                ));
            }
        }
        Ok(Table { schema, rows })
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn n_cols(&self) -> usize {
        self.schema.columns.len()
    }

    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.n_cols());
        self.rows.push(row);
    }

    /// All values of one column, by index.
    pub fn column_values(&self, idx: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[idx].clone()).collect()
    }

    /// All values of one column, by name.
    pub fn column_values_by_name(&self, name: &str) -> Option<Vec<Value>> {
        self.schema.column_index(name).map(|i| self.column_values(i))
    }

    /// Number of distinct non-null values in a column.
    pub fn distinct_count(&self, idx: usize) -> usize {
        self.rows
            .iter()
            .filter(|r| !r[idx].is_null())
            .map(|r| &r[idx])
            .collect::<HashSet<_>>()
            .len()
    }

    /// Re-infer every column's C/T/Q class from the stored data.
    pub fn infer_column_types(&mut self) {
        for i in 0..self.n_cols() {
            let vals = self.column_values(i);
            self.schema.columns[i].ctype = ColumnType::infer(&vals);
        }
    }
}

/// A named database: a set of tables, foreign keys and a domain tag
/// (nvBench groups its 153 databases into 105 domains).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    pub domain: String,
    pub tables: Vec<Table>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl Database {
    pub fn new(name: impl Into<String>, domain: impl Into<String>) -> Database {
        Database {
            name: name.into(),
            domain: domain.into(),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name().eq_ignore_ascii_case(name))
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.schema.name.eq_ignore_ascii_case(name))
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
    ) {
        self.foreign_keys.push(ForeignKey {
            from_table: from_table.into(),
            from_column: from_column.into(),
            to_table: to_table.into(),
            to_column: to_column.into(),
        });
    }

    /// The FK connecting two tables, in either direction.
    pub fn fk_between(&self, a: &str, b: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| {
            (fk.from_table.eq_ignore_ascii_case(a) && fk.to_table.eq_ignore_ascii_case(b))
                || (fk.from_table.eq_ignore_ascii_case(b) && fk.to_table.eq_ignore_ascii_case(a))
        })
    }

    /// Resolve a column's class; `*` counts as categorical.
    pub fn column_type(&self, table: &str, column: &str) -> Option<ColumnType> {
        if column == "*" {
            return Some(ColumnType::Categorical);
        }
        self.table(table)?.schema.column(column).map(|c| c.ctype)
    }

    /// The flat list of (table, column) pairs — the schema sequence the
    /// seq2vis encoder appends to the NL input.
    pub fn schema_tokens(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.tables {
            for c in &t.schema.columns {
                out.push(format!("{}.{}", t.name(), c.name));
            }
        }
        out
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::n_rows).sum()
    }

    /// Total number of columns across all tables.
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(Table::n_cols).sum()
    }
}

/// Convenience builder for tests and examples.
pub fn table_from(
    name: &str,
    cols: &[(&str, ColumnType)],
    rows: Vec<Vec<Value>>,
) -> Table {
    let schema = TableSchema::new(
        name,
        cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
    );
    Table::with_rows(schema, rows).expect("row arity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        table_from(
            "people",
            &[
                ("name", ColumnType::Categorical),
                ("age", ColumnType::Quantitative),
            ],
            vec![
                vec![Value::text("ann"), Value::Int(30)],
                vec![Value::text("bob"), Value::Int(41)],
                vec![Value::text("cat"), Value::Int(30)],
            ],
        )
    }

    #[test]
    fn arity_validation() {
        let schema = TableSchema::new("t", vec![Column::categorical("a")]);
        let err = Table::with_rows(schema, vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(err.is_err());
    }

    #[test]
    fn distinct_and_columns() {
        let t = people();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.distinct_count(1), 2);
        assert_eq!(
            t.column_values_by_name("age").unwrap(),
            vec![Value::Int(30), Value::Int(41), Value::Int(30)]
        );
        assert!(t.column_values_by_name("ghost").is_none());
    }

    #[test]
    fn infer_types_updates_schema() {
        let mut t = table_from(
            "t",
            &[("x", ColumnType::Categorical)],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        t.infer_column_types();
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Quantitative);
    }

    #[test]
    fn database_lookup_and_fk() {
        let mut db = Database::new("uni", "College");
        db.add_table(people());
        db.add_table(table_from(
            "dept",
            &[("id", ColumnType::Quantitative)],
            vec![vec![Value::Int(1)]],
        ));
        db.add_foreign_key("people", "dept_id", "dept", "id");
        assert!(db.table("PEOPLE").is_some());
        assert!(db.fk_between("dept", "people").is_some());
        assert!(db.fk_between("people", "ghost").is_none());
        assert_eq!(db.column_type("people", "age"), Some(ColumnType::Quantitative));
        assert_eq!(db.column_type("people", "*"), Some(ColumnType::Categorical));
        assert_eq!(db.total_rows(), 4);
        assert_eq!(db.total_columns(), 3);
        assert_eq!(db.schema_tokens()[0], "people.name");
    }
}
