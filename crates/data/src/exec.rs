//! Query executor: evaluates a unified AST (the *what data* part of a SQL or
//! VIS tree) against a [`Database`].
//!
//! Supports the full Figure-5 grammar: projection with aggregates
//! (max/min/count/sum/avg, DISTINCT), hash equi-joins, WHERE filters with
//! and/or, between, (not) like, (not) in, nested subqueries, HAVING
//! (aggregated filter leaves are applied after grouping), GROUP BY, temporal
//! and numeric binning, ORDER BY, superlatives (`top k by A`), and
//! INTERSECT / UNION / EXCEPT with SQL set semantics.
//!
//! The executor powers three things downstream: chart-data rendering
//! (`nv-render`), "result matching accuracy" for seq2vis, and DeepEye
//! feature extraction (`nv-quality`).
//!
//! ## Execution caching
//!
//! Synthesis executes dozens of candidate VIS queries per (NL, SQL) pair,
//! and the candidates overwhelmingly share their FROM/JOIN/WHERE fragment
//! (they vary the projection, grouping, and binning on top of one scan).
//! [`ExecCache`] exploits that: it memoizes, per database,
//!
//! 1. **scans** — the joined + WHERE-filtered row set, keyed by the
//!    canonical form of `(FROM, JOINs, WHERE)`;
//! 2. **groups** — grouped/binned row-index partitions over a cached scan,
//!    keyed by scan key plus the group/bin spec;
//! 3. **subquery results** — full result sets of predicate subqueries,
//!    keyed by the canonical sub-tree (this also lifts subquery execution
//!    out of the per-row predicate loop).
//!
//! Cached data is shared via `Arc` and never mutated, so
//! [`execute_with_cache`] is bit-identical to [`execute`] — the cache is a
//! pure performance layer. A cache is bound to the first database it sees
//! and refuses reuse against another.

use crate::schema::ColumnType;
use crate::table::Database;
use crate::value::Value;
use nv_ast::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    UnknownTable(String),
    UnknownColumn(String),
    TypeError(String),
    Unsupported(String),
    ArityMismatch { left: usize, right: usize },
    /// An [`ExecBudget`] limit was hit (rows, subquery depth, or fuel).
    /// Deliberately not retried: a pathological query stays pathological.
    ResourceExhausted(String),
    /// Invariant violation or injected fault — never expected in production.
    Internal(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::ArityMismatch { left, right } => {
                write!(f, "set-op arity mismatch: {left} vs {right}")
            }
            ExecError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            ExecError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

// ---- resource budgets ----------------------------------------------------

/// Hard resource limits for one query execution. Every entry point threads a
/// budget through the whole evaluation (joins, scans, grouping, subqueries);
/// exceeding any limit aborts the query with
/// [`ExecError::ResourceExhausted`] instead of hanging or exhausting memory.
///
/// The defaults are deliberately generous — far above anything a real corpus
/// query needs — so they only trip on pathological inputs (e.g. unconstrained
/// cross joins). Row limits are checked *before* materializing, which is what
/// makes them an OOM guard rather than an after-the-fact diagnostic.
///
/// Fuel is charged per row visited. Cache hits *replay* the charge the
/// cached computation made when it was built (fuel and peak-row checks), so
/// a warm execution reports exactly the same budget spend as a cold one and
/// trips the same limits — the cache is a pure wall-clock optimization,
/// invisible to budget accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecBudget {
    /// Max rows any intermediate relation may materialize (joins, scans,
    /// set-op outputs).
    pub max_rows: usize,
    /// Max nesting depth of predicate subqueries.
    pub max_subquery_depth: usize,
    /// Total row-visit steps across the whole execution.
    pub fuel: u64,
}

impl Default for ExecBudget {
    fn default() -> ExecBudget {
        ExecBudget { max_rows: 4_000_000, max_subquery_depth: 16, fuel: 50_000_000 }
    }
}

impl ExecBudget {
    /// No limits at all — pre-budget behaviour.
    pub fn unlimited() -> ExecBudget {
        ExecBudget { max_rows: usize::MAX, max_subquery_depth: usize::MAX, fuel: u64::MAX }
    }
}

/// Budget accounting carried through one execution.
struct Meter {
    budget: ExecBudget,
    fuel_used: u64,
    depth: usize,
    /// Largest row count passed to [`Self::check_rows`] in the current
    /// section (see [`Self::begin_section`]); after all sections close,
    /// the largest across the whole execution.
    peak_rows: usize,
}

impl Meter {
    fn new(budget: ExecBudget) -> Meter {
        Meter { budget, fuel_used: 0, depth: 0, peak_rows: 0 }
    }

    /// Start measuring a cacheable computation: returns a mark capturing
    /// fuel-so-far and the enclosing section's peak. Sections nest.
    fn begin_section(&mut self) -> (u64, usize) {
        (self.fuel_used, std::mem::take(&mut self.peak_rows))
    }

    /// Close a section: returns `(fuel_delta, peak_rows)` spent inside it —
    /// exactly what a cache hit must later [`Self::replay`] — and folds the
    /// section's peak back into the enclosing one.
    fn end_section(&mut self, mark: (u64, usize)) -> (u64, usize) {
        let fuel = self.fuel_used - mark.0;
        let peak = self.peak_rows;
        self.peak_rows = peak.max(mark.1);
        (fuel, peak)
    }

    /// Charge a cache hit with the spend its cold construction recorded,
    /// so warm and cold runs are indistinguishable to the budget.
    fn replay(&mut self, fuel: u64, peak_rows: usize, what: &str) -> Result<(), ExecError> {
        self.check_rows(peak_rows, what)?;
        self.charge(fuel)
    }

    /// Spend `units` fuel (one unit ≈ one row visited).
    fn charge(&mut self, units: u64) -> Result<(), ExecError> {
        self.fuel_used = self.fuel_used.saturating_add(units);
        if self.fuel_used > self.budget.fuel {
            return Err(ExecError::ResourceExhausted(format!(
                "fuel limit of {} steps exceeded",
                self.budget.fuel
            )));
        }
        Ok(())
    }

    /// Refuse to materialize `n` rows if over the row limit. Call *before*
    /// allocating.
    fn check_rows(&mut self, n: usize, what: &str) -> Result<(), ExecError> {
        self.peak_rows = self.peak_rows.max(n);
        if n > self.budget.max_rows {
            return Err(ExecError::ResourceExhausted(format!(
                "{what} would materialize {n} rows (limit {})",
                self.budget.max_rows
            )));
        }
        Ok(())
    }

    fn enter_subquery(&mut self) -> Result<(), ExecError> {
        self.depth += 1;
        if self.depth > self.budget.max_subquery_depth {
            return Err(ExecError::ResourceExhausted(format!(
                "subquery depth {} exceeds limit {}",
                self.depth, self.budget.max_subquery_depth
            )));
        }
        Ok(())
    }

    fn exit_subquery(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }
}

/// The output of a query: named, typed columns plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Display names, e.g. `["flight.destination", "count(flight.*)"]`.
    pub columns: Vec<String>,
    pub types: Vec<ColumnType>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Order-insensitive, float-tolerant equality — the paper's "vis result
    /// matching": two queries match if they produce the same data, even when
    /// their ASTs differ.
    pub fn data_eq(&self, other: &ResultSet) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let norm = |rs: &ResultSet| -> Vec<Vec<String>> {
            let mut rows: Vec<Vec<String>> = rs
                .rows
                .iter()
                .map(|r| r.iter().map(norm_value).collect())
                .collect();
            rows.sort();
            rows
        };
        norm(self) == norm(other)
    }

    /// Strict order-insensitive equality for differential testing: column
    /// names, column types, and the row multiset must all match. Rows are
    /// compared through the same float normalization as [`data_eq`]
    /// (`Self::data_eq`) so an `Int`-path and a `Float`-path aggregate of
    /// the same quantity agree, but unlike `data_eq` a renamed or retyped
    /// column is a mismatch.
    pub fn multiset_eq(&self, other: &ResultSet) -> bool {
        self.columns == other.columns && self.types == other.types && self.data_eq(other)
    }
}

fn norm_value(v: &Value) -> String {
    match v.as_f64() {
        // Round to 6 significant decimals so float-path vs int-path
        // aggregates compare equal.
        Some(f) => format!("{:.6}", f),
        None => v.label(),
    }
}

// ---- execution cache -----------------------------------------------------

/// Hit/miss counters per cache layer; exposed for benchmarks and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub scan_hits: u64,
    pub scan_misses: u64,
    pub group_hits: u64,
    pub group_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.scan_hits + self.group_hits + self.result_hits
    }

    pub fn misses(&self) -> u64 {
        self.scan_misses + self.group_misses + self.result_misses
    }
}

/// Per-database memo of scans, groupings, and subquery results (see the
/// module docs). Purely additive: results through a cache are identical to
/// uncached execution, and each entry remembers the budget spend of its
/// cold construction so hits charge the meter identically.
#[derive(Debug, Default)]
pub struct ExecCache {
    /// Name of the database this cache is bound to (set on first use).
    db_name: Option<String>,
    scans: HashMap<String, Cached<Arc<ScanData>>>,
    groups: HashMap<String, Cached<Arc<Vec<GroupEntry>>>>,
    results: HashMap<String, Cached<Arc<ResultSet>>>,
    pub stats: CacheStats,
}

/// A memoized value plus the budget spend its construction charged, so a
/// hit can [`Meter::replay`] it.
#[derive(Debug)]
struct Cached<T> {
    value: T,
    fuel: u64,
    peak_rows: usize,
}

impl ExecCache {
    pub fn new() -> ExecCache {
        ExecCache::default()
    }

    /// Number of memoized entries across all layers.
    pub fn len(&self) -> usize {
        self.scans.len() + self.groups.len() + self.results.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached data (e.g. after mutating the database) but keep the
    /// database binding and stats.
    pub fn clear(&mut self) {
        self.scans.clear();
        self.groups.clear();
        self.results.clear();
    }

    fn bind(&mut self, db: &Database) {
        match &self.db_name {
            None => self.db_name = Some(db.name.clone()),
            Some(bound) => assert_eq!(
                bound, &db.name,
                "ExecCache is bound to database '{bound}' but was used with '{}'",
                db.name
            ),
        }
    }
}

/// A materialized joined + WHERE-filtered relation, shared across queries.
#[derive(Debug)]
struct ScanData {
    cols: Vec<String>,
    types: Vec<ColumnType>,
    rows: Vec<Vec<Value>>,
}

/// One group of a grouped scan: its key values, display label (for binned
/// groups), and member row indices into the scan.
#[derive(Debug)]
struct GroupEntry {
    key: Vec<Value>,
    label: Value,
    rows: Vec<usize>,
}

/// Execute a query against a database, ignoring any `Visualize` node. Uses
/// the (generous) default [`ExecBudget`].
pub fn execute(db: &Database, q: &VisQuery) -> Result<ResultSet, ExecError> {
    execute_budgeted(db, q, ExecBudget::default())
}

/// [`execute`] with an explicit resource budget.
pub fn execute_budgeted(
    db: &Database,
    q: &VisQuery,
    budget: ExecBudget,
) -> Result<ResultSet, ExecError> {
    execute_metered(db, q, budget).map(|(rs, _)| rs)
}

/// What one execution actually charged against its [`ExecBudget`] —
/// identical for warm and cold cache runs of the same query (hits replay
/// the cold spend), which the oracle-style parity tests assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecSpend {
    /// Total fuel (row-visit steps) charged.
    pub fuel_used: u64,
    /// Largest single row-count checked against `max_rows`.
    pub peak_rows: usize,
}

/// [`execute_budgeted`], also reporting the budget spend.
pub fn execute_metered(
    db: &Database,
    q: &VisQuery,
    budget: ExecBudget,
) -> Result<(ResultSet, ExecSpend), ExecError> {
    fault_check(q)?;
    let mut e = Exec { cache: None, meter: Meter::new(budget) };
    let rs = e.set(db, &q.query)?;
    let spend = ExecSpend { fuel_used: e.meter.fuel_used, peak_rows: e.meter.peak_rows };
    trace_exec(&rs, spend, None);
    Ok((rs, spend))
}

/// Execute through a per-database [`ExecCache`]. Output is bit-identical to
/// [`execute`]; repeated FROM/WHERE/GROUP fragments and subqueries are
/// computed once. Uses the default [`ExecBudget`].
pub fn execute_with_cache(
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
) -> Result<ResultSet, ExecError> {
    execute_with_cache_budgeted(db, q, cache, ExecBudget::default())
}

/// [`execute_with_cache`] with an explicit resource budget.
pub fn execute_with_cache_budgeted(
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
    budget: ExecBudget,
) -> Result<ResultSet, ExecError> {
    execute_with_cache_metered(db, q, cache, budget).map(|(rs, _)| rs)
}

/// [`execute_with_cache_budgeted`], also reporting the budget spend.
pub fn execute_with_cache_metered(
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
    budget: ExecBudget,
) -> Result<(ResultSet, ExecSpend), ExecError> {
    fault_check(q)?;
    cache.bind(db);
    let stats_before = cache.stats;
    let mut e = Exec { cache: Some(cache), meter: Meter::new(budget) };
    let rs = e.set(db, &q.query)?;
    let spend = ExecSpend { fuel_used: e.meter.fuel_used, peak_rows: e.meter.peak_rows };
    trace_exec(&rs, spend, Some((stats_before, cache.stats)));
    Ok((rs, spend))
}

/// Emit the `data.*` trace counters for one completed execution. A single
/// disarmed-path branch; the cache hit/miss split is partition-dependent
/// under parallel per-worker caches, so those counters live under
/// `data.cache.` and are excluded from cross-thread determinism checks
/// (their per-layer hit+miss sums stay deterministic).
fn trace_exec(rs: &ResultSet, spend: ExecSpend, stats: Option<(CacheStats, CacheStats)>) {
    if !nv_trace::enabled() {
        return;
    }
    nv_trace::count("data.exec.calls", 1);
    nv_trace::count("data.exec.fuel_used", spend.fuel_used);
    nv_trace::count("data.exec.rows_out", rs.rows.len() as u64);
    nv_trace::gauge_max("data.exec.peak_rows", spend.peak_rows as u64);
    if let Some((before, after)) = stats {
        nv_trace::count("data.cache.scan.hits", after.scan_hits - before.scan_hits);
        nv_trace::count("data.cache.scan.misses", after.scan_misses - before.scan_misses);
        nv_trace::count("data.cache.group.hits", after.group_hits - before.group_hits);
        nv_trace::count("data.cache.group.misses", after.group_misses - before.group_misses);
        nv_trace::count("data.cache.result.hits", after.result_hits - before.result_hits);
        nv_trace::count("data.cache.result.misses", after.result_misses - before.result_misses);
    }
}

/// The `data.exec` injection point. Keyed on the query's canonical debug
/// form, so the same query fails on every run regardless of caching, thread
/// scheduling, or call order. A single relaxed atomic load when disarmed.
fn fault_check(q: &VisQuery) -> Result<(), ExecError> {
    if nv_fault::armed() && nv_fault::fire("data.exec", nv_fault::key_str(&format!("{:?}", q.query))) {
        return Err(ExecError::Internal("injected fault at data.exec".into()));
    }
    Ok(())
}

/// The execution driver: carries the optional cache and the budget meter
/// through the recursion.
struct Exec<'c> {
    cache: Option<&'c mut ExecCache>,
    meter: Meter,
}

impl Exec<'_> {
    fn set(&mut self, db: &Database, q: &SetQuery) -> Result<ResultSet, ExecError> {
        match q {
            SetQuery::Simple(b) => self.body(db, b),
            SetQuery::Compound { op, left, right } => {
                let l = self.body(db, left)?;
                let r = self.body(db, right)?;
                if l.columns.len() != r.columns.len() {
                    return Err(ExecError::ArityMismatch {
                        left: l.columns.len(),
                        right: r.columns.len(),
                    });
                }
                self.meter.charge((l.rows.len() + r.rows.len()) as u64)?;
                self.meter
                    .check_rows(l.rows.len().saturating_add(r.rows.len()), "set operation")?;
                // Move both row sets into hash sets — set semantics without
                // cloning a single row.
                let lset: HashSet<Vec<Value>> = l.rows.into_iter().collect();
                let rset: HashSet<Vec<Value>> = r.rows.into_iter().collect();
                let mut rows: Vec<Vec<Value>> = match op {
                    SetOp::Intersect => {
                        lset.into_iter().filter(|row| rset.contains(row)).collect()
                    }
                    SetOp::Except => {
                        lset.into_iter().filter(|row| !rset.contains(row)).collect()
                    }
                    SetOp::Union => {
                        let mut u = lset;
                        u.extend(rset);
                        u.into_iter().collect()
                    }
                };
                rows.sort_by(|a, b| cmp_rows(a, b));
                Ok(ResultSet { columns: l.columns, types: l.types, rows })
            }
        }
    }

    /// Build (or fetch) the joined + WHERE-filtered scan for a body.
    fn scan(
        &mut self,
        db: &Database,
        body: &QueryBody,
        where_p: &Option<Predicate>,
    ) -> Result<(Arc<ScanData>, Option<String>), ExecError> {
        let key = self
            .cache
            .is_some()
            .then(|| format!("{:?}|{:?}|{:?}", body.from, body.joins, where_p));
        if let (Some(c), Some(k)) = (self.cache.as_deref_mut(), key.as_deref()) {
            if let Some(s) = c.scans.get(k) {
                c.stats.scan_hits += 1;
                let (data, fuel, peak) = (Arc::clone(&s.value), s.fuel, s.peak_rows);
                self.meter.replay(fuel, peak, "table scan")?;
                return Ok((data, key));
            }
            c.stats.scan_misses += 1;
        }
        let mark = key.is_some().then(|| self.meter.begin_section());
        let rel = build_from(db, body, &mut self.meter)?;
        self.meter.charge(rel.rows.len() as u64)?;
        let mut kept: Vec<Vec<Value>> = Vec::with_capacity(rel.rows.len());
        for row in rel.rows.iter() {
            let keep = match where_p {
                Some(p) => self.eval_pred_row(db, &rel, row, p)?,
                None => true,
            };
            if keep {
                kept.push(row.clone());
            }
        }
        let scan = Arc::new(ScanData { cols: rel.cols, types: rel.types, rows: kept });
        if let Some(mark) = mark {
            let (fuel, peak_rows) = self.meter.end_section(mark);
            if let (Some(c), Some(k)) = (self.cache.as_deref_mut(), key.clone()) {
                c.scans.insert(k, Cached { value: Arc::clone(&scan), fuel, peak_rows });
            }
        }
        Ok((scan, key))
    }

    /// Build (or fetch) the group partition of a scan under the given keys
    /// and bin spec.
    fn groups(
        &mut self,
        scan: &Arc<ScanData>,
        scan_key: Option<&str>,
        key_cols: &[ColumnRef],
        bin: &Option<BinSpec>,
    ) -> Result<Arc<Vec<GroupEntry>>, ExecError> {
        let key = match (self.cache.is_some(), scan_key) {
            (true, Some(sk)) => Some(format!("{sk}#{key_cols:?}|{bin:?}")),
            _ => None,
        };
        if let (Some(c), Some(k)) = (self.cache.as_deref_mut(), key.as_deref()) {
            if let Some(g) = c.groups.get(k) {
                c.stats.group_hits += 1;
                let (entries, fuel, peak) = (Arc::clone(&g.value), g.fuel, g.peak_rows);
                self.meter.replay(fuel, peak, "group partition")?;
                return Ok(entries);
            }
            c.stats.group_misses += 1;
        }
        let mark = key.is_some().then(|| self.meter.begin_section());
        self.meter.charge(scan.rows.len() as u64)?;

        let key_idx: Vec<usize> = key_cols
            .iter()
            .map(|c| col_idx(&scan.cols, c))
            .collect::<Result<_, _>>()?;
        let bin_info: Option<(usize, BinUnit, Option<NumericBins>)> = match bin {
            Some(b) => {
                let i = col_idx(&scan.cols, &b.col)?;
                let numeric = match b.unit {
                    BinUnit::Numeric { n_bins } => Some(NumericBins::from_values(
                        scan.rows.iter().filter_map(|r| r[i].as_f64()),
                        n_bins,
                    )),
                    _ => None,
                };
                Some((i, b.unit, numeric))
            }
            None => None,
        };

        // Group row indices by (bin ordinal, key values); each group keeps
        // its bin label.
        type GroupKey = (i64, Vec<Value>);
        let mut map: HashMap<GroupKey, (Value, Vec<usize>)> = HashMap::new();
        for (ri, row) in scan.rows.iter().enumerate() {
            let (ord, label) = match &bin_info {
                Some((i, unit, nb)) => bin_value(&row[*i], *unit, nb.as_ref()),
                None => (0, Value::Null),
            };
            let kv: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
            map.entry((ord, kv))
                .or_insert_with(|| (label, Vec::new()))
                .1
                .push(ri);
        }
        // SQL semantics: a global aggregate (no grouping keys) over empty
        // input still yields one row (COUNT(*) = 0, SUM/AVG = NULL).
        if map.is_empty() && key_idx.is_empty() && bin_info.is_none() {
            map.insert((0, vec![]), (Value::Null, vec![]));
        }
        let mut raw: Vec<(GroupKey, (Value, Vec<usize>))> = map.into_iter().collect();
        raw.sort_by(|a, b| a.0 .0.cmp(&b.0 .0).then_with(|| cmp_rows(&a.0 .1, &b.0 .1)));
        let entries: Vec<GroupEntry> = raw
            .into_iter()
            .map(|((_ord, key), (label, rows))| GroupEntry { key, label, rows })
            .collect();

        let entries = Arc::new(entries);
        if let Some(mark) = mark {
            let (fuel, peak_rows) = self.meter.end_section(mark);
            if let (Some(c), Some(k)) = (self.cache.as_deref_mut(), key) {
                c.groups.insert(k, Cached { value: Arc::clone(&entries), fuel, peak_rows });
            }
        }
        Ok(entries)
    }

    fn body(&mut self, db: &Database, body: &QueryBody) -> Result<ResultSet, ExecError> {
        let (where_p, having_p) = match body.filter.clone() {
            Some(p) => split_where_having(p),
            None => (None, None),
        };

        let (scan, scan_key) = self.scan(db, body, &where_p)?;
        if nv_trace::enabled() {
            // Counted on hits and misses alike, so the total is independent
            // of cache state and thread partitioning.
            nv_trace::count("data.exec.scan_rows", scan.rows.len() as u64);
        }

        // Grouping plan.
        let explicit_group = body.group.clone().filter(|g| !g.is_empty());
        let has_agg = body.select.iter().any(Attr::is_aggregated) || having_p.is_some();
        let grouped = explicit_group.is_some() || has_agg;

        let columns: Vec<String> = body.select.iter().map(attr_display).collect();
        let types: Vec<ColumnType> = body
            .select
            .iter()
            .map(|a| attr_out_type(&scan, a))
            .collect();

        let mut out_rows: Vec<(Vec<Value>, Option<Value>, Option<Value>)> = Vec::new();

        if grouped {
            // Key columns: explicit group-by + bin, or implicit (all bare
            // select columns) when aggregates appear without GROUP BY.
            let (key_cols, bin): (Vec<ColumnRef>, Option<BinSpec>) = match &explicit_group {
                Some(g) => (g.group_by.clone(), g.bin.clone()),
                None => (
                    body.select
                        .iter()
                        .filter(|a| !a.is_aggregated())
                        .map(|a| a.col.clone())
                        .collect(),
                    None,
                ),
            };
            let entries = self.groups(&scan, scan_key.as_deref(), &key_cols, &bin)?;

            let bin_col = bin.as_ref().map(|b| b.col.clone());
            for entry in entries.iter() {
                if let Some(h) = &having_p {
                    if !self.eval_having(db, &scan, &entry.rows, h)? {
                        continue;
                    }
                }
                let mut out = Vec::with_capacity(body.select.len());
                for a in &body.select {
                    // The binned column projects its bin label.
                    if a.agg == AggFunc::None && Some(&a.col) == bin_col.as_ref() {
                        out.push(entry.label.clone());
                        continue;
                    }
                    // Grouping keys project the key value directly.
                    if a.agg == AggFunc::None {
                        if let Some(pos) = key_cols.iter().position(|c| *c == a.col) {
                            out.push(entry.key[pos].clone());
                            continue;
                        }
                    }
                    out.push(group_attr_value(&scan, &entry.rows, a)?);
                }
                let ord_v = match &body.order {
                    Some(o) => Some(order_value(&scan, entry, &key_cols, &o.attr)?),
                    None => None,
                };
                let sup_v = match &body.superlative {
                    Some(s) => Some(order_value(&scan, entry, &key_cols, &s.attr)?),
                    None => None,
                };
                out_rows.push((out, ord_v, sup_v));
            }
        } else {
            let sel_idx: Vec<usize> = body
                .select
                .iter()
                .map(|a| col_idx(&scan.cols, &a.col))
                .collect::<Result<_, _>>()?;
            let ord_idx = match &body.order {
                Some(o) => Some(col_idx(&scan.cols, &o.attr.col)?),
                None => None,
            };
            let sup_idx = match &body.superlative {
                Some(s) => Some(col_idx(&scan.cols, &s.attr.col)?),
                None => None,
            };
            self.meter.charge(scan.rows.len() as u64)?;
            for row in &scan.rows {
                let out: Vec<Value> = sel_idx.iter().map(|&i| row[i].clone()).collect();
                out_rows.push((
                    out,
                    ord_idx.map(|i| row[i].clone()),
                    sup_idx.map(|i| row[i].clone()),
                ));
            }
        }

        // Superlative first (it defines its own ordering + limit)…
        if let Some(s) = &body.superlative {
            out_rows.sort_by(|a, b| {
                let av = a.2.as_ref().unwrap_or(&Value::Null);
                let bv = b.2.as_ref().unwrap_or(&Value::Null);
                let c = av.total_cmp(bv);
                match s.dir {
                    SuperDir::Most => c.reverse(),
                    SuperDir::Least => c,
                }
            });
            out_rows.truncate(s.k as usize);
        }
        // …then ORDER BY re-sorts the (possibly truncated) output.
        if let Some(o) = &body.order {
            out_rows.sort_by(|a, b| {
                let av = a.1.as_ref().unwrap_or(&Value::Null);
                let bv = b.1.as_ref().unwrap_or(&Value::Null);
                let c = av.total_cmp(bv);
                match o.dir {
                    OrderDir::Asc => c,
                    OrderDir::Desc => c.reverse(),
                }
            });
        }

        Ok(ResultSet {
            columns,
            types,
            rows: out_rows.into_iter().map(|(r, _, _)| r).collect(),
        })
    }

    /// Literal operands become one value; lists become many; subqueries
    /// execute (memoized when a cache is present) and contribute their
    /// first column.
    fn operand_values(&mut self, db: &Database, o: &Operand) -> Result<Vec<Value>, ExecError> {
        match o {
            Operand::Lit(l) => Ok(vec![Value::from_literal(l)]),
            Operand::List(ls) => Ok(ls.iter().map(Value::from_literal).collect()),
            Operand::Subquery(q) => {
                // Depth is checked before the cache lookup so the limit trips
                // identically with and without a warm cache.
                self.meter.enter_subquery()?;
                let r = self.subquery_values(db, q);
                self.meter.exit_subquery();
                r
            }
        }
    }

    fn subquery_values(&mut self, db: &Database, q: &SetQuery) -> Result<Vec<Value>, ExecError> {
        let first_col = |rs: &ResultSet| -> Vec<Value> {
            rs.rows.iter().filter_map(|r| r.first().cloned()).collect()
        };
        if self.cache.is_none() {
            return Ok(first_col(&self.set(db, q)?));
        }
        let key = format!("{q:?}");
        if let Some(c) = self.cache.as_deref_mut() {
            if let Some(rs) = c.results.get(&key) {
                c.stats.result_hits += 1;
                let (rs, fuel, peak) = (Arc::clone(&rs.value), rs.fuel, rs.peak_rows);
                self.meter.replay(fuel, peak, "subquery")?;
                return Ok(first_col(&rs));
            }
            c.stats.result_misses += 1;
        }
        let mark = self.meter.begin_section();
        let rs = Arc::new(self.set(db, q)?);
        let (fuel, peak_rows) = self.meter.end_section(mark);
        if let Some(c) = self.cache.as_deref_mut() {
            c.results.insert(key, Cached { value: Arc::clone(&rs), fuel, peak_rows });
        }
        Ok(first_col(&rs))
    }

    fn eval_pred_row(
        &mut self,
        db: &Database,
        rel: &Relation<'_>,
        row: &[Value],
        p: &Predicate,
    ) -> Result<bool, ExecError> {
        match p {
            Predicate::And(l, r) => Ok(self.eval_pred_row(db, rel, row, l)?
                && self.eval_pred_row(db, rel, row, r)?),
            Predicate::Or(l, r) => Ok(self.eval_pred_row(db, rel, row, l)?
                || self.eval_pred_row(db, rel, row, r)?),
            Predicate::Cmp { op, attr, rhs } => {
                let v = row_attr_value(rel, row, attr)?;
                let rv = self.operand_values(db, rhs)?;
                let Some(first) = rv.first() else { return Ok(false) };
                Ok(cmp_values(&v, first, *op))
            }
            Predicate::Between { attr, low, high } => {
                let v = row_attr_value(rel, row, attr)?;
                let lo = self.operand_values(db, low)?;
                let hi = self.operand_values(db, high)?;
                match (lo.first(), hi.first()) {
                    (Some(lo), Some(hi)) => {
                        Ok(cmp_values(&v, lo, CmpOp::Ge) && cmp_values(&v, hi, CmpOp::Le))
                    }
                    _ => Ok(false),
                }
            }
            Predicate::Like { attr, pattern, negated } => {
                let v = row_attr_value(rel, row, attr)?;
                if v.is_null() {
                    return Ok(false);
                }
                let m = v.like(pattern);
                Ok(m != *negated)
            }
            Predicate::In { attr, rhs, negated } => {
                let v = row_attr_value(rel, row, attr)?;
                if v.is_null() {
                    return Ok(false);
                }
                let vals = self.operand_values(db, rhs)?;
                let m = vals.iter().any(|x| v.sql_eq(x));
                Ok(m != *negated)
            }
        }
    }

    fn eval_having(
        &mut self,
        db: &Database,
        scan: &ScanData,
        idxs: &[usize],
        p: &Predicate,
    ) -> Result<bool, ExecError> {
        match p {
            Predicate::And(l, r) => Ok(self.eval_having(db, scan, idxs, l)?
                && self.eval_having(db, scan, idxs, r)?),
            Predicate::Or(l, r) => Ok(self.eval_having(db, scan, idxs, l)?
                || self.eval_having(db, scan, idxs, r)?),
            Predicate::Cmp { op, attr, rhs } => {
                let v = group_attr_value(scan, idxs, attr)?;
                let rv = self.operand_values(db, rhs)?;
                let Some(first) = rv.first() else { return Ok(false) };
                Ok(cmp_values(&v, first, *op))
            }
            Predicate::Between { attr, low, high } => {
                let v = group_attr_value(scan, idxs, attr)?;
                let lo = self.operand_values(db, low)?;
                let hi = self.operand_values(db, high)?;
                match (lo.first(), hi.first()) {
                    (Some(lo), Some(hi)) => {
                        Ok(cmp_values(&v, lo, CmpOp::Ge) && cmp_values(&v, hi, CmpOp::Le))
                    }
                    _ => Ok(false),
                }
            }
            Predicate::Like { attr, pattern, negated } => {
                let v = group_attr_value(scan, idxs, attr)?;
                Ok(!v.is_null() && (v.like(pattern) != *negated))
            }
            Predicate::In { attr, rhs, negated } => {
                let v = group_attr_value(scan, idxs, attr)?;
                if v.is_null() {
                    return Ok(false);
                }
                let vals = self.operand_values(db, rhs)?;
                Ok(vals.iter().any(|x| v.sql_eq(x)) != *negated)
            }
        }
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

/// Rows of an intermediate relation: borrowed straight from the database's
/// table storage when possible (single-table FROM — the common case), owned
/// only when a join materializes new rows.
enum Rows<'a> {
    Borrowed(&'a [Vec<Value>]),
    Owned(Vec<Vec<Value>>),
}

impl std::ops::Deref for Rows<'_> {
    type Target = [Vec<Value>];
    fn deref(&self) -> &[Vec<Value>] {
        match self {
            Rows::Borrowed(r) => r,
            Rows::Owned(r) => r,
        }
    }
}

/// An intermediate relation with qualified column names.
struct Relation<'a> {
    cols: Vec<String>,
    types: Vec<ColumnType>,
    rows: Rows<'a>,
}

/// Resolve a column reference: exact `table.column` match first, then a
/// unique unqualified match (lenient mode helps score model-predicted
/// trees whose table attribution is off).
fn col_idx(cols: &[String], c: &ColumnRef) -> Result<usize, ExecError> {
    let want = format!("{}.{}", c.table, c.column).to_lowercase();
    if let Some(i) = cols.iter().position(|n| n.to_lowercase() == want) {
        return Ok(i);
    }
    let suffix = format!(".{}", c.column.to_lowercase());
    let matches: Vec<usize> = cols
        .iter()
        .enumerate()
        .filter(|(_, n)| n.to_lowercase().ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        _ => Err(ExecError::UnknownColumn(c.to_token())),
    }
}

impl Relation<'_> {
    fn col_idx(&self, c: &ColumnRef) -> Result<usize, ExecError> {
        col_idx(&self.cols, c)
    }
}

fn load_table<'a>(db: &'a Database, name: &str) -> Result<Relation<'a>, ExecError> {
    let t = db
        .table(name)
        .ok_or_else(|| ExecError::UnknownTable(name.to_string()))?;
    Ok(Relation {
        cols: t
            .schema
            .columns
            .iter()
            .map(|c| format!("{}.{}", t.name(), c.name))
            .collect(),
        types: t.schema.columns.iter().map(|c| c.ctype).collect(),
        // Borrow the table's storage — scans never mutate rows.
        rows: Rows::Borrowed(&t.rows),
    })
}

fn build_from<'a>(
    db: &'a Database,
    body: &QueryBody,
    meter: &mut Meter,
) -> Result<Relation<'a>, ExecError> {
    let first = body
        .from
        .first()
        .ok_or_else(|| ExecError::Unsupported("empty FROM".into()))?;
    let mut rel = load_table(db, first)?;
    meter.check_rows(rel.rows.len(), "table scan")?;
    let mut joined: HashSet<String> = HashSet::new();
    joined.insert(first.to_lowercase());

    // Tables introduced by join conditions, in order.
    for (i, table) in body.from.iter().enumerate().skip(1) {
        let right = load_table(db, table)?;
        // Find a join condition connecting the new table to the current
        // relation.
        let cond = body.joins.iter().find(|j| {
            let lt = j.left.table.to_lowercase();
            let rt = j.right.table.to_lowercase();
            (rt == table.to_lowercase() && joined.contains(&lt))
                || (lt == table.to_lowercase() && joined.contains(&rt))
        });
        rel = match cond {
            Some(j) => {
                let (rel_side, new_side) =
                    if j.right.table.eq_ignore_ascii_case(table) { (&j.left, &j.right) } else { (&j.right, &j.left) };
                hash_join(rel, right, rel_side, new_side, meter)?
            }
            None if body.joins.is_empty() => cross_join(rel, right, meter)?,
            None => {
                return Err(ExecError::Unsupported(format!(
                    "no join condition connects table '{table}' (position {i})"
                )))
            }
        };
        joined.insert(table.to_lowercase());
    }
    Ok(rel)
}

fn cross_join<'a>(
    l: Relation<'a>,
    r: Relation<'a>,
    meter: &mut Meter,
) -> Result<Relation<'a>, ExecError> {
    // Check the product size before allocating anything: an unconstrained
    // cross join is the classic memory bomb.
    let product = l.rows.len().saturating_mul(r.rows.len());
    meter.check_rows(product, "cross join")?;
    meter.charge(product as u64)?;
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut types = l.types;
    types.extend(r.types);
    let mut rows = Vec::with_capacity(product);
    for lr in l.rows.iter() {
        for rr in r.rows.iter() {
            let mut row = lr.clone();
            row.extend(rr.iter().cloned());
            rows.push(row);
        }
    }
    Ok(Relation { cols, types, rows: Rows::Owned(rows) })
}

fn hash_join<'a>(
    l: Relation<'a>,
    r: Relation<'a>,
    lkey: &ColumnRef,
    rkey: &ColumnRef,
    meter: &mut Meter,
) -> Result<Relation<'a>, ExecError> {
    let li = l.col_idx(lkey)?;
    let ri = r.col_idx(rkey)?;
    meter.charge((l.rows.len() + r.rows.len()) as u64)?;
    let mut index: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (i, row) in r.rows.iter().enumerate() {
        if !row[ri].is_null() {
            index.entry(&row[ri]).or_default().push(i);
        }
    }
    let mut rows = Vec::new();
    for lr in l.rows.iter() {
        if let Some(matches) = index.get(&lr[li]) {
            meter.check_rows(rows.len().saturating_add(matches.len()), "hash join")?;
            for &m in matches {
                let mut row = lr.clone();
                row.extend(r.rows[m].iter().cloned());
                rows.push(row);
            }
        }
    }
    drop(index);
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut types = l.types;
    types.extend(r.types);
    Ok(Relation { cols, types, rows: Rows::Owned(rows) })
}

/// Does any leaf of the predicate reference an aggregated attribute?
fn pred_has_agg(p: &Predicate) -> bool {
    let mut found = false;
    p.for_each_leaf(&mut |leaf| {
        let attr = match leaf {
            Predicate::Cmp { attr, .. }
            | Predicate::Between { attr, .. }
            | Predicate::Like { attr, .. }
            | Predicate::In { attr, .. } => attr,
            _ => return,
        };
        if attr.is_aggregated() {
            found = true;
        }
    });
    found
}

/// Split a predicate into (pre-group WHERE, post-group HAVING) by walking
/// the top-level AND chain.
fn split_where_having(p: Predicate) -> (Option<Predicate>, Option<Predicate>) {
    match p {
        Predicate::And(l, r) => {
            let (lw, lh) = split_where_having(*l);
            let (rw, rh) = split_where_having(*r);
            (Predicate::and_opt(lw, rw), Predicate::and_opt(lh, rh))
        }
        other => {
            if pred_has_agg(&other) {
                (None, Some(other))
            } else {
                (Some(other), None)
            }
        }
    }
}

fn cmp_values(a: &Value, b: &Value, op: CmpOp) -> bool {
    use std::cmp::Ordering::*;
    match a.sql_cmp(b) {
        None => false,
        Some(ord) => match op {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        },
    }
}

fn row_attr_value(rel: &Relation<'_>, row: &[Value], attr: &Attr) -> Result<Value, ExecError> {
    if attr.is_aggregated() {
        return Err(ExecError::Unsupported(
            "aggregate in row-level predicate (belongs to HAVING)".into(),
        ));
    }
    let i = rel.col_idx(&attr.col)?;
    Ok(row[i].clone())
}

/// Binning context for numeric columns: equal-width buckets,
/// `bin_size = ceil((max - min) / n_bins)` (paper §2.3, default 10 bins).
struct NumericBins {
    min: f64,
    size: f64,
    /// Ordinal of the last bin. The top edge is inclusive: a value equal to
    /// the column maximum belongs to the last bin, not a one-past-the-end
    /// overflow bin (which `floor` alone produces when the range divides
    /// the bin size exactly).
    last: i64,
}

impl NumericBins {
    fn from_values(vals: impl Iterator<Item = f64>, n_bins: u32) -> NumericBins {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in vals {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return NumericBins { min: 0.0, size: 1.0, last: 0 };
        }
        let size = ((max - min) / f64::from(n_bins)).ceil().max(1.0);
        let last = (((max - min) / size).ceil() as i64 - 1).max(0);
        NumericBins { min, size, last }
    }

    fn bucket(&self, v: f64) -> (i64, Value) {
        let idx = (((v - self.min) / self.size).floor() as i64).min(self.last);
        let lo = self.min + idx as f64 * self.size;
        let hi = lo + self.size;
        let label = format!("{}-{}", trim_f(lo), trim_f(hi));
        (idx, Value::Text(label))
    }
}

fn trim_f(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f:.2}")
    }
}

/// Compute the (ordinal, label) of a value under a bin unit.
fn bin_value(v: &Value, unit: BinUnit, num: Option<&NumericBins>) -> (i64, Value) {
    if v.is_null() {
        return (i64::MIN, Value::Null);
    }
    match unit {
        BinUnit::Numeric { .. } => match (v.as_f64(), num) {
            (Some(f), Some(nb)) => nb.bucket(f),
            _ => (i64::MIN, Value::Null),
        },
        temporal => match v.as_time() {
            None => (i64::MIN, Value::Null),
            Some(t) => match temporal {
                BinUnit::Minute => (i64::from(t.minute), Value::Int(i64::from(t.minute))),
                BinUnit::Hour => (i64::from(t.hour), Value::Int(i64::from(t.hour))),
                BinUnit::Weekday => {
                    (i64::from(t.weekday()), Value::text(t.weekday_name()))
                }
                BinUnit::Month => (i64::from(t.month), Value::text(t.month_name())),
                BinUnit::Quarter => {
                    (i64::from(t.quarter()), Value::text(format!("Q{}", t.quarter())))
                }
                BinUnit::Year => (i64::from(t.year), Value::Int(i64::from(t.year))),
                BinUnit::Numeric { .. } => unreachable!(),
            },
        },
    }
}

fn agg_over(agg: AggFunc, distinct: bool, vals: &[Value]) -> Value {
    let nonnull: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();
    let pool: Vec<&Value> = if distinct {
        let mut seen = HashSet::new();
        nonnull.into_iter().filter(|v| seen.insert(*v)).collect()
    } else {
        nonnull
    };
    match agg {
        AggFunc::Count => Value::Int(pool.len() as i64),
        AggFunc::Max => pool
            .iter()
            .cloned()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Min => pool
            .iter()
            .cloned()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            let mut s = 0.0;
            let mut any = false;
            let mut all_int = true;
            for v in &pool {
                if let Some(f) = v.as_f64() {
                    s += f;
                    any = true;
                    all_int &= matches!(v, Value::Int(_) | Value::Bool(_));
                }
            }
            if !any {
                Value::Null
            } else if all_int {
                Value::Int(s as i64)
            } else {
                Value::Float(s)
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = pool.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::None => pool.first().cloned().cloned().unwrap_or(Value::Null),
    }
}

/// Evaluate an attribute over the rows (by index) belonging to one group.
fn group_attr_value(scan: &ScanData, idxs: &[usize], attr: &Attr) -> Result<Value, ExecError> {
    if attr.agg == AggFunc::Count && attr.col.is_star() {
        return Ok(Value::Int(idxs.len() as i64));
    }
    let col = col_idx(&scan.cols, &attr.col)?;
    let vals: Vec<Value> = idxs.iter().map(|&i| scan.rows[i][col].clone()).collect();
    Ok(agg_over(attr.agg, attr.distinct, &vals))
}

fn attr_display(a: &Attr) -> String {
    if a.agg == AggFunc::None {
        a.col.to_token()
    } else if a.distinct {
        format!("{}(distinct {})", a.agg.keyword(), a.col.to_token())
    } else {
        format!("{}({})", a.agg.keyword(), a.col.to_token())
    }
}

fn attr_out_type(scan: &ScanData, a: &Attr) -> ColumnType {
    match a.agg {
        AggFunc::Count | AggFunc::Sum | AggFunc::Avg => ColumnType::Quantitative,
        AggFunc::Max | AggFunc::Min | AggFunc::None => {
            if a.col.is_star() {
                ColumnType::Categorical
            } else {
                col_idx(&scan.cols, &a.col)
                    .map(|i| scan.types[i])
                    .unwrap_or(ColumnType::Categorical)
            }
        }
    }
}

/// Evaluate an order/superlative attribute for one group: aggregates compute
/// over the group's rows; bare key columns read the key.
fn order_value(
    scan: &ScanData,
    entry: &GroupEntry,
    key_cols: &[ColumnRef],
    attr: &Attr,
) -> Result<Value, ExecError> {
    if attr.agg == AggFunc::None {
        if let Some(pos) = key_cols.iter().position(|c| *c == attr.col) {
            return Ok(entry.key[pos].clone());
        }
    }
    group_attr_value(scan, &entry.rows, attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{table_from, Database};
    use crate::value::Timestamp;
    use nv_ast::tokens::parse_vql_str;

    fn db() -> Database {
        let mut db = Database::new("flights", "Flight");
        db.add_table(table_from(
            "flight",
            &[
                ("fno", ColumnType::Quantitative),
                ("destination", ColumnType::Categorical),
                ("price", ColumnType::Quantitative),
                ("src", ColumnType::Quantitative),
                ("departure", ColumnType::Temporal),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::text("LA"),
                    Value::Int(300),
                    Value::Int(10),
                    Value::Time(Timestamp::date(2020, 1, 5)),
                ],
                vec![
                    Value::Int(2),
                    Value::text("LA"),
                    Value::Int(450),
                    Value::Int(10),
                    Value::Time(Timestamp::date(2020, 2, 7)),
                ],
                vec![
                    Value::Int(3),
                    Value::text("NY"),
                    Value::Int(200),
                    Value::Int(11),
                    Value::Time(Timestamp::date(2021, 2, 1)),
                ],
                vec![
                    Value::Int(4),
                    Value::text("NY"),
                    Value::Int(700),
                    Value::Int(12),
                    Value::Time(Timestamp::date(2021, 7, 4)),
                ],
                vec![
                    Value::Int(5),
                    Value::text("SF"),
                    Value::Int(120),
                    Value::Int(10),
                    Value::Time(Timestamp::date(2020, 1, 20)),
                ],
            ],
        ));
        db.add_table(table_from(
            "airport",
            &[
                ("id", ColumnType::Quantitative),
                ("name", ColumnType::Categorical),
                ("city", ColumnType::Categorical),
            ],
            vec![
                vec![Value::Int(10), Value::text("Alpha Intl"), Value::text("Austin")],
                vec![Value::Int(11), Value::text("Beta Field"), Value::text("Boston")],
                vec![Value::Int(12), Value::text("Gamma Intl"), Value::text("Chicago")],
            ],
        ));
        db.add_foreign_key("flight", "src", "airport", "id");
        db
    }

    fn run(vql: &str) -> ResultSet {
        execute(&db(), &parse_vql_str(vql).unwrap()).unwrap()
    }

    #[test]
    fn simple_projection() {
        let rs = run("select flight.destination , flight.price from flight");
        assert_eq!(rs.columns, vec!["flight.destination", "flight.price"]);
        assert_eq!(rs.rows.len(), 5);
    }

    #[test]
    fn where_filter_and_like() {
        let rs = run("select flight.fno from flight where flight.price > 250");
        assert_eq!(rs.rows.len(), 3);
        let rs = run(
            "select airport.name from airport where airport.name like '%intl'",
        );
        assert_eq!(rs.rows.len(), 2);
        let rs = run(
            "select airport.name from airport where airport.name not like '%intl'",
        );
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn group_count() {
        let rs = run(
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination",
        );
        assert_eq!(rs.rows.len(), 3);
        let la = rs
            .rows
            .iter()
            .find(|r| r[0] == Value::text("LA"))
            .unwrap();
        assert_eq!(la[1], Value::Int(2));
        assert_eq!(rs.types[1], ColumnType::Quantitative);
    }

    #[test]
    fn aggregates() {
        let rs = run("select avg ( flight.price ) , sum ( flight.price ) , max ( flight.price ) , min ( flight.price ) from flight");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Float(354.0));
        assert_eq!(rs.rows[0][1], Value::Int(1770));
        assert_eq!(rs.rows[0][2], Value::Int(700));
        assert_eq!(rs.rows[0][3], Value::Int(120));
    }

    #[test]
    fn count_distinct() {
        let rs = run("select count ( distinct flight.destination ) from flight");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn join_with_filter() {
        let rs = run(
            "select airport.city , count ( flight.* ) from flight \
             join airport on flight.src = airport.id \
             where flight.price >= 200 group by airport.city",
        );
        // Austin: flights 1,2 (300,450); Boston: flight 3 (200); Chicago: 4 (700).
        assert_eq!(rs.rows.len(), 3);
        let austin = rs.rows.iter().find(|r| r[0] == Value::text("Austin")).unwrap();
        assert_eq!(austin[1], Value::Int(2));
    }

    #[test]
    fn having_via_aggregated_filter() {
        let rs = run(
            "select flight.destination , count ( flight.* ) from flight \
             where count ( flight.* ) >= 2 group by flight.destination",
        );
        assert_eq!(rs.rows.len(), 2); // LA and NY
    }

    #[test]
    fn mixed_where_and_having() {
        let rs = run(
            "select flight.destination , count ( flight.* ) from flight \
             where ( flight.price > 150 and count ( flight.* ) >= 2 ) \
             group by flight.destination",
        );
        // price>150 leaves LA:2, NY:2 → both pass having.
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_by_and_superlative() {
        let rs = run(
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination order by count ( flight.* ) desc",
        );
        assert_eq!(rs.rows[0][1], Value::Int(2));
        let rs = run(
            "select flight.fno , flight.price from flight top 2 by flight.price",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Value::Int(700));
        let rs = run(
            "select flight.fno , flight.price from flight bottom 1 by flight.price",
        );
        assert_eq!(rs.rows[0][1], Value::Int(120));
    }

    #[test]
    fn bin_by_year() {
        let rs = run(
            "select flight.departure , count ( flight.* ) from flight \
             bin flight.departure by year",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(2020));
        assert_eq!(rs.rows[0][1], Value::Int(3));
        assert_eq!(rs.rows[1][0], Value::Int(2021));
    }

    #[test]
    fn bin_by_month_and_weekday_labels() {
        let rs = run(
            "select flight.departure , count ( flight.* ) from flight \
             bin flight.departure by month",
        );
        // Months: Jan(2), Feb(2), Jul(1) — ordered by month ordinal.
        assert_eq!(rs.rows[0][0], Value::text("January"));
        assert_eq!(rs.rows[1][0], Value::text("February"));
        assert_eq!(rs.rows[2][0], Value::text("July"));
        let rs = run(
            "select flight.departure , count ( flight.* ) from flight \
             bin flight.departure by quarter",
        );
        assert_eq!(rs.rows[0][0], Value::text("Q1"));
    }

    #[test]
    fn numeric_binning() {
        let rs = run(
            "select flight.price , count ( flight.* ) from flight \
             bin flight.price by bucket_10",
        );
        // price range 120..700, size = ceil(580/10)=58.
        assert!(rs.rows.len() >= 3);
        let total: i64 = rs
            .rows
            .iter()
            .map(|r| if let Value::Int(n) = r[1] { n } else { 0 })
            .sum();
        assert_eq!(total, 5);
        assert!(matches!(&rs.rows[0][0], Value::Text(s) if s.contains('-')));
    }

    /// Regression: a value exactly on the configured bin maximum must land
    /// in the last bin, not a one-past-the-end overflow bin. Price range is
    /// 120..700 with size 58, so 580/58 = 10 exactly — the max used to get
    /// ordinal 10 and a spurious "700-758" bin.
    #[test]
    fn numeric_bin_maximum_lands_in_last_bin() {
        let rs = run(
            "select flight.price , count ( flight.* ) from flight \
             bin flight.price by bucket_10",
        );
        let labels: Vec<&str> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => s.as_str(),
                other => panic!("bin label should be text, got {other:?}"),
            })
            .collect();
        assert!(
            labels.contains(&"642-700"),
            "max price 700 should fall in the closing 642-700 bin: {labels:?}"
        );
        assert!(
            !labels.iter().any(|l| l.starts_with("700-")),
            "no overflow bin may start at the maximum: {labels:?}"
        );
        // Every bin stays within the observed [min, max] span.
        for l in &labels {
            let (lo, hi) = l.split_once('-').unwrap();
            assert!(lo.parse::<f64>().unwrap() >= 120.0, "{l}");
            assert!(hi.parse::<f64>().unwrap() <= 700.0, "{l}");
        }
    }

    #[test]
    fn set_ops() {
        let union = run(
            "select flight.destination from flight where flight.price > 400 \
             union select flight.destination from flight where flight.price < 150",
        );
        // >400: LA, NY; <150: SF → 3 distinct.
        assert_eq!(union.rows.len(), 3);
        let inter = run(
            "select flight.destination from flight where flight.price > 250 \
             intersect select flight.destination from flight where flight.price < 250",
        );
        // >250: LA,NY; <250: NY,SF → NY.
        assert_eq!(inter.rows.len(), 1);
        assert_eq!(inter.rows[0][0], Value::text("NY"));
        let exc = run(
            "select flight.destination from flight \
             except select flight.destination from flight where flight.price > 250",
        );
        assert_eq!(exc.rows.len(), 1);
        assert_eq!(exc.rows[0][0], Value::text("SF"));
    }

    #[test]
    fn subquery_in_and_scalar() {
        let rs = run(
            "select flight.fno from flight where flight.src in \
             ( select airport.id from airport where airport.city = 'Austin' )",
        );
        assert_eq!(rs.rows.len(), 3);
        let rs = run(
            "select flight.fno from flight where flight.price > \
             ( select avg ( flight.price ) from flight )",
        );
        assert_eq!(rs.rows.len(), 2); // 450 and 700 > 354
    }

    #[test]
    fn in_list_and_between() {
        let rs = run(
            "select flight.fno from flight where flight.destination in ( 'LA' , 'SF' )",
        );
        assert_eq!(rs.rows.len(), 3);
        let rs = run(
            "select flight.fno from flight where flight.destination not in ( 'LA' , 'SF' )",
        );
        assert_eq!(rs.rows.len(), 2);
        let rs = run(
            "select flight.fno from flight where flight.price between 200 and 450",
        );
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn temporal_comparison_with_text_literal() {
        let rs = run(
            "select flight.fno from flight where flight.departure >= '2021-01-01'",
        );
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn result_data_eq_is_order_insensitive() {
        let a = run(
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination order by count ( flight.* ) desc",
        );
        let b = run(
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination order by flight.destination asc",
        );
        assert!(a.data_eq(&b));
        let c = run("select flight.destination from flight group by flight.destination");
        assert!(!a.data_eq(&c));
    }

    #[test]
    fn data_eq_float_int_tolerant() {
        let a = ResultSet {
            columns: vec!["x".into()],
            types: vec![ColumnType::Quantitative],
            rows: vec![vec![Value::Int(3)]],
        };
        let b = ResultSet {
            columns: vec!["x".into()],
            types: vec![ColumnType::Quantitative],
            rows: vec![vec![Value::Float(3.0)]],
        };
        assert!(a.data_eq(&b));
    }

    #[test]
    fn errors() {
        let e = execute(&db(), &parse_vql_str("select ghost.a from ghost").unwrap());
        assert!(matches!(e, Err(ExecError::UnknownTable(_))));
        let e = execute(&db(), &parse_vql_str("select flight.ghost from flight").unwrap());
        assert!(matches!(e, Err(ExecError::UnknownColumn(_))));
        let e = execute(
            &db(),
            &parse_vql_str("select flight.fno from flight union select airport.id , airport.name from airport").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::ArityMismatch { .. })));
        assert!(ExecError::UnknownTable("x".into()).to_string().contains("x"));
    }

    #[test]
    fn lenient_column_resolution() {
        // "f.price" resolves because only one table has a 'price' column.
        let rs = run("select flight.fno from flight where f.price > 600");
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn implicit_group_by_bare_columns() {
        // Aggregate + bare column without GROUP BY: implicit grouping.
        let rs = run("select flight.destination , count ( flight.* ) from flight");
        assert_eq!(rs.rows.len(), 3);
    }

    // ---- cache behaviour -------------------------------------------------

    /// Every grammar feature exercised above, executed with and without a
    /// cache: results must be identical, both on a cold and a warm cache.
    #[test]
    fn cached_execution_matches_uncached() {
        let db = db();
        let queries = [
            "select flight.destination , flight.price from flight",
            "select flight.fno from flight where flight.price > 250",
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination",
            "select avg ( flight.price ) , sum ( flight.price ) from flight",
            "select airport.city , count ( flight.* ) from flight \
             join airport on flight.src = airport.id \
             where flight.price >= 200 group by airport.city",
            "select flight.destination , count ( flight.* ) from flight \
             where count ( flight.* ) >= 2 group by flight.destination",
            "select flight.departure , count ( flight.* ) from flight \
             bin flight.departure by month",
            "select flight.price , count ( flight.* ) from flight \
             bin flight.price by bucket_10",
            "select flight.destination from flight where flight.price > 250 \
             intersect select flight.destination from flight where flight.price < 250",
            "select flight.fno from flight where flight.price > \
             ( select avg ( flight.price ) from flight )",
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination order by count ( flight.* ) desc",
            "select flight.fno , flight.price from flight top 2 by flight.price",
        ];
        let mut cache = ExecCache::new();
        for vql in queries {
            let q = parse_vql_str(vql).unwrap();
            let plain = execute(&db, &q).unwrap();
            let cold = execute_with_cache(&db, &q, &mut cache).unwrap();
            assert_eq!(plain, cold, "cold-cache mismatch on {vql}");
            let warm = execute_with_cache(&db, &q, &mut cache).unwrap();
            assert_eq!(plain, warm, "warm-cache mismatch on {vql}");
        }
        assert!(cache.stats.scan_hits > 0, "warm runs must hit the scan cache");
        assert!(cache.stats.group_hits > 0, "warm runs must hit the group cache");
        assert!(cache.stats.result_hits > 0, "subquery memo must be hit");
        assert!(!cache.is_empty());
    }

    /// Candidates sharing a FROM/WHERE fragment reuse one scan even when
    /// their projections and groupings differ.
    #[test]
    fn scan_cache_shared_across_projections() {
        let db = db();
        let mut cache = ExecCache::new();
        let variants = [
            "select flight.destination from flight where flight.price > 150",
            "select flight.fno , flight.price from flight where flight.price > 150",
            "select flight.destination , count ( flight.* ) from flight \
             where flight.price > 150 group by flight.destination",
            "select flight.destination , avg ( flight.price ) from flight \
             where flight.price > 150 group by flight.destination",
        ];
        for vql in variants {
            let q = parse_vql_str(vql).unwrap();
            execute_with_cache(&db, &q, &mut cache).unwrap();
        }
        // One unique (FROM, WHERE) fragment → one scan miss, three hits.
        assert_eq!(cache.stats.scan_misses, 1);
        assert_eq!(cache.stats.scan_hits, 3);
        // The two grouped variants share one group partition.
        assert_eq!(cache.stats.group_misses, 1);
        assert_eq!(cache.stats.group_hits, 1);
    }

    #[test]
    #[should_panic(expected = "bound to database")]
    fn cache_refuses_foreign_database() {
        let a = db();
        let mut b = Database::new("other", "Other");
        b.add_table(table_from(
            "t",
            &[("x", ColumnType::Quantitative)],
            vec![vec![Value::Int(1)]],
        ));
        let q = parse_vql_str("select flight.fno from flight").unwrap();
        let mut cache = ExecCache::new();
        execute_with_cache(&a, &q, &mut cache).unwrap();
        let q2 = parse_vql_str("select t.x from t").unwrap();
        let _ = execute_with_cache(&b, &q2, &mut cache);
    }

    // ---- resource budgets ------------------------------------------------

    fn assert_exhausted(r: Result<ResultSet, ExecError>, needle: &str) {
        match r {
            Err(ExecError::ResourceExhausted(m)) => {
                assert!(m.contains(needle), "message '{m}' lacks '{needle}'")
            }
            other => panic!("expected ResourceExhausted({needle}), got {other:?}"),
        }
    }

    #[test]
    fn row_limit_trips_on_scan() {
        let q = parse_vql_str("select flight.fno from flight").unwrap();
        let budget = ExecBudget { max_rows: 3, ..ExecBudget::default() };
        // The flight table has 5 rows; a 3-row ceiling must refuse the scan.
        assert_exhausted(execute_budgeted(&db(), &q, budget), "rows");
    }

    #[test]
    fn row_limit_trips_on_join_before_materializing() {
        // Self-join on destination: LA×LA(4) + NY×NY(4) + SF×SF(1) = 9 rows.
        let q = parse_vql_str(
            "select flight.fno from flight join flight on flight.destination = flight.destination",
        )
        .unwrap();
        let budget = ExecBudget { max_rows: 6, ..ExecBudget::default() };
        assert_exhausted(execute_budgeted(&db(), &q, budget), "rows");
    }

    #[test]
    fn subquery_depth_limit_trips() {
        let q = parse_vql_str(
            "select flight.fno from flight where flight.price > \
             ( select avg ( flight.price ) from flight where flight.price > \
             ( select min ( flight.price ) from flight ) )",
        )
        .unwrap();
        let shallow = ExecBudget { max_subquery_depth: 1, ..ExecBudget::default() };
        assert_exhausted(execute_budgeted(&db(), &q, shallow), "depth");
        // Depth 2 is exactly enough.
        let deep = ExecBudget { max_subquery_depth: 2, ..ExecBudget::default() };
        assert_eq!(execute_budgeted(&db(), &q, deep).unwrap().rows.len(), 2);
        // The limit trips identically through a cache, warm or cold.
        let mut cache = ExecCache::new();
        for _ in 0..2 {
            let r = execute_with_cache_budgeted(&db(), &q, &mut cache, shallow);
            assert_exhausted(r, "depth");
        }
    }

    #[test]
    fn fuel_limit_trips() {
        let q = parse_vql_str(
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination",
        )
        .unwrap();
        let budget = ExecBudget { fuel: 3, ..ExecBudget::default() };
        assert_exhausted(execute_budgeted(&db(), &q, budget), "fuel");
    }

    #[test]
    fn default_budget_is_invisible() {
        let q = parse_vql_str(
            "select airport.city , count ( flight.* ) from flight \
             join airport on flight.src = airport.id group by airport.city",
        )
        .unwrap();
        let defaulted = execute_budgeted(&db(), &q, ExecBudget::default()).unwrap();
        let unlimited = execute_budgeted(&db(), &q, ExecBudget::unlimited()).unwrap();
        assert_eq!(defaulted, unlimited);
    }

    /// Oracle-style budget-accounting parity: for every grammar feature,
    /// plain, cache-cold, and cache-warm executions must report the exact
    /// same [`ExecSpend`] — hits replay the spend of their construction.
    #[test]
    fn warm_and_cold_cache_spend_identical_budget() {
        let db = db();
        let queries = [
            "select flight.destination , flight.price from flight",
            "select flight.fno from flight where flight.price > 250",
            "select flight.destination , count ( flight.* ) from flight \
             group by flight.destination",
            "select airport.city , count ( flight.* ) from flight \
             join airport on flight.src = airport.id \
             where flight.price >= 200 group by airport.city",
            "select flight.price , count ( flight.* ) from flight \
             bin flight.price by bucket_10",
            "select flight.destination from flight where flight.price > 250 \
             intersect select flight.destination from flight where flight.price < 250",
            "select flight.fno from flight where flight.price > \
             ( select avg ( flight.price ) from flight )",
            "select flight.fno , flight.price from flight top 2 by flight.price",
        ];
        let mut cache = ExecCache::new();
        for vql in queries {
            let q = parse_vql_str(vql).unwrap();
            let (_, plain) = execute_metered(&db, &q, ExecBudget::default()).unwrap();
            let (_, cold) =
                execute_with_cache_metered(&db, &q, &mut cache, ExecBudget::default()).unwrap();
            let (_, warm) =
                execute_with_cache_metered(&db, &q, &mut cache, ExecBudget::default()).unwrap();
            assert_eq!(plain, cold, "cold-cache spend diverged on {vql}");
            assert_eq!(plain, warm, "warm-cache spend diverged on {vql}");
        }
        assert!(cache.stats.scan_hits > 0, "parity must be proven on real cache hits");
        assert!(cache.stats.result_hits > 0, "subquery memo must be exercised");
    }

    /// A fuel limit that trips cold must trip warm too, and exactly-enough
    /// fuel must succeed warm with the same reported spend.
    #[test]
    fn fuel_limit_trips_identically_warm_and_cold() {
        let db = db();
        let q = parse_vql_str(
            "select flight.destination , count ( flight.* ) from flight \
             where flight.price > ( select avg ( flight.price ) from flight ) \
             group by flight.destination",
        )
        .unwrap();
        let (_, spend) = execute_metered(&db, &q, ExecBudget::unlimited()).unwrap();
        assert!(spend.fuel_used > 1);
        let enough = ExecBudget { fuel: spend.fuel_used, ..ExecBudget::default() };
        let short = ExecBudget { fuel: spend.fuel_used - 1, ..ExecBudget::default() };

        let mut cache = ExecCache::new();
        assert_exhausted(execute_with_cache_budgeted(&db, &q, &mut cache, short), "fuel");

        let mut cache = ExecCache::new();
        execute_with_cache_budgeted(&db, &q, &mut cache, enough).unwrap();
        // Warm hit: previously the cached scan skipped its charges and
        // slipped under the limit; it must trip exactly like the cold run.
        assert_exhausted(execute_with_cache_budgeted(&db, &q, &mut cache, short), "fuel");
        let (_, warm) = execute_with_cache_metered(&db, &q, &mut cache, enough).unwrap();
        assert_eq!(warm, spend);
    }

    #[test]
    fn cache_clear_resets_entries() {
        let db = db();
        let mut cache = ExecCache::new();
        let q = parse_vql_str("select flight.fno from flight").unwrap();
        execute_with_cache(&db, &q, &mut cache).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        // Still bound and usable after clear.
        execute_with_cache(&db, &q, &mut cache).unwrap();
        assert_eq!(cache.stats.scan_misses, 2);
    }
}
