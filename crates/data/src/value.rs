//! Runtime values stored in tables and produced by queries.
//!
//! The engine distinguishes the three nvBench column classes — categorical
//! (text/bool), temporal (timestamps) and quantitative (int/float) — at the
//! value level, with a total order so that sorting, grouping, min/max and
//! set operations are well-defined across the board.

use nv_ast::Literal;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A calendar timestamp with minute resolution (seconds kept for display).
///
/// Implemented from scratch (no chrono): date arithmetic uses the
/// days-from-civil algorithm, which also gives us the weekday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Timestamp {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
}

impl Timestamp {
    pub fn date(year: i32, month: u8, day: u8) -> Self {
        Timestamp { year, month, day, hour: 0, minute: 0, second: 0 }
    }

    pub fn datetime(year: i32, month: u8, day: u8, hour: u8, minute: u8) -> Self {
        Timestamp { year, month, day, hour, minute, second: 0 }
    }

    /// Parse `YYYY-MM-DD`, `YYYY-MM-DD HH:MM` or `YYYY-MM-DD HH:MM:SS`.
    pub fn parse(s: &str) -> Option<Timestamp> {
        let (date, time) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let year: i32 = dp.next()?.parse().ok()?;
        let month: u8 = dp.next()?.parse().ok()?;
        let day: u8 = dp.next()?.parse().ok()?;
        if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        let (mut hour, mut minute, mut second) = (0u8, 0u8, 0u8);
        if let Some(t) = time {
            let mut tp = t.split(':');
            hour = tp.next()?.parse().ok()?;
            minute = tp.next()?.parse().ok()?;
            if let Some(sec) = tp.next() {
                second = sec.parse().ok()?;
            }
            if hour > 23 || minute > 59 || second > 59 {
                return None;
            }
        }
        Some(Timestamp { year, month, day, hour, minute, second })
    }

    /// Days since 1970-01-01 (days-from-civil; Howard Hinnant's algorithm).
    pub fn days_from_epoch(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Weekday with 0 = Monday … 6 = Sunday.
    pub fn weekday(&self) -> u8 {
        ((self.days_from_epoch() + 3).rem_euclid(7)) as u8
    }

    pub fn weekday_name(&self) -> &'static str {
        ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]
            [self.weekday() as usize]
    }

    /// Quarter 1–4.
    pub fn quarter(&self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    pub fn month_name(&self) -> &'static str {
        [
            "January", "February", "March", "April", "May", "June", "July", "August",
            "September", "October", "November", "December",
        ][(self.month - 1) as usize]
    }

    /// Minutes since the epoch — a convenient sortable scalar.
    pub fn minutes_from_epoch(&self) -> i64 {
        self.days_from_epoch() * 1440 + i64::from(self.hour) * 60 + i64::from(self.minute)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hour == 0 && self.minute == 0 && self.second == 0 {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        } else {
            write!(
                f,
                "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
                self.year, self.month, self.day, self.hour, self.minute, self.second
            )
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Time(Timestamp),
}

impl Value {
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to f64; bools are 0/1; timestamps are
    /// minutes-from-epoch so temporal columns can be aggregated and binned
    /// numerically).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(f64::from(*b)),
            Value::Time(t) => Some(t.minutes_from_epoch() as f64),
            _ => None,
        }
    }

    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            Value::Text(s) => Timestamp::parse(s),
            _ => None,
        }
    }

    /// Convert an AST literal into a runtime value. Text that parses as a
    /// timestamp stays text — coercion to time happens at comparison sites.
    pub fn from_literal(l: &Literal) -> Value {
        match l {
            Literal::Null => Value::Null,
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Text(s) => Value::Text(s.clone()),
        }
    }

    /// A canonical display string (used for grouping keys and chart labels).
    pub fn label(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f:.4}")
                        .trim_end_matches('0')
                        .trim_end_matches('.')
                        .to_string()
                }
            }
            Value::Text(s) => s.clone(),
            Value::Time(t) => t.to_string(),
        }
    }

    /// SQL-style equality: null equals nothing (including null); numerics
    /// compare numerically across int/float; text comparing against a
    /// temporal coerces.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// SQL-style three-way comparison; `None` when either side is null or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Time(a), Time(b)) => Some(a.cmp(b)),
            (Time(_), Text(s)) => {
                let t = Timestamp::parse(s)?;
                self.sql_cmp(&Time(t))
            }
            (Text(s), Time(_)) => {
                let t = Timestamp::parse(s)?;
                Time(t).sql_cmp(other)
            }
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total order for sorting and set semantics: nulls first, then by type
    /// class (bool < numeric < time < text), then by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Time(_) => 3,
                Text(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// SQL LIKE with `%` (any run) and `_` (any char), case-insensitive.
    pub fn like(&self, pattern: &str) -> bool {
        let s = match self {
            Value::Text(s) => s.to_lowercase(),
            other => other.label().to_lowercase(),
        };
        like_match(&s, &pattern.to_lowercase())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and whole floats must hash equal since they compare equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Time(t) => {
                3u8.hash(state);
                t.hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

fn like_match(s: &str, p: &str) -> bool {
    // Classic two-pointer wildcard matcher over chars.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            mark = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_parse_and_display() {
        let t = Timestamp::parse("2020-09-13").unwrap();
        assert_eq!(t, Timestamp::date(2020, 9, 13));
        assert_eq!(t.to_string(), "2020-09-13");
        let t = Timestamp::parse("2020-09-13 14:30").unwrap();
        assert_eq!((t.hour, t.minute), (14, 30));
        let t = Timestamp::parse("2020-09-13 14:30:05").unwrap();
        assert_eq!(t.second, 5);
        assert!(Timestamp::parse("2020-13-01").is_none());
        assert!(Timestamp::parse("not a date").is_none());
        assert!(Timestamp::parse("2020-09-13 25:00").is_none());
    }

    #[test]
    fn weekday_and_quarter() {
        // 2021-06-20 (SIGMOD'21 start) was a Sunday.
        let t = Timestamp::date(2021, 6, 20);
        assert_eq!(t.weekday_name(), "Sunday");
        assert_eq!(t.quarter(), 2);
        assert_eq!(Timestamp::date(1970, 1, 1).days_from_epoch(), 0);
        assert_eq!(Timestamp::date(1970, 1, 1).weekday_name(), "Thursday");
        assert_eq!(Timestamp::date(2000, 3, 1).days_from_epoch(), 11017);
        assert_eq!(Timestamp::date(2021, 12, 31).month_name(), "December");
    }

    #[test]
    fn ordering_across_years() {
        let a = Timestamp::date(1999, 12, 31);
        let b = Timestamp::date(2000, 1, 1);
        assert!(a < b);
        assert!(a.days_from_epoch() + 1 == b.days_from_epoch());
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn sql_cmp_time_text_coercion() {
        let t = Value::Time(Timestamp::date(2020, 5, 1));
        assert!(t.sql_eq(&Value::text("2020-05-01")));
        assert_eq!(
            Value::text("2020-04-30").sql_cmp(&t),
            Some(Ordering::Less)
        );
        assert_eq!(t.sql_cmp(&Value::text("nope")), None);
    }

    #[test]
    fn total_cmp_is_total() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(1),
            Value::Float(1.5),
            Value::Time(Timestamp::date(2020, 1, 1)),
            Value::text("abc"),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let c = a.total_cmp(b);
                if i == j {
                    assert_eq!(c, Ordering::Equal);
                } else {
                    assert_eq!(c, b.total_cmp(a).reverse());
                }
            }
        }
    }

    #[test]
    fn eq_hash_consistent_for_int_float() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Float(3.0)));
    }

    #[test]
    fn like_patterns() {
        assert!(Value::text("International").like("Inter%"));
        assert!(Value::text("O'Hare International").like("%international"));
        assert!(Value::text("cat").like("c_t"));
        assert!(!Value::text("cart").like("c_t"));
        assert!(Value::text("abc").like("%"));
        assert!(!Value::text("abc").like("x%"));
        assert!(Value::text("").like("%"));
        assert!(!Value::text("").like("_"));
    }

    #[test]
    fn labels() {
        assert_eq!(Value::Float(2.0).label(), "2");
        assert_eq!(Value::Float(2.5).label(), "2.5");
        assert_eq!(Value::Float(0.125).label(), "0.125");
        assert_eq!(Value::Null.label(), "null");
        assert_eq!(Value::Time(Timestamp::date(2020, 1, 2)).label(), "2020-01-02");
    }
}
