//! Schemas: columns with C/T/Q classes, tables, databases, foreign keys.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// The nvBench column classes (paper Table 2: Categorical 68.78%, Temporal
/// 11.58%, Quantitative 19.64%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Categorical,
    Temporal,
    Quantitative,
}

impl ColumnType {
    pub fn letter(self) -> char {
        match self {
            ColumnType::Categorical => 'C',
            ColumnType::Temporal => 'T',
            ColumnType::Quantitative => 'Q',
        }
    }

    /// Infer a column class from a sample of values: any timestamp-typed or
    /// timestamp-parsable majority ⇒ Temporal; numeric majority ⇒
    /// Quantitative; otherwise Categorical.
    pub fn infer(values: &[Value]) -> ColumnType {
        let mut time = 0usize;
        let mut num = 0usize;
        let mut nonnull = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            nonnull += 1;
            match v {
                Value::Time(_) => time += 1,
                Value::Text(s) if crate::value::Timestamp::parse(s).is_some() => time += 1,
                Value::Int(_) | Value::Float(_) => num += 1,
                _ => {}
            }
        }
        if nonnull == 0 {
            return ColumnType::Categorical;
        }
        if time * 2 > nonnull {
            ColumnType::Temporal
        } else if num * 2 > nonnull {
            ColumnType::Quantitative
        } else {
            ColumnType::Categorical
        }
    }
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ctype: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ctype: ColumnType) -> Column {
        Column { name: name.into(), ctype }
    }

    pub fn categorical(name: impl Into<String>) -> Column {
        Column::new(name, ColumnType::Categorical)
    }

    pub fn temporal(name: impl Into<String>) -> Column {
        Column::new(name, ColumnType::Temporal)
    }

    pub fn quantitative(name: impl Into<String>) -> Column {
        Column::new(name, ColumnType::Quantitative)
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> TableSchema {
        TableSchema { name: name.into(), columns, primary_key: None }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }
}

/// A foreign-key edge `from_table.from_column → to_table.to_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Timestamp;

    #[test]
    fn infer_types() {
        let nums = vec![Value::Int(1), Value::Float(2.0), Value::Null];
        assert_eq!(ColumnType::infer(&nums), ColumnType::Quantitative);
        let texts = vec![Value::text("a"), Value::text("b")];
        assert_eq!(ColumnType::infer(&texts), ColumnType::Categorical);
        let times = vec![
            Value::Time(Timestamp::date(2020, 1, 1)),
            Value::text("2020-02-01"),
        ];
        assert_eq!(ColumnType::infer(&times), ColumnType::Temporal);
        assert_eq!(ColumnType::infer(&[]), ColumnType::Categorical);
        assert_eq!(ColumnType::infer(&[Value::Null]), ColumnType::Categorical);
    }

    #[test]
    fn letters() {
        assert_eq!(ColumnType::Categorical.letter(), 'C');
        assert_eq!(ColumnType::Temporal.to_string(), "T");
        assert_eq!(ColumnType::Quantitative.letter(), 'Q');
    }

    #[test]
    fn schema_lookup_case_insensitive() {
        let s = TableSchema::new(
            "t",
            vec![Column::categorical("Name"), Column::quantitative("Age")],
        );
        assert_eq!(s.column_index("name"), Some(0));
        assert_eq!(s.column("AGE").unwrap().ctype, ColumnType::Quantitative);
        assert!(s.column_index("missing").is_none());
    }
}
