//! # nv-data — relational engine substrate
//!
//! An in-memory relational database with typed values (including a
//! from-scratch calendar type), C/T/Q column classification, and a query
//! executor for the unified SQL/VIS AST of [`nv_ast`].
//!
//! The nvBench paper executes SQL and VIS queries against the Spider
//! databases in order to (a) render chart data, (b) extract DeepEye features
//! for chart-quality filtering, and (c) compute "result matching accuracy"
//! for the seq2vis evaluation. This crate provides all three capabilities.
//!
//! ```
//! use nv_data::{table_from, Database, ColumnType, Value, execute};
//! use nv_ast::tokens::parse_vql_str;
//!
//! let mut db = Database::new("demo", "Demo");
//! db.add_table(table_from(
//!     "faculty",
//!     &[("name", ColumnType::Categorical), ("sex", ColumnType::Categorical)],
//!     vec![
//!         vec![Value::text("ann"), Value::text("F")],
//!         vec![Value::text("bob"), Value::text("M")],
//!         vec![Value::text("cat"), Value::text("F")],
//!     ],
//! ));
//! let q = parse_vql_str(
//!     "visualize pie select faculty.sex , count ( faculty.* ) from faculty \
//!      group by faculty.sex",
//! ).unwrap();
//! let rs = execute(&db, &q).unwrap();
//! assert_eq!(rs.rows.len(), 2);
//! ```

pub mod csv;
pub mod exec;
pub mod schema;
pub mod table;
pub mod value;

pub use csv::{table_from_csv, table_from_csv_lenient, CsvError, CsvLoadReport};
pub use exec::{
    execute, execute_budgeted, execute_metered, execute_with_cache, execute_with_cache_budgeted,
    execute_with_cache_metered, CacheStats, ExecBudget, ExecCache, ExecError, ExecSpend, ResultSet,
};
pub use schema::{Column, ColumnType, ForeignKey, TableSchema};
pub use table::{table_from, Database, Table};
pub use value::{Timestamp, Value};
