//! Minimal CSV ingestion so downstream users can run the synthesizer over
//! their own data (the paper's pipeline, applied beyond Spider).
//!
//! Supports RFC-4180-style quoting (`"…"` fields with `""` escapes),
//! configurable delimiters, automatic value typing (int / float / timestamp
//! / text) and C/T/Q column-class inference.

use crate::schema::{Column, ColumnType, TableSchema};
use crate::table::Table;
use crate::value::{Timestamp, Value};

/// CSV parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parse one CSV record (quote-aware). Returns the fields.
fn split_record(line: &str, delim: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if cur.is_empty() {
                in_quotes = true;
            } else {
                return Err(CsvError {
                    line: line_no,
                    message: "quote inside unquoted field".into(),
                });
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(CsvError { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

/// Type a raw CSV field: empty → null; else int, float, timestamp, text.
fn type_field(raw: &str) -> Value {
    let t = raw.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("null") || t.eq_ignore_ascii_case("na") {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    if let Some(ts) = Timestamp::parse(t) {
        return Value::Time(ts);
    }
    Value::Text(t.to_string())
}

/// Load a table from CSV text. The first record is the header; column
/// classes are inferred from the data.
pub fn table_from_csv(name: &str, csv: &str, delim: char) -> Result<Table, CsvError> {
    let mut lines = csv
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines
        .next()
        .ok_or(CsvError { line: 0, message: "empty input".into() })?;
    let names = split_record(header, delim, hline + 1)?;
    if names.iter().any(|n| n.trim().is_empty()) {
        return Err(CsvError { line: hline + 1, message: "empty column name".into() });
    }
    let arity = names.len();

    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (i, line) in lines {
        let fields = split_record(line, delim, i + 1)?;
        if fields.len() != arity {
            return Err(CsvError {
                line: i + 1,
                message: format!("expected {arity} fields, found {}", fields.len()),
            });
        }
        rows.push(fields.iter().map(|f| type_field(f)).collect());
    }

    let schema = TableSchema {
        name: name.to_string(),
        columns: names
            .iter()
            .map(|n| Column::new(n.trim().replace(' ', "_"), ColumnType::Categorical))
            .collect(),
        primary_key: None,
    };
    let mut table = Table { schema, rows };
    table.infer_column_types();
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,age,city,joined,score
Ann,34,Boston,2020-01-05,91.5
Bob,28,\"New York, NY\",2019-11-20,78
\"O\"\"Hare\",41,Chicago,2021-06-30,
";

    #[test]
    fn loads_and_types_columns() {
        let t = table_from_csv("people", SAMPLE, ',').unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 5);
        assert_eq!(t.schema.column("age").unwrap().ctype, ColumnType::Quantitative);
        assert_eq!(t.schema.column("joined").unwrap().ctype, ColumnType::Temporal);
        assert_eq!(t.schema.column("city").unwrap().ctype, ColumnType::Categorical);
        assert_eq!(t.rows[1][2], Value::text("New York, NY"));
        assert_eq!(t.rows[2][0], Value::text("O\"Hare"));
        assert!(t.rows[2][4].is_null());
    }

    #[test]
    fn loaded_table_is_queryable() {
        use nv_ast::tokens::parse_vql_str;
        let t = table_from_csv("people", SAMPLE, ',').unwrap();
        let mut db = crate::table::Database::new("d", "Demo");
        db.add_table(t);
        let q = parse_vql_str("select people.name from people where people.age > 30").unwrap();
        let rs = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn alternative_delimiter() {
        let t = table_from_csv("t", "a;b\n1;x\n2;y\n", ';').unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Quantitative);
    }

    #[test]
    fn header_spaces_become_underscores() {
        let t = table_from_csv("t", "first name,last name\na,b\n", ',').unwrap();
        assert_eq!(t.schema.columns[0].name, "first_name");
    }

    #[test]
    fn errors() {
        assert!(table_from_csv("t", "", ',').is_err());
        let e = table_from_csv("t", "a,b\n1\n", ',').unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(table_from_csv("t", "a,b\n\"open,2\n", ',').is_err());
        assert!(table_from_csv("t", "a,\n1,2\n", ',').is_err());
        assert!(table_from_csv("t", "a,b\nx\"y,2\n", ',').is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = table_from_csv("t", "a\n\n1\n\n2\n", ',').unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
