//! Minimal CSV ingestion so downstream users can run the synthesizer over
//! their own data (the paper's pipeline, applied beyond Spider).
//!
//! Supports RFC-4180-style quoting (`"…"` fields with `""` escapes),
//! configurable delimiters, automatic value typing (int / float / timestamp
//! / text) and C/T/Q column-class inference.

use crate::schema::{Column, ColumnType, TableSchema};
use crate::table::Table;
use crate::value::{Timestamp, Value};

/// CSV parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parse one CSV record (quote-aware). Returns the fields.
fn split_record(line: &str, delim: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if cur.is_empty() {
                in_quotes = true;
            } else {
                return Err(CsvError {
                    line: line_no,
                    message: "quote inside unquoted field".into(),
                });
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(CsvError { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

/// Type a raw CSV field: empty → null; else int, float, timestamp, text.
fn type_field(raw: &str) -> Value {
    let t = raw.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("null") || t.eq_ignore_ascii_case("na") {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    if let Some(ts) = Timestamp::parse(t) {
        return Value::Time(ts);
    }
    Value::Text(t.to_string())
}

/// Load a table from CSV text. The first record is the header; column
/// classes are inferred from the data.
pub fn table_from_csv(name: &str, csv: &str, delim: char) -> Result<Table, CsvError> {
    let mut lines = csv
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines
        .next()
        .ok_or(CsvError { line: 0, message: "empty input".into() })?;
    let names = split_record(header, delim, hline + 1)?;
    if names.iter().any(|n| n.trim().is_empty()) {
        return Err(CsvError { line: hline + 1, message: "empty column name".into() });
    }
    let arity = names.len();

    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (i, line) in lines {
        let fields = split_record(line, delim, i + 1)?;
        if fields.len() != arity {
            return Err(CsvError {
                line: i + 1,
                message: format!("expected {arity} fields, found {}", fields.len()),
            });
        }
        rows.push(fields.iter().map(|f| type_field(f)).collect());
    }

    let schema = TableSchema {
        name: name.to_string(),
        columns: names
            .iter()
            .map(|n| Column::new(n.trim().replace(' ', "_"), ColumnType::Categorical))
            .collect(),
        primary_key: None,
    };
    let mut table = Table { schema, rows };
    table.infer_column_types();
    Ok(table)
}

/// What a lenient CSV load skipped and why. `warnings` holds one
/// `(line number, reason)` per skipped row, capped so a pathological file
/// cannot balloon the report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsvLoadReport {
    pub rows_loaded: usize,
    pub rows_skipped: usize,
    pub warnings: Vec<(usize, String)>,
    /// True when more rows were skipped than `warnings` records.
    pub warnings_truncated: bool,
}

impl CsvLoadReport {
    const MAX_WARNINGS: usize = 100;

    fn skip(&mut self, line: usize, reason: String) {
        self.rows_skipped += 1;
        if self.warnings.len() < Self::MAX_WARNINGS {
            self.warnings.push((line, reason));
        } else {
            self.warnings_truncated = true;
        }
    }
}

/// Load a table from CSV text, skipping malformed rows instead of failing.
///
/// Three malformation classes are tolerated, each skipped with a counted
/// warning in the [`CsvLoadReport`]:
///
/// 1. **broken quoting** — unterminated quotes, quotes inside unquoted
///    fields;
/// 2. **wrong arity** — a row with more or fewer fields than the header;
/// 3. **type outliers** — a non-numeric value in a column that is
///    numeric by majority, or an unparseable date in a majority-temporal
///    column (these rows would silently poison aggregates otherwise).
///
/// Still errors (like [`table_from_csv`]) when the input is unusable as a
/// whole: empty input or a malformed header.
pub fn table_from_csv_lenient(
    name: &str,
    csv: &str,
    delim: char,
) -> Result<(Table, CsvLoadReport), CsvError> {
    let mut lines = csv
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines
        .next()
        .ok_or(CsvError { line: 0, message: "empty input".into() })?;
    let names = split_record(header, delim, hline + 1)?;
    if names.iter().any(|n| n.trim().is_empty()) {
        return Err(CsvError { line: hline + 1, message: "empty column name".into() });
    }
    let arity = names.len();

    let mut report = CsvLoadReport::default();
    // (source line, typed row) — line numbers survive to the type pass.
    let mut rows: Vec<(usize, Vec<Value>)> = Vec::new();
    for (i, line) in lines {
        match split_record(line, delim, i + 1) {
            Err(e) => report.skip(e.line, e.message),
            Ok(fields) if fields.len() != arity => report.skip(
                i + 1,
                format!("expected {arity} fields, found {}", fields.len()),
            ),
            Ok(fields) => rows.push((i + 1, fields.iter().map(|f| type_field(f)).collect())),
        }
    }

    // Infer each column's majority class, then drop rows whose non-null
    // values contradict it (bad numerics in a Q column, invalid dates in a
    // T column).
    let col_types: Vec<ColumnType> = (0..arity)
        .map(|c| {
            let vals: Vec<Value> = rows.iter().map(|(_, r)| r[c].clone()).collect();
            ColumnType::infer(&vals)
        })
        .collect();
    let conforms = |v: &Value, t: ColumnType| match t {
        ColumnType::Quantitative => {
            v.is_null() || matches!(v, Value::Int(_) | Value::Float(_) | Value::Bool(_))
        }
        ColumnType::Temporal => {
            v.is_null()
                || matches!(v, Value::Time(_))
                || matches!(v, Value::Text(s) if Timestamp::parse(s).is_some())
        }
        ColumnType::Categorical => true,
    };
    let mut kept: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    for (line, row) in rows {
        match (0..arity).find(|&c| !conforms(&row[c], col_types[c])) {
            Some(c) => report.skip(
                line,
                format!(
                    "value '{}' does not fit {} column '{}'",
                    row[c].label(),
                    col_types[c],
                    names[c].trim()
                ),
            ),
            None => kept.push(row),
        }
    }
    report.rows_loaded = kept.len();

    let schema = TableSchema {
        name: name.to_string(),
        columns: names
            .iter()
            .map(|n| Column::new(n.trim().replace(' ', "_"), ColumnType::Categorical))
            .collect(),
        primary_key: None,
    };
    let mut table = Table { schema, rows: kept };
    table.infer_column_types();
    Ok((table, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,age,city,joined,score
Ann,34,Boston,2020-01-05,91.5
Bob,28,\"New York, NY\",2019-11-20,78
\"O\"\"Hare\",41,Chicago,2021-06-30,
";

    #[test]
    fn loads_and_types_columns() {
        let t = table_from_csv("people", SAMPLE, ',').unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 5);
        assert_eq!(t.schema.column("age").unwrap().ctype, ColumnType::Quantitative);
        assert_eq!(t.schema.column("joined").unwrap().ctype, ColumnType::Temporal);
        assert_eq!(t.schema.column("city").unwrap().ctype, ColumnType::Categorical);
        assert_eq!(t.rows[1][2], Value::text("New York, NY"));
        assert_eq!(t.rows[2][0], Value::text("O\"Hare"));
        assert!(t.rows[2][4].is_null());
    }

    #[test]
    fn loaded_table_is_queryable() {
        use nv_ast::tokens::parse_vql_str;
        let t = table_from_csv("people", SAMPLE, ',').unwrap();
        let mut db = crate::table::Database::new("d", "Demo");
        db.add_table(t);
        let q = parse_vql_str("select people.name from people where people.age > 30").unwrap();
        let rs = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn alternative_delimiter() {
        let t = table_from_csv("t", "a;b\n1;x\n2;y\n", ';').unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Quantitative);
    }

    #[test]
    fn header_spaces_become_underscores() {
        let t = table_from_csv("t", "first name,last name\na,b\n", ',').unwrap();
        assert_eq!(t.schema.columns[0].name, "first_name");
    }

    #[test]
    fn errors() {
        assert!(table_from_csv("t", "", ',').is_err());
        let e = table_from_csv("t", "a,b\n1\n", ',').unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(table_from_csv("t", "a,b\n\"open,2\n", ',').is_err());
        assert!(table_from_csv("t", "a,\n1,2\n", ',').is_err());
        assert!(table_from_csv("t", "a,b\nx\"y,2\n", ',').is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = table_from_csv("t", "a\n\n1\n\n2\n", ',').unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    // ---- lenient loading -------------------------------------------------

    #[test]
    fn lenient_skips_wrong_arity_rows() {
        let (t, rep) = table_from_csv_lenient("t", "a,b\n1,x\n2\n3,y,extra\n4,z\n", ',').unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(rep.rows_loaded, 2);
        assert_eq!(rep.rows_skipped, 2);
        assert_eq!(rep.warnings.len(), 2);
        assert_eq!(rep.warnings[0].0, 3);
        assert!(rep.warnings[0].1.contains("expected 2 fields, found 1"));
        assert_eq!(rep.warnings[1].0, 4);
        assert!(!rep.warnings_truncated);
    }

    #[test]
    fn lenient_skips_broken_quoting() {
        let (t, rep) = table_from_csv_lenient("t", "a,b\n1,x\n\"open,2\n3,y\n", ',').unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(rep.rows_skipped, 1);
        assert!(rep.warnings[0].1.contains("unterminated quote"));
    }

    #[test]
    fn lenient_skips_bad_numerics() {
        let (t, rep) =
            table_from_csv_lenient("t", "age\n30\n41\n29\nunknown\n35\n", ',').unwrap();
        // 4 numeric rows win the majority vote; 'unknown' is an outlier.
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Quantitative);
        assert_eq!(t.n_rows(), 4);
        assert_eq!(rep.rows_skipped, 1);
        assert_eq!(rep.warnings[0].0, 5);
        assert!(rep.warnings[0].1.contains("'unknown'"), "{:?}", rep.warnings);
        assert!(rep.warnings[0].1.contains("'age'"), "{:?}", rep.warnings);
    }

    #[test]
    fn lenient_skips_invalid_dates() {
        let (t, rep) = table_from_csv_lenient(
            "t",
            "joined\n2020-01-05\n2021-06-30\n2019-11-20\nnot-a-date\n",
            ',',
        )
        .unwrap();
        assert_eq!(t.schema.columns[0].ctype, ColumnType::Temporal);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(rep.rows_skipped, 1);
        assert!(rep.warnings[0].1.contains("not-a-date"));
    }

    #[test]
    fn lenient_keeps_text_columns_intact() {
        // A categorical column accepts anything — no type-outlier skipping.
        let (t, rep) = table_from_csv_lenient("t", "name\nann\n42\n2020-01-01\n", ',').unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(rep.rows_skipped, 0);
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let strict = table_from_csv("people", SAMPLE, ',').unwrap();
        let (lenient, rep) = table_from_csv_lenient("people", SAMPLE, ',').unwrap();
        assert_eq!(strict, lenient);
        assert_eq!(rep.rows_skipped, 0);
        assert_eq!(rep.rows_loaded, 3);
    }

    #[test]
    fn lenient_still_rejects_unusable_input() {
        assert!(table_from_csv_lenient("t", "", ',').is_err());
        assert!(table_from_csv_lenient("t", "a,\n1,2\n", ',').is_err());
    }

    #[test]
    fn lenient_warning_cap() {
        let mut csv = String::from("a,b\n");
        for _ in 0..150 {
            csv.push_str("1\n"); // wrong arity
        }
        let (t, rep) = table_from_csv_lenient("t", &csv, ',').unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(rep.rows_skipped, 150);
        assert_eq!(rep.warnings.len(), 100);
        assert!(rep.warnings_truncated);
    }
}
