//! # nv-fault — deterministic fault injection for robustness testing
//!
//! The synthesis pipeline has named **injection points** (sites) in the SQL
//! parser (`sql.parse`), the query executor (`data.exec`) and the chart
//! filter (`synth.filter`). In production nothing is armed and every site is
//! a single relaxed atomic load. A test arms a [`FaultPlan`] — a seed plus
//! per-site failure probabilities — and each site then fails
//! **deterministically**: the fire/no-fire decision is a pure hash of
//! `(plan seed, site name, content key)`, so it does not depend on thread
//! scheduling, call counts, or wall clock. The same plan over the same
//! corpus fails the same pairs on every run and for any worker count, which
//! is what lets the integration harness assert exact quarantine accounting
//! and bit-identical clean-pair output.
//!
//! Sites choose their failure style: the parser and executor return typed
//! errors, while the filter site *panics* — exercising the pipeline's
//! `catch_unwind` isolation rather than its error routing.
//!
//! ```
//! let plan = nv_fault::FaultPlan::new(7).site("sql.parse", 0.5);
//! let guard = nv_fault::arm_scoped(plan);
//! let fired = nv_fault::fire("sql.parse", nv_fault::key_str("SELECT 1"));
//! // Deterministic: the same (seed, site, key) always gives the same answer.
//! assert_eq!(fired, nv_fault::fire("sql.parse", nv_fault::key_str("SELECT 1")));
//! drop(guard); // disarms
//! assert!(!nv_fault::armed());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// A seeded injection plan: per-site failure probabilities.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    sites: Vec<(String, f64)>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, sites: Vec::new() }
    }

    /// Add (or override) a site with a failure probability in `[0, 1]`.
    pub fn site(mut self, name: &str, probability: f64) -> FaultPlan {
        self.sites.retain(|(n, _)| n != name);
        self.sites.push((name.to_string(), probability.clamp(0.0, 1.0)));
        self
    }

    fn probability(&self, name: &str) -> Option<f64> {
        self.sites
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// Arm a plan globally. Tests must serialize access (use [`arm_scoped`] and
/// keep armed scenarios in one test, or guard with a mutex): the plan is
/// process-wide.
pub fn arm(plan: FaultPlan) {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm all sites. Safe to call when already disarmed.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// RAII guard from [`arm_scoped`]: disarms on drop (including on panic).
pub struct ArmGuard(());

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm a plan for the lifetime of the returned guard.
pub fn arm_scoped(plan: FaultPlan) -> ArmGuard {
    arm(plan);
    ArmGuard(())
}

/// Is any plan armed? This is the only cost a production (disarmed) call
/// path pays: one relaxed atomic load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// FNV-1a hash of a string — the canonical way for a site to derive its
/// content key (e.g. from the SQL text or a candidate's VQL).
pub fn key_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates the combined (seed, site, key) hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Should the site fail for this content key? Pure in (armed plan, site,
/// key); always `false` when disarmed or the site is not in the plan.
pub fn fire(site: &str, key: u64) -> bool {
    if !armed() {
        return false;
    }
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    let Some(plan) = guard.as_ref() else { return false };
    let Some(p) = plan.probability(site) else { return false };
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = mix(plan.seed ^ key_str(site).rotate_left(17) ^ key);
    // Map the hash to [0, 1) and compare against the probability.
    (h >> 11) as f64 / ((1u64 << 53) as f64) < p
}

/// Panic with a recognizable message if the site fires — for sites that
/// test `catch_unwind` isolation rather than error routing.
pub fn panic_if(site: &str, key: u64) {
    if fire(site, key) {
        panic!("injected fault at {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The plan is process-global; serialize the tests that arm it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_never_fires() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        assert!(!armed());
        assert!(!fire("sql.parse", 123));
    }

    #[test]
    fn deterministic_and_probability_shaped() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = arm_scoped(FaultPlan::new(99).site("s", 0.3).site("never", 0.0).site("always", 1.0));
        let fired: Vec<bool> = (0..2000).map(|k| fire("s", k)).collect();
        let again: Vec<bool> = (0..2000).map(|k| fire("s", k)).collect();
        assert_eq!(fired, again, "decisions must be pure in (seed, site, key)");
        let rate = fired.iter().filter(|b| **b).count() as f64 / 2000.0;
        assert!((0.2..0.4).contains(&rate), "rate {rate} not ~0.3");
        assert!((0..500).all(|k| !fire("never", k)));
        assert!((0..500).all(|k| fire("always", k)));
        assert!((0..500).all(|k| !fire("unplanned", k)));
    }

    #[test]
    fn sites_decorrelated_and_seed_sensitive() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = arm_scoped(FaultPlan::new(1).site("a", 0.5).site("b", 0.5));
        let a: Vec<bool> = (0..1000).map(|k| fire("a", k)).collect();
        let b: Vec<bool> = (0..1000).map(|k| fire("b", k)).collect();
        assert_ne!(a, b, "different sites must not share decisions");
        drop(_g);
        let _g = arm_scoped(FaultPlan::new(2).site("a", 0.5));
        let a2: Vec<bool> = (0..1000).map(|k| fire("a", k)).collect();
        assert_ne!(a, a2, "different seeds must differ");
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _g = arm_scoped(FaultPlan::new(5).site("x", 1.0));
            assert!(armed());
            assert!(fire("x", 0));
        }
        assert!(!armed());
        assert!(!fire("x", 0));
    }

    #[test]
    fn panic_if_panics_only_when_armed() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        panic_if("x", 0); // no-op
        let _g = arm_scoped(FaultPlan::new(5).site("x", 1.0));
        let r = std::panic::catch_unwind(|| panic_if("x", 0));
        let msg = match r {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("expected an injected panic"),
        };
        assert!(msg.contains("injected fault at x"), "{msg}");
    }

    #[test]
    fn key_str_is_stable_fnv() {
        assert_eq!(key_str(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(key_str("SELECT 1"), key_str("SELECT 2"));
    }
}
