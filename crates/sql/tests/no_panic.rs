//! Robustness: `parse_sql` must never panic, whatever bytes it is fed.
//!
//! Three generators attack from different angles: raw character soup (lexer
//! edge cases: unterminated strings, stray quotes, non-ASCII), SQL-ish token
//! soup (parser edge cases: truncations, misplaced keywords), and mutated
//! valid queries (deletions that truncate mid-clause).

use nv_data::{table_from, ColumnType, Database, Value};
use nv_sql::parse_sql;
use proptest::prelude::*;

fn db() -> Database {
    let mut db = Database::new("college", "College");
    db.add_table(table_from(
        "student",
        &[
            ("id", ColumnType::Quantitative),
            ("name", ColumnType::Categorical),
            ("age", ColumnType::Quantitative),
        ],
        vec![vec![Value::Int(1), Value::text("a"), Value::Int(20)]],
    ));
    db
}

proptest! {
    #[test]
    fn arbitrary_chars_never_panic(chars in prop::collection::vec(any::<char>(), 0..200)) {
        let s: String = chars.into_iter().collect();
        let _ = parse_sql(&db(), &s);
    }

    #[test]
    fn sqlish_token_soup_never_panics(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING",
                "LIMIT", "JOIN", "ON", "AS", "AND", "OR", "NOT", "IN",
                "BETWEEN", "LIKE", "UNION", "INTERSECT", "EXCEPT", "DISTINCT",
                "COUNT", "AVG", "student", "name", "age", "student.name",
                "(", ")", ",", "*", "=", ">", "<", ">=", "'txt", "'txt'",
                "\"q", "42", "3.5", ";", ".",
            ]),
            0..40,
        ),
    ) {
        let s = toks.join(" ");
        let _ = parse_sql(&db(), &s);
    }

    #[test]
    fn truncated_valid_queries_never_panic(cut in 0usize..200) {
        let sql = "SELECT name, COUNT(*) FROM student WHERE age > 18 AND name LIKE 'a%' \
                   GROUP BY name ORDER BY COUNT(*) DESC LIMIT 5";
        let end = cut.min(sql.len());
        // Respect char boundaries (the query is ASCII, but stay defensive).
        if sql.is_char_boundary(end) {
            let _ = parse_sql(&db(), &sql[..end]);
        }
    }
}
