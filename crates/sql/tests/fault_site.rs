//! The `sql.parse` injection point, exercised in its own test binary: the
//! fault plan is process-global, so arming it must not share a process with
//! tests that parse unrelated SQL.

use nv_data::{table_from, ColumnType, Database, Value};
use nv_sql::{parse_sql, SqlError};
use std::sync::Mutex;

// Both tests arm the process-global plan; never let them overlap.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn db() -> Database {
    let mut db = Database::new("college", "College");
    db.add_table(table_from(
        "student",
        &[("name", ColumnType::Categorical)],
        vec![vec![Value::text("a")]],
    ));
    db
}

#[test]
fn injected_parse_fault_is_a_typed_error() {
    let _l = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = db();
    let sql = "SELECT name FROM student";
    assert!(parse_sql(&db, sql).is_ok());

    let guard = nv_fault::arm_scoped(nv_fault::FaultPlan::new(3).site("sql.parse", 1.0));
    let e = parse_sql(&db, sql).unwrap_err();
    assert!(matches!(e, SqlError::Parse { .. }), "{e}");
    assert!(e.to_string().contains("injected fault at sql.parse"), "{e}");

    // Disarmed again: the same statement parses.
    drop(guard);
    assert!(parse_sql(&db, sql).is_ok());
}

#[test]
fn partial_probability_is_deterministic_per_statement() {
    let _l = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = db();
    let _guard = nv_fault::arm_scoped(nv_fault::FaultPlan::new(11).site("sql.parse", 0.5));
    let statements: Vec<String> = (0..40)
        .map(|i| format!("SELECT name FROM student LIMIT {i}"))
        .collect();
    let verdicts: Vec<bool> = statements.iter().map(|s| parse_sql(&db, s).is_ok()).collect();
    // Decisions are keyed on the SQL text: re-running gives the same split.
    let again: Vec<bool> = statements.iter().map(|s| parse_sql(&db, s).is_ok()).collect();
    assert_eq!(verdicts, again);
    assert!(verdicts.iter().any(|v| *v), "some statements must survive p=0.5");
    assert!(verdicts.iter().any(|v| !*v), "some statements must fail p=0.5");
}
