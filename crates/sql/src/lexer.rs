//! SQL lexer for the Spider-scale subset.

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted), kept verbatim; keyword matching is
    /// case-insensitive at the parser level.
    Word(String),
    /// `"quoted identifier"` or `` `quoted` ``.
    QuotedIdent(String),
    /// `'string literal'` (with `''` escapes).
    Str(String),
    Int(i64),
    Float(f64),
    /// Operators and punctuation: `( ) , . * = != <> < <= > >= ;`
    Sym(&'static str),
}

impl Token {
    pub fn word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Case-insensitive keyword test.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Error produced on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string.
pub fn lex(sql: &str) -> Result<Vec<Token>, LexError> {
    let b = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '.' | '*' | ';' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    _ => ";",
                }));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
                if i < b.len() && b[i] == b'=' {
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Sym("!="));
                    i += 2;
                } else {
                    return Err(LexError { at: i, message: "lone '!'".into() });
                }
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Sym("!="));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = read_quoted(b, i, b'\'')
                    .ok_or_else(|| LexError { at: i, message: "unterminated string".into() })?;
                out.push(Token::Str(s));
                i = next;
            }
            '"' | '`' => {
                let q = c as u8;
                let (s, next) = read_quoted(b, i, q).ok_or_else(|| LexError {
                    at: i,
                    message: "unterminated quoted identifier".into(),
                })?;
                out.push(Token::QuotedIdent(s));
                i = next;
            }
            '-' if i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit() => {
                let (t, next) = read_number(b, i);
                out.push(t);
                i = next;
            }
            '0'..='9' => {
                let (t, next) = read_number(b, i);
                out.push(t);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(sql[start..i].to_string()));
            }
            _ => {
                return Err(LexError { at: i, message: format!("unexpected character '{c}'") })
            }
        }
    }
    Ok(out)
}

fn read_quoted(b: &[u8], start: usize, quote: u8) -> Option<(String, usize)> {
    let mut i = start + 1;
    let mut s = String::new();
    while i < b.len() {
        if b[i] == quote {
            if i + 1 < b.len() && b[i + 1] == quote {
                s.push(quote as char);
                i += 2;
            } else {
                return Some((s, i + 1));
            }
        } else {
            s.push(b[i] as char);
            i += 1;
        }
    }
    None
}

fn read_number(b: &[u8], start: usize) -> (Token, usize) {
    let mut i = start;
    if b[i] == b'-' {
        i += 1;
    }
    let mut is_float = false;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !is_float && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit() {
            is_float = true;
            i += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..i]).unwrap();
    let tok = if is_float {
        Token::Float(text.parse().unwrap_or(0.0))
    } else {
        text.parse::<i64>().map(Token::Int).unwrap_or(Token::Float(0.0))
    };
    (tok, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_query() {
        let toks = lex("SELECT COUNT(*) FROM Faculty WHERE sex = 'F' GROUP BY rank").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[2], Token::Sym("("));
        assert!(toks.iter().any(|t| *t == Token::Str("F".into())));
    }

    #[test]
    fn lex_operators() {
        let toks = lex("a >= 1 AND b <> 2 OR c != 3 AND d <= 4 AND e < 5 AND f > 6").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| if let Token::Sym(s) = t { Some(*s) } else { None })
            .collect();
        assert_eq!(syms, vec![">=", "!=", "!=", "<=", "<", ">"]);
    }

    #[test]
    fn lex_numbers() {
        let toks = lex("42 -7 3.14 10.0").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.14),
                Token::Float(10.0)
            ]
        );
    }

    #[test]
    fn lex_quoted_forms() {
        let toks = lex(r#"SELECT "first name", `last` FROM t WHERE x = 'O''Hare'"#).unwrap();
        assert!(toks.contains(&Token::QuotedIdent("first name".into())));
        assert!(toks.contains(&Token::QuotedIdent("last".into())));
        assert!(toks.contains(&Token::Str("O'Hare".into())));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("SELECT 'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a # b").is_err());
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn double_equals_tolerated() {
        let toks = lex("a == 1").unwrap();
        assert_eq!(toks[1], Token::Sym("="));
        assert_eq!(toks[2], Token::Int(1));
    }
}
