//! # nv-sql — SQL front-end for the unified AST
//!
//! A from-scratch lexer + recursive-descent parser for the Spider-scale SQL
//! subset the nvBench paper builds on, lowering directly into the
//! [`nv_ast`] unified grammar (ORDER BY + LIMIT becomes `Superlative`,
//! HAVING merges into the `Filter` subtree, aliases are substituted away),
//! plus a SQL renderer ([`to_sql`]) with the round-trip property
//! `parse_sql(to_sql(q)) == q`.
//!
//! ```
//! use nv_data::{table_from, ColumnType, Database, Value};
//! use nv_sql::{parse_sql, to_sql};
//!
//! let mut db = Database::new("d", "Demo");
//! db.add_table(table_from(
//!     "emp",
//!     &[("title", ColumnType::Categorical), ("salary", ColumnType::Quantitative)],
//!     vec![vec![Value::text("eng"), Value::Int(100)]],
//! ));
//! let q = parse_sql(&db, "SELECT title, AVG(salary) FROM emp GROUP BY title ORDER BY AVG(salary) DESC LIMIT 3").unwrap();
//! // ORDER BY … LIMIT lowers to the grammar's Superlative production:
//! assert!(q.query.primary().superlative.is_some());
//! assert_eq!(parse_sql(&db, &to_sql(&q)).unwrap(), q);
//! ```

pub mod lexer;
pub mod parser;
pub mod sqlgen;

pub use lexer::{lex, LexError, Token};
pub use parser::{parse_sql, SqlError};
pub use sqlgen::to_sql;
