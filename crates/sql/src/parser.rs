//! Recursive-descent SQL parser producing the unified AST.
//!
//! Covers the Spider-scale subset the paper piggybacks (§2.2 "sql scope"):
//! SELECT (with aggregates and DISTINCT), FROM with explicit `JOIN … ON` and
//! implicit comma joins, WHERE/HAVING with and/or, comparison, BETWEEN,
//! (NOT) LIKE, (NOT) IN, nested subqueries, GROUP BY, ORDER BY,
//! LIMIT (lowered to the `Superlative` production), and
//! INTERSECT/UNION/EXCEPT.
//!
//! Unqualified column names are resolved against the database schema;
//! aliases (`FROM student AS T1`) are substituted away so the resulting tree
//! only speaks in real table names — exactly what the synthesizer and the
//! executor expect.

use crate::lexer::{lex, LexError, Token};
use nv_ast::*;
use nv_data::Database;

/// Error from parsing or resolving a SQL string.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    Lex(LexError),
    Parse { at: usize, message: String },
    Resolve(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(e) => write!(f, "{e}"),
            SqlError::Parse { at, message } => {
                write!(f, "SQL parse error at token {at}: {message}")
            }
            SqlError::Resolve(m) => write!(f, "SQL resolve error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<LexError> for SqlError {
    fn from(e: LexError) -> Self {
        SqlError::Lex(e)
    }
}

/// Max combined nesting depth (parenthesized predicates + subqueries). Deep
/// enough for any real corpus query, shallow enough that recursive descent
/// can never overflow the stack — an overflow aborts the process, which no
/// `catch_unwind` downstream could contain.
const MAX_DEPTH: usize = 64;

/// Parse a SQL string against a database schema into an SQL tree
/// (a [`VisQuery`] with `chart == None`).
pub fn parse_sql(db: &Database, sql: &str) -> Result<VisQuery, SqlError> {
    // The `sql.parse` injection point: keyed on the SQL text, so the same
    // statement fails deterministically on every run. One atomic load when
    // disarmed.
    if nv_fault::armed() && nv_fault::fire("sql.parse", nv_fault::key_str(sql)) {
        return Err(SqlError::Parse { at: 0, message: "injected fault at sql.parse".into() });
    }
    let tokens = lex(sql)?;
    let mut p = SqlParser { toks: &tokens, pos: 0, db, depth: 0 };
    let query = p.parse_set_query()?;
    // Tolerate a trailing semicolon.
    if p.pos < p.toks.len() && p.toks[p.pos] == Token::Sym(";") {
        p.pos += 1;
    }
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(VisQuery::sql(query))
}

struct SqlParser<'a> {
    toks: &'a [Token],
    pos: usize,
    db: &'a Database,
    /// Current nesting depth (parens + subqueries), bounded by [`MAX_DEPTH`].
    depth: usize,
}

/// Per-body context: FROM tables (real names) and alias → table mapping.
#[derive(Default, Clone)]
struct Scope {
    tables: Vec<String>,
    aliases: Vec<(String, String)>,
}

impl Scope {
    fn resolve_table(&self, name: &str) -> Option<&str> {
        for (a, t) in &self.aliases {
            if a.eq_ignore_ascii_case(name) {
                return Some(t);
            }
        }
        self.tables
            .iter()
            .find(|t| t.eq_ignore_ascii_case(name))
            .map(String::as_str)
    }
}

impl<'a> SqlParser<'a> {
    fn err(&self, m: impl Into<String>) -> SqlError {
        SqlError::Parse { at: self.pos, message: m.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if let Some(Token::Sym(t)) = self.peek() {
            if *t == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), SqlError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            Some(Token::QuotedIdent(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Bump the nesting depth; errors instead of risking a stack overflow.
    /// Callers decrement on the success path; on error the whole parse is
    /// abandoned, so a stale count is harmless.
    fn descend(&mut self) -> Result<(), SqlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_set_query(&mut self) -> Result<SetQuery, SqlError> {
        self.descend()?;
        let out = self.parse_set_query_inner();
        self.depth -= 1;
        out
    }

    fn parse_set_query_inner(&mut self) -> Result<SetQuery, SqlError> {
        let left = self.parse_body()?;
        let op = if self.eat_kw("union") {
            // Tolerate UNION ALL (treated as UNION; nvBench set semantics).
            self.eat_kw("all");
            Some(SetOp::Union)
        } else if self.eat_kw("intersect") {
            Some(SetOp::Intersect)
        } else if self.eat_kw("except") {
            Some(SetOp::Except)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.parse_body()?;
                Ok(SetQuery::Compound { op, left: Box::new(left), right: Box::new(right) })
            }
            None => Ok(SetQuery::Simple(Box::new(left))),
        }
    }

    fn parse_body(&mut self) -> Result<QueryBody, SqlError> {
        self.expect_kw("select")?;
        let select_distinct = self.eat_kw("distinct");

        // Select items are parsed as raw expressions first; resolution needs
        // the FROM clause, which comes later.
        let mut raw_select = vec![self.parse_raw_expr()?];
        while self.eat_sym(",") {
            raw_select.push(self.parse_raw_expr()?);
        }

        self.expect_kw("from")?;
        let mut scope = Scope::default();
        let mut joins: Vec<(RawRef, RawRef)> = Vec::new();
        self.parse_table_ref(&mut scope)?;
        loop {
            if self.eat_sym(",") {
                self.parse_table_ref(&mut scope)?;
            } else if self.eat_kw("join") || {
                // INNER JOIN / LEFT JOIN read as plain joins.
                let save = self.pos;
                if (self.eat_kw("inner") || self.eat_kw("left") || self.eat_kw("right"))
                    && self.eat_kw("join")
                {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } {
                self.parse_table_ref(&mut scope)?;
                self.expect_kw("on")?;
                let l = self.parse_raw_ref()?;
                self.expect_sym("=")?;
                let r = self.parse_raw_ref()?;
                joins.push((l, r));
            } else {
                break;
            }
        }

        let mut filter: Option<Predicate> = None;
        if self.eat_kw("where") {
            let (pred, extra_joins) = self.parse_pred(&scope)?;
            joins.extend(extra_joins);
            filter = pred;
        }

        let mut group_cols: Vec<ColumnRef> = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                let r = self.parse_raw_ref()?;
                group_cols.push(self.resolve_ref(&scope, &r)?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        if self.eat_kw("having") {
            let (pred, extra_joins) = self.parse_pred(&scope)?;
            joins.extend(extra_joins);
            filter = Predicate::and_opt(filter, pred);
        }

        let mut order: Option<OrderSpec> = None;
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            let e = self.parse_raw_expr()?;
            let attr = self.resolve_expr(&scope, &e)?;
            let dir = if self.eat_kw("desc") {
                OrderDir::Desc
            } else {
                self.eat_kw("asc");
                OrderDir::Asc
            };
            order = Some(OrderSpec { attr, dir });
        }

        let mut superlative: Option<Superlative> = None;
        if self.eat_kw("limit") {
            let k = match self.peek() {
                Some(Token::Int(n)) if *n >= 0 => {
                    let n = *n as u64;
                    self.pos += 1;
                    n
                }
                _ => return Err(self.err("expected LIMIT count")),
            };
            // ORDER BY … LIMIT k lowers to the Superlative production.
            if let Some(o) = order.take() {
                let dir = match o.dir {
                    OrderDir::Desc => SuperDir::Most,
                    OrderDir::Asc => SuperDir::Least,
                };
                superlative = Some(Superlative { dir, k, attr: o.attr });
            } else {
                // Bare LIMIT: arbitrary-k rows; anchor on the first select
                // attribute for determinism.
                let attr = self.resolve_expr(&scope, &raw_select[0])?;
                superlative = Some(Superlative { dir: SuperDir::Most, k, attr });
            }
        }

        // Resolve the select list (expanding a bare `*`).
        let mut select: Vec<Attr> = Vec::new();
        for e in &raw_select {
            if let RawExpr::Star = e {
                for t in &scope.tables {
                    let table = self
                        .db
                        .table(t)
                        .ok_or_else(|| SqlError::Resolve(format!("unknown table '{t}'")))?;
                    for c in &table.schema.columns {
                        select.push(Attr::col(table.name().to_string(), c.name.clone()));
                    }
                }
            } else {
                select.push(self.resolve_expr(&scope, e)?);
            }
        }

        // SELECT DISTINCT without aggregates ≡ GROUP BY all selected columns.
        if select_distinct && group_cols.is_empty() && !select.iter().any(Attr::is_aggregated) {
            group_cols = select.iter().map(|a| a.col.clone()).collect();
        }

        let group = if group_cols.is_empty() {
            None
        } else {
            Some(GroupSpec { group_by: group_cols, bin: None })
        };

        let joins = joins
            .iter()
            .map(|(l, r)| {
                Ok(JoinCond {
                    left: self.resolve_ref(&scope, l)?,
                    right: self.resolve_ref(&scope, r)?,
                })
            })
            .collect::<Result<Vec<_>, SqlError>>()?;

        Ok(QueryBody {
            select,
            from: scope.tables.clone(),
            joins,
            filter,
            group,
            order,
            superlative,
        })
    }

    fn parse_table_ref(&mut self, scope: &mut Scope) -> Result<(), SqlError> {
        let name = self.ident()?;
        let real = self
            .db
            .table(&name)
            .map(|t| t.name().to_string())
            .ok_or_else(|| SqlError::Resolve(format!("unknown table '{name}'")))?;
        scope.tables.push(real.clone());
        // Optional alias: `AS alias` or bare alias word that is not a clause
        // keyword.
        if self.eat_kw("as") {
            let alias = self.ident()?;
            scope.aliases.push((alias, real));
        } else if let Some(Token::Word(w)) = self.peek() {
            const CLAUSES: [&str; 14] = [
                "join", "inner", "left", "right", "on", "where", "group", "having", "order",
                "limit", "union", "intersect", "except", "as",
            ];
            if !CLAUSES.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                let alias = w.clone();
                self.pos += 1;
                scope.aliases.push((alias, real));
            }
        }
        Ok(())
    }

    // ---- raw expressions (pre-resolution) ----

    fn parse_raw_expr(&mut self) -> Result<RawExpr, SqlError> {
        if let Some(Token::Sym("*")) = self.peek() {
            self.pos += 1;
            return Ok(RawExpr::Star);
        }
        if let Some(Token::Word(w)) = self.peek() {
            if let Some(agg) = AggFunc::from_keyword(&w.to_lowercase()) {
                if self.toks.get(self.pos + 1) == Some(&Token::Sym("(")) {
                    self.pos += 2;
                    let distinct = self.eat_kw("distinct");
                    let arg = if self.eat_sym("*") {
                        RawRef { qualifier: None, name: "*".into() }
                    } else {
                        self.parse_raw_ref()?
                    };
                    self.expect_sym(")")?;
                    return Ok(RawExpr::Agg { agg, arg, distinct });
                }
            }
        }
        Ok(RawExpr::Col(self.parse_raw_ref()?))
    }

    fn parse_raw_ref(&mut self) -> Result<RawRef, SqlError> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            if self.eat_sym("*") {
                return Ok(RawRef { qualifier: Some(first), name: "*".into() });
            }
            let name = self.ident()?;
            Ok(RawRef { qualifier: Some(first), name })
        } else {
            Ok(RawRef { qualifier: None, name: first })
        }
    }

    fn resolve_ref(&self, scope: &Scope, r: &RawRef) -> Result<ColumnRef, SqlError> {
        if let Some(q) = &r.qualifier {
            let table = scope
                .resolve_table(q)
                .ok_or_else(|| SqlError::Resolve(format!("unknown table or alias '{q}'")))?;
            return Ok(ColumnRef::new(table.to_string(), r.name.clone()));
        }
        if r.name == "*" {
            let t = scope
                .tables
                .first()
                .ok_or_else(|| SqlError::Resolve("star outside FROM scope".into()))?;
            return Ok(ColumnRef::new(t.clone(), "*"));
        }
        // Unqualified: find a FROM table whose schema declares the column.
        for t in &scope.tables {
            if let Some(table) = self.db.table(t) {
                if table.schema.column_index(&r.name).is_some() {
                    return Ok(ColumnRef::new(table.name().to_string(), r.name.clone()));
                }
            }
        }
        Err(SqlError::Resolve(format!(
            "column '{}' not found in tables {:?}",
            r.name, scope.tables
        )))
    }

    fn resolve_expr(&self, scope: &Scope, e: &RawExpr) -> Result<Attr, SqlError> {
        match e {
            RawExpr::Star => Err(SqlError::Resolve("bare '*' not valid here".into())),
            RawExpr::Col(r) => {
                let col = self.resolve_ref(scope, r)?;
                Ok(Attr { agg: AggFunc::None, col, distinct: false })
            }
            RawExpr::Agg { agg, arg, distinct } => {
                let col = self.resolve_ref(scope, arg)?;
                Ok(Attr { agg: *agg, col, distinct: *distinct })
            }
        }
    }

    // ---- predicates ----

    /// Parse a predicate. Equality conditions between two *columns* are
    /// extracted as implicit join conditions (Spider's comma-join style) and
    /// returned separately.
    #[allow(clippy::type_complexity)]
    fn parse_pred(
        &mut self,
        scope: &Scope,
    ) -> Result<(Option<Predicate>, Vec<(RawRef, RawRef)>), SqlError> {
        let mut joins = Vec::new();
        let p = self.parse_or(scope, &mut joins)?;
        Ok((p, joins))
    }

    fn parse_or(
        &mut self,
        scope: &Scope,
        joins: &mut Vec<(RawRef, RawRef)>,
    ) -> Result<Option<Predicate>, SqlError> {
        let mut acc = self.parse_and(scope, joins)?;
        while self.eat_kw("or") {
            let rhs = self.parse_and(scope, joins)?;
            acc = match (acc, rhs) {
                (Some(a), Some(b)) => Some(Predicate::Or(Box::new(a), Box::new(b))),
                (a, b) => a.or(b),
            };
        }
        Ok(acc)
    }

    fn parse_and(
        &mut self,
        scope: &Scope,
        joins: &mut Vec<(RawRef, RawRef)>,
    ) -> Result<Option<Predicate>, SqlError> {
        let mut acc = self.parse_prim(scope, joins)?;
        while self.eat_kw("and") {
            let rhs = self.parse_prim(scope, joins)?;
            acc = Predicate::and_opt(acc, rhs);
        }
        Ok(acc)
    }

    fn parse_prim(
        &mut self,
        scope: &Scope,
        joins: &mut Vec<(RawRef, RawRef)>,
    ) -> Result<Option<Predicate>, SqlError> {
        if self.eat_sym("(") {
            self.descend()?;
            let p = self.parse_or(scope, joins)?;
            self.depth -= 1;
            self.expect_sym(")")?;
            return Ok(p);
        }
        self.parse_cond(scope, joins)
    }

    fn parse_cond(
        &mut self,
        scope: &Scope,
        joins: &mut Vec<(RawRef, RawRef)>,
    ) -> Result<Option<Predicate>, SqlError> {
        let e = self.parse_raw_expr()?;
        let negated = self.eat_kw("not");

        if self.eat_kw("between") {
            let attr = self.resolve_expr(scope, &e)?;
            let low = self.parse_value_operand()?;
            self.expect_kw("and")?;
            let high = self.parse_value_operand()?;
            if negated {
                return Err(self.err("NOT BETWEEN is not supported"));
            }
            return Ok(Some(Predicate::Between { attr, low, high }));
        }
        if self.eat_kw("like") {
            let attr = self.resolve_expr(scope, &e)?;
            match self.peek() {
                Some(Token::Str(s)) => {
                    let pattern = s.clone();
                    self.pos += 1;
                    return Ok(Some(Predicate::Like { attr, pattern, negated }));
                }
                _ => return Err(self.err("expected string after LIKE")),
            }
        }
        if self.eat_kw("in") {
            let attr = self.resolve_expr(scope, &e)?;
            self.expect_sym("(")?;
            let rhs = if self.peek().is_some_and(|t| t.is_kw("select")) {
                let q = self.parse_set_query()?;
                Operand::Subquery(Box::new(q))
            } else {
                let mut lits = vec![self.parse_literal()?];
                while self.eat_sym(",") {
                    lits.push(self.parse_literal()?);
                }
                Operand::List(lits)
            };
            self.expect_sym(")")?;
            return Ok(Some(Predicate::In { attr, rhs, negated }));
        }
        if negated {
            return Err(self.err("expected BETWEEN/LIKE/IN after NOT"));
        }

        let op_tok = match self.peek() {
            Some(Token::Sym(s)) => *s,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let op = CmpOp::from_symbol(op_tok)
            .ok_or_else(|| self.err(format!("unknown operator '{op_tok}'")))?;
        self.pos += 1;

        // Column = Column is an implicit join condition, not a filter.
        if op == CmpOp::Eq {
            if let Some(r) = self.try_parse_column_operand(scope) {
                if let RawExpr::Col(l) = &e {
                    joins.push((l.clone(), r));
                    return Ok(None);
                }
                return Err(self.err("aggregate = column is not supported"));
            }
        }

        let attr = self.resolve_expr(scope, &e)?;
        let rhs = if self.eat_sym("(") {
            if self.peek().is_some_and(|t| t.is_kw("select")) {
                let q = self.parse_set_query()?;
                self.expect_sym(")")?;
                Operand::Subquery(Box::new(q))
            } else {
                let lit = self.parse_literal()?;
                self.expect_sym(")")?;
                Operand::Lit(lit)
            }
        } else {
            Operand::Lit(self.parse_literal()?)
        };
        Ok(Some(Predicate::Cmp { op, attr, rhs }))
    }

    /// Try to parse the next tokens as a column reference operand (used to
    /// detect implicit joins `a.x = b.y`). Backtracks on failure.
    fn try_parse_column_operand(&mut self, scope: &Scope) -> Option<RawRef> {
        let save = self.pos;
        match self.peek() {
            Some(Token::Word(w))
                if !w.eq_ignore_ascii_case("true")
                    && !w.eq_ignore_ascii_case("false")
                    && !w.eq_ignore_ascii_case("null") =>
            {
                match self.parse_raw_ref() {
                    Ok(r) if self.resolve_ref(scope, &r).is_ok() => Some(r),
                    _ => {
                        self.pos = save;
                        None
                    }
                }
            }
            _ => None,
        }
    }

    fn parse_value_operand(&mut self) -> Result<Operand, SqlError> {
        Ok(Operand::Lit(self.parse_literal()?))
    }

    fn parse_literal(&mut self) -> Result<Literal, SqlError> {
        let lit = match self.peek() {
            Some(Token::Int(n)) => Literal::Int(*n),
            Some(Token::Float(f)) => Literal::Float(*f),
            Some(Token::Str(s)) => Literal::Text(s.clone()),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("null") => Literal::Null,
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("true") => Literal::Bool(true),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("false") => Literal::Bool(false),
            other => return Err(self.err(format!("expected literal, found {other:?}"))),
        };
        self.pos += 1;
        Ok(lit)
    }
}

#[derive(Debug, Clone)]
struct RawRef {
    qualifier: Option<String>,
    name: String,
}

#[derive(Debug, Clone)]
enum RawExpr {
    Star,
    Col(RawRef),
    Agg { agg: AggFunc, arg: RawRef, distinct: bool },
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, ColumnType, Value};

    fn db() -> Database {
        let mut db = Database::new("college", "College");
        db.add_table(table_from(
            "student",
            &[
                ("id", ColumnType::Quantitative),
                ("name", ColumnType::Categorical),
                ("age", ColumnType::Quantitative),
                ("major", ColumnType::Categorical),
                ("enrolled", ColumnType::Temporal),
            ],
            vec![vec![
                Value::Int(1),
                Value::text("a"),
                Value::Int(20),
                Value::text("cs"),
                Value::text("2019-09-01"),
            ]],
        ));
        db.add_table(table_from(
            "department",
            &[
                ("dept_id", ColumnType::Quantitative),
                ("dept_name", ColumnType::Categorical),
            ],
            vec![vec![Value::Int(1), Value::text("cs")]],
        ));
        db
    }

    fn p(sql: &str) -> VisQuery {
        parse_sql(&db(), sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn simple_select() {
        let q = p("SELECT name, age FROM student");
        let b = q.query.primary();
        assert_eq!(b.select.len(), 2);
        assert_eq!(b.select[0].col.to_token(), "student.name");
        assert!(q.chart.is_none());
    }

    #[test]
    fn count_star_group_by() {
        let q = p("SELECT major, COUNT(*) FROM student GROUP BY major");
        let b = q.query.primary();
        assert_eq!(b.select[1].agg, AggFunc::Count);
        assert!(b.select[1].col.is_star());
        assert_eq!(b.group.as_ref().unwrap().group_by[0].to_token(), "student.major");
    }

    #[test]
    fn where_and_having_merge() {
        let q = p(
            "SELECT major, AVG(age) FROM student WHERE age > 18 \
             GROUP BY major HAVING COUNT(*) >= 2",
        );
        let f = q.query.primary().filter.as_ref().unwrap();
        assert_eq!(f.leaf_count(), 2);
    }

    #[test]
    fn order_limit_lowers_to_superlative() {
        let q = p("SELECT name FROM student ORDER BY age DESC LIMIT 3");
        let b = q.query.primary();
        assert!(b.order.is_none());
        let s = b.superlative.as_ref().unwrap();
        assert_eq!(s.dir, SuperDir::Most);
        assert_eq!(s.k, 3);
        assert_eq!(s.attr.col.column, "age");

        let q = p("SELECT name FROM student ORDER BY age ASC LIMIT 1");
        assert_eq!(q.query.primary().superlative.as_ref().unwrap().dir, SuperDir::Least);
    }

    #[test]
    fn order_without_limit_stays_order() {
        let q = p("SELECT name FROM student ORDER BY age");
        let o = q.query.primary().order.as_ref().unwrap();
        assert_eq!(o.dir, OrderDir::Asc);
    }

    #[test]
    fn bare_limit_anchors_first_attr() {
        let q = p("SELECT name FROM student LIMIT 5");
        let s = q.query.primary().superlative.as_ref().unwrap();
        assert_eq!(s.k, 5);
        assert_eq!(s.attr.col.column, "name");
    }

    #[test]
    fn explicit_join_with_aliases() {
        let q = p(
            "SELECT T1.name, T2.dept_name FROM student AS T1 \
             JOIN department AS T2 ON T1.major = T2.dept_name",
        );
        let b = q.query.primary();
        assert_eq!(b.from, vec!["student".to_string(), "department".to_string()]);
        assert_eq!(b.joins.len(), 1);
        assert_eq!(b.joins[0].left.to_token(), "student.major");
        assert_eq!(b.joins[0].right.to_token(), "department.dept_name");
    }

    #[test]
    fn implicit_comma_join() {
        let q = p(
            "SELECT student.name FROM student, department \
             WHERE student.major = department.dept_name AND student.age > 20",
        );
        let b = q.query.primary();
        assert_eq!(b.joins.len(), 1);
        let f = b.filter.as_ref().unwrap();
        assert_eq!(f.leaf_count(), 1);
    }

    #[test]
    fn in_subquery_and_list() {
        let q = p(
            "SELECT name FROM student WHERE major IN \
             (SELECT dept_name FROM department)",
        );
        assert!(q.query.has_subquery());
        let q = p("SELECT name FROM student WHERE major IN ('cs', 'math')");
        match q.query.primary().filter.as_ref().unwrap() {
            Predicate::In { rhs: Operand::List(l), .. } => assert_eq!(l.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_subquery_comparison() {
        let q = p(
            "SELECT name FROM student WHERE age > (SELECT AVG(age) FROM student)",
        );
        assert!(q.query.has_subquery());
    }

    #[test]
    fn not_like_and_between() {
        let q = p("SELECT name FROM student WHERE name NOT LIKE 'A%' AND age BETWEEN 18 AND 25");
        let f = q.query.primary().filter.as_ref().unwrap();
        assert_eq!(f.leaf_count(), 2);
        let mut kinds = Vec::new();
        f.for_each_leaf(&mut |l| {
            kinds.push(match l {
                Predicate::Like { negated, .. } => format!("like:{negated}"),
                Predicate::Between { .. } => "between".into(),
                _ => "other".into(),
            })
        });
        assert!(kinds.contains(&"like:true".to_string()));
        assert!(kinds.contains(&"between".to_string()));
    }

    #[test]
    fn set_ops_and_union_all() {
        let q = p("SELECT name FROM student UNION ALL SELECT dept_name FROM department");
        assert_eq!(q.query.set_op(), Some(SetOp::Union));
        let q = p("SELECT name FROM student EXCEPT SELECT name FROM student WHERE age > 30");
        assert_eq!(q.query.set_op(), Some(SetOp::Except));
    }

    #[test]
    fn star_expansion() {
        let q = p("SELECT * FROM department");
        assert_eq!(q.query.primary().select.len(), 2);
        assert_eq!(q.query.primary().select[0].col.to_token(), "department.dept_id");
    }

    #[test]
    fn select_distinct_becomes_group() {
        let q = p("SELECT DISTINCT major FROM student");
        let g = q.query.primary().group.as_ref().unwrap();
        assert_eq!(g.group_by[0].column, "major");
    }

    #[test]
    fn count_distinct_column() {
        let q = p("SELECT COUNT(DISTINCT major) FROM student");
        let a = &q.query.primary().select[0];
        assert!(a.distinct);
        assert_eq!(a.agg, AggFunc::Count);
    }

    #[test]
    fn parenthesized_or_precedence() {
        let q = p("SELECT name FROM student WHERE (age > 20 OR age < 10) AND major = 'cs'");
        let f = q.query.primary().filter.as_ref().unwrap();
        assert!(matches!(f, Predicate::And(..)));
        assert_eq!(f.leaf_count(), 3);
    }

    #[test]
    fn errors() {
        let e = parse_sql(&db(), "SELECT name FROM ghost").unwrap_err();
        assert!(matches!(e, SqlError::Resolve(_)), "{e}");
        let e = parse_sql(&db(), "SELECT ghost_col FROM student").unwrap_err();
        assert!(matches!(e, SqlError::Resolve(_)));
        let e = parse_sql(&db(), "SELECT FROM student").unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }));
        let e = parse_sql(&db(), "SELECT name FROM student WHERE").unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }));
        assert!(e.to_string().contains("error"));
        let e = parse_sql(&db(), "SELECT name FROM student extra garbage").unwrap_err();
        assert!(matches!(e, SqlError::Resolve(_) | SqlError::Parse { .. }));
    }

    #[test]
    fn trailing_semicolon_ok() {
        let q = p("SELECT name FROM student;");
        assert_eq!(q.query.primary().select.len(), 1);
    }

    #[test]
    fn quoted_identifiers_and_strings() {
        let q = p(r#"SELECT "name" FROM student WHERE name = 'O''Neil'"#);
        match q.query.primary().filter.as_ref().unwrap() {
            Predicate::Cmp { rhs: Operand::Lit(Literal::Text(s)), .. } => {
                assert_eq!(s, "O'Neil")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        // 64 parens is fine; 1000 must come back as a parse error — a stack
        // overflow here would abort the whole process, past any catch_unwind.
        let ok = format!(
            "SELECT name FROM student WHERE {}age > 1{}",
            "(".repeat(MAX_DEPTH - 1),
            ")".repeat(MAX_DEPTH - 1)
        );
        assert!(parse_sql(&db(), &ok).is_ok());
        let deep = format!(
            "SELECT name FROM student WHERE {}age > 1{}",
            "(".repeat(1000),
            ")".repeat(1000)
        );
        let e = parse_sql(&db(), &deep).unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }), "{e}");
        assert!(e.to_string().contains("nesting"), "{e}");
    }

    #[test]
    fn deep_subquery_nesting_errors_instead_of_overflowing() {
        let mut sql = "SELECT name FROM student WHERE age > ".to_string();
        for _ in 0..500 {
            sql.push_str("(SELECT MAX(age) FROM student WHERE age > ");
        }
        sql.push('1');
        sql.push_str(&")".repeat(500));
        let e = parse_sql(&db(), &sql).unwrap_err();
        assert!(matches!(e, SqlError::Parse { .. }), "{e}");
        assert!(e.to_string().contains("nesting"), "{e}");
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        for sql in [
            "",
            "SELECT",
            "SELECT name",
            "SELECT name FROM",
            "SELECT name FROM student WHERE age >",
            "SELECT name FROM student WHERE age BETWEEN 1",
            "SELECT name FROM student WHERE major IN (",
            "SELECT name FROM student WHERE name LIKE",
            "SELECT COUNT( FROM student",
            "SELECT name FROM student ORDER",
            "SELECT name FROM student LIMIT",
            "SELECT name FROM student UNION",
            "SELECT name FROM student WHERE name = 'unterminated",
        ] {
            assert!(parse_sql(&db(), sql).is_err(), "{sql:?} should not parse");
        }
    }

    #[test]
    fn round_trips_through_vql() {
        // SQL → AST → VQL tokens → AST must be stable.
        for sql in [
            "SELECT major, COUNT(*) FROM student GROUP BY major",
            "SELECT T1.name FROM student AS T1 JOIN department AS T2 ON T1.major = T2.dept_name WHERE T1.age >= 21",
            "SELECT name FROM student ORDER BY age DESC LIMIT 3",
            "SELECT name FROM student WHERE major IN (SELECT dept_name FROM department) UNION SELECT dept_name FROM department",
        ] {
            let ast = p(sql);
            let back = nv_ast::parse_vql(&ast.to_tokens()).unwrap();
            assert_eq!(back, ast, "{sql}");
        }
    }
}
