//! Render a unified AST back to a SQL string.
//!
//! Used by the synthetic Spider generator (`nv-spider`) to emit the SQL half
//! of each (NL, SQL) pair, and in tests to establish the round-trip property
//! `parse_sql(to_sql(q)) == q` for SQL trees.

use nv_ast::*;

/// Render a query (the `Visualize` node, if present, is ignored — SQL has no
/// chart clause).
pub fn to_sql(q: &VisQuery) -> String {
    set_query_sql(&q.query)
}

fn set_query_sql(q: &SetQuery) -> String {
    match q {
        SetQuery::Simple(b) => body_sql(b),
        SetQuery::Compound { op, left, right } => format!(
            "{} {} {}",
            body_sql(left),
            op.keyword().to_uppercase(),
            body_sql(right)
        ),
    }
}

fn body_sql(b: &QueryBody) -> String {
    let mut s = String::from("SELECT ");
    s.push_str(
        &b.select
            .iter()
            .map(attr_sql)
            .collect::<Vec<_>>()
            .join(", "),
    );
    s.push_str(" FROM ");
    s.push_str(b.from.first().map(String::as_str).unwrap_or(""));
    for j in &b.joins {
        s.push_str(&format!(
            " JOIN {} ON {} = {}",
            j.right.table,
            colref_sql(&j.left),
            colref_sql(&j.right)
        ));
    }

    // Split the merged filter back into WHERE and HAVING for valid SQL.
    let (where_p, having_p) = match &b.filter {
        Some(p) => split_filter(p),
        None => (None, None),
    };
    if let Some(p) = where_p {
        s.push_str(" WHERE ");
        s.push_str(&pred_sql(&p, false));
    }
    if let Some(g) = &b.group {
        if !g.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            s.push_str(
                &g.group_by
                    .iter()
                    .map(colref_sql)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        // A bin has no SQL spelling; the SQL projection of a binned VIS tree
        // groups by the raw column instead.
        if let (Some(bin), true) = (&g.bin, g.group_by.is_empty()) {
            s.push_str(" GROUP BY ");
            s.push_str(&colref_sql(&bin.col));
        }
    }
    if let Some(p) = having_p {
        s.push_str(" HAVING ");
        s.push_str(&pred_sql(&p, false));
    }
    if let Some(o) = &b.order {
        s.push_str(&format!(
            " ORDER BY {} {}",
            attr_sql(&o.attr),
            o.dir.keyword().to_uppercase()
        ));
    }
    if let Some(sup) = &b.superlative {
        let dir = match sup.dir {
            SuperDir::Most => "DESC",
            SuperDir::Least => "ASC",
        };
        s.push_str(&format!(" ORDER BY {} {} LIMIT {}", attr_sql(&sup.attr), dir, sup.k));
    }
    s
}

fn split_filter(p: &Predicate) -> (Option<Predicate>, Option<Predicate>) {
    fn has_agg(p: &Predicate) -> bool {
        let mut found = false;
        p.for_each_leaf(&mut |leaf| {
            let attr = match leaf {
                Predicate::Cmp { attr, .. }
                | Predicate::Between { attr, .. }
                | Predicate::Like { attr, .. }
                | Predicate::In { attr, .. } => attr,
                _ => return,
            };
            if attr.is_aggregated() {
                found = true;
            }
        });
        found
    }
    match p {
        Predicate::And(l, r) => {
            let (lw, lh) = split_filter(l);
            let (rw, rh) = split_filter(r);
            (Predicate::and_opt(lw, rw), Predicate::and_opt(lh, rh))
        }
        other => {
            if has_agg(other) {
                (None, Some(other.clone()))
            } else {
                (Some(other.clone()), None)
            }
        }
    }
}

fn attr_sql(a: &Attr) -> String {
    if a.agg == AggFunc::None {
        colref_sql(&a.col)
    } else {
        let inner = if a.col.is_star() {
            "*".to_string()
        } else {
            colref_sql(&a.col)
        };
        let inner = if a.distinct { format!("DISTINCT {inner}") } else { inner };
        format!("{}({inner})", a.agg.keyword().to_uppercase())
    }
}

fn colref_sql(c: &ColumnRef) -> String {
    if c.is_star() {
        format!("{}.*", c.table)
    } else {
        format!("{}.{}", c.table, c.column)
    }
}

fn lit_sql(l: &Literal) -> String {
    match l {
        Literal::Null => "NULL".into(),
        Literal::Bool(b) => b.to_string().to_uppercase(),
        Literal::Int(i) => i.to_string(),
        Literal::Float(f) => format!("{f}"),
        Literal::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

fn operand_sql(o: &Operand) -> String {
    match o {
        Operand::Lit(l) => lit_sql(l),
        Operand::List(ls) => format!(
            "({})",
            ls.iter().map(lit_sql).collect::<Vec<_>>().join(", ")
        ),
        Operand::Subquery(q) => format!("({})", set_query_sql(q)),
    }
}

fn pred_sql(p: &Predicate, parenthesize: bool) -> String {
    let s = match p {
        Predicate::And(l, r) => {
            format!("{} AND {}", pred_sql(l, true), pred_sql(r, true))
        }
        Predicate::Or(l, r) => format!("{} OR {}", pred_sql(l, true), pred_sql(r, true)),
        Predicate::Cmp { op, attr, rhs } => {
            format!("{} {} {}", attr_sql(attr), op.symbol(), operand_sql(rhs))
        }
        Predicate::Between { attr, low, high } => format!(
            "{} BETWEEN {} AND {}",
            attr_sql(attr),
            operand_sql(low),
            operand_sql(high)
        ),
        Predicate::Like { attr, pattern, negated } => format!(
            "{} {}LIKE '{}'",
            attr_sql(attr),
            if *negated { "NOT " } else { "" },
            pattern.replace('\'', "''")
        ),
        Predicate::In { attr, rhs, negated } => format!(
            "{} {}IN {}",
            attr_sql(attr),
            if *negated { "NOT " } else { "" },
            operand_sql(rhs)
        ),
    };
    if parenthesize && matches!(p, Predicate::And(..) | Predicate::Or(..)) {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use nv_data::{table_from, ColumnType, Database, Value};

    fn db() -> Database {
        let mut db = Database::new("shop", "Shop");
        db.add_table(table_from(
            "orders",
            &[
                ("id", ColumnType::Quantitative),
                ("item", ColumnType::Categorical),
                ("price", ColumnType::Quantitative),
                ("placed", ColumnType::Temporal),
                ("cust_id", ColumnType::Quantitative),
            ],
            vec![vec![
                Value::Int(1),
                Value::text("pen"),
                Value::Int(2),
                Value::text("2020-02-02"),
                Value::Int(7),
            ]],
        ));
        db.add_table(table_from(
            "customer",
            &[
                ("cid", ColumnType::Quantitative),
                ("city", ColumnType::Categorical),
            ],
            vec![vec![Value::Int(7), Value::text("Doha")]],
        ));
        db
    }

    #[test]
    fn render_group_count() {
        let d = db();
        let q = parse_sql(&d, "SELECT item, COUNT(*) FROM orders GROUP BY item").unwrap();
        assert_eq!(
            to_sql(&q),
            "SELECT orders.item, COUNT(*) FROM orders GROUP BY orders.item"
        );
    }

    #[test]
    fn sql_round_trip_property() {
        let d = db();
        for sql in [
            "SELECT item, COUNT(*) FROM orders GROUP BY item",
            "SELECT orders.item FROM orders JOIN customer ON orders.cust_id = customer.cid WHERE customer.city = 'Doha'",
            "SELECT item FROM orders WHERE price BETWEEN 1 AND 10 ORDER BY price DESC LIMIT 2",
            "SELECT item FROM orders WHERE item NOT IN ('pen', 'ink') OR price > 5",
            "SELECT item FROM orders INTERSECT SELECT item FROM orders WHERE price < 3",
            "SELECT item, AVG(price) FROM orders GROUP BY item HAVING COUNT(*) > 1",
        ] {
            let ast = parse_sql(&d, sql).unwrap();
            let rendered = to_sql(&ast);
            let back = parse_sql(&d, &rendered)
                .unwrap_or_else(|e| panic!("re-parse of `{rendered}` failed: {e}"));
            assert_eq!(back, ast, "{sql} → {rendered}");
        }
    }

    #[test]
    fn having_split_back_out() {
        let d = db();
        let ast = parse_sql(
            &d,
            "SELECT item, COUNT(*) FROM orders WHERE price > 1 GROUP BY item HAVING COUNT(*) > 2",
        )
        .unwrap();
        let s = to_sql(&ast);
        assert!(s.contains("WHERE orders.price > 1"), "{s}");
        assert!(s.contains("HAVING COUNT(*) > 2"), "{s}");
        let i_where = s.find("WHERE").unwrap();
        let i_group = s.find("GROUP BY").unwrap();
        let i_having = s.find("HAVING").unwrap();
        assert!(i_where < i_group && i_group < i_having);
    }

    #[test]
    fn superlative_renders_order_limit() {
        let d = db();
        let ast = parse_sql(&d, "SELECT item FROM orders ORDER BY price ASC LIMIT 1").unwrap();
        let s = to_sql(&ast);
        assert!(s.ends_with("ORDER BY orders.price ASC LIMIT 1"), "{s}");
    }

    #[test]
    fn literals_escape() {
        assert_eq!(lit_sql(&Literal::Text("O'Hare".into())), "'O''Hare'");
        assert_eq!(lit_sql(&Literal::Null), "NULL");
        assert_eq!(lit_sql(&Literal::Bool(true)), "TRUE");
        assert_eq!(lit_sql(&Literal::Float(1.5)), "1.5");
    }
}
