//! Tree-edit records Δ = (Δ⁻, Δ⁺).
//!
//! §2.3 of the paper derives every VIS tree *tᵢ* from the SQL tree *t_Q* via
//! a sequence of deletions followed by insertions. The NL-synthesis step
//! (§2.5) then replays the record: insertions are verbalized with phrase
//! rules; deletions are flagged for (simulated) manual revision. The record
//! also drives the man-hour cost model (§3.1/§3.3).

use crate::query::*;
use serde::{Deserialize, Serialize};

/// One atomic edit applied to the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EditOp {
    /// Δ⁻ — a projection attribute removed from `Select`.
    DeleteAttr(Attr),
    /// Δ⁻ — the `Order` subtree removed.
    DeleteOrder(OrderSpec),
    /// Δ⁺ — a `grouping A` key added.
    InsertGrouping(ColumnRef),
    /// Δ⁺ — a `binning A` added.
    InsertBinning(BinSpec),
    /// Δ⁺ — an aggregate wrapped around a select attribute
    /// (`t.q` → `sum(t.q)`).
    InsertAgg { attr: ColumnRef, agg: AggFunc },
    /// Δ⁺ — the `Visualize` subtree added.
    InsertVisualize(ChartType),
    /// Δ⁺ — an `Order` subtree added (sorting a chart axis).
    InsertOrder(OrderSpec),
}

impl EditOp {
    pub fn is_deletion(&self) -> bool {
        matches!(self, EditOp::DeleteAttr(_) | EditOp::DeleteOrder(_))
    }
}

/// The full edit record from one SQL tree to one VIS tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TreeEdit {
    pub ops: Vec<EditOp>,
}

impl TreeEdit {
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Δ⁻ — the deletions.
    pub fn deletions(&self) -> impl Iterator<Item = &EditOp> {
        self.ops.iter().filter(|o| o.is_deletion())
    }

    /// Δ⁺ — the insertions.
    pub fn insertions(&self) -> impl Iterator<Item = &EditOp> {
        self.ops.iter().filter(|o| !o.is_deletion())
    }

    /// Whether the VIS tree required any deletion — such trees need manual
    /// NL revision per §2.5 ("for these deletions, we manually revised the
    /// nl queries").
    pub fn needs_manual_nl_revision(&self) -> bool {
        self.ops.iter().any(EditOp::is_deletion)
    }

    pub fn deletion_count(&self) -> usize {
        self.deletions().count()
    }

    pub fn insertion_count(&self) -> usize {
        self.insertions().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_deletions_and_insertions() {
        let mut e = TreeEdit::default();
        e.push(EditOp::DeleteAttr(Attr::col("t", "x")));
        e.push(EditOp::InsertVisualize(ChartType::Bar));
        e.push(EditOp::InsertGrouping(ColumnRef::new("t", "a")));
        e.push(EditOp::DeleteOrder(OrderSpec {
            attr: Attr::col("t", "x"),
            dir: OrderDir::Asc,
        }));
        assert_eq!(e.deletion_count(), 2);
        assert_eq!(e.insertion_count(), 2);
        assert!(e.needs_manual_nl_revision());
    }

    #[test]
    fn insert_only_edit_needs_no_manual_revision() {
        let mut e = TreeEdit::default();
        e.push(EditOp::InsertVisualize(ChartType::Pie));
        e.push(EditOp::InsertAgg { attr: ColumnRef::new("t", "q"), agg: AggFunc::Sum });
        assert!(!e.needs_manual_nl_revision());
        assert_eq!(e.deletion_count(), 0);
    }
}
