//! Hardness classification of VIS trees (paper §3.2).
//!
//! The paper defines hardness over three ingredient sets:
//!
//! * **S1** — which clause subtrees are present:
//!   `{Select, Order, Group, Filter, Superlative}`;
//! * **S2** — three smallness conditions: #A-subtrees ≤ 2,
//!   #Filter-subtrees ≤ 2, #Group-subtrees ≤ 2;
//! * **S3** — set-operation keywords `{intersect, union, except}`;
//!
//! and five rules R1–R5 combining them. The rules as printed are not a
//! total, mutually-exclusive function (e.g. a two-clause query with all-small
//! counts matches none of R1–R5 literally), so this module provides two
//! classifiers:
//!
//! * [`hardness_paper_rules`] — the literal reading of R1–R5, checked in the
//!   order Easy → Medium(R1|R2) → Hard(R3|R4|R5) → Extra Hard, documented for
//!   fidelity;
//! * [`Hardness::of`] (the default used throughout the experiments) — a
//!   Spider-style component score that yields the qualitative distribution
//!   the paper reports (Figure 10: Medium most common at ~39%, Easy next,
//!   Extra Hard rarest), while agreeing with the literal rules on the clear
//!   cases (single-clause ⇒ Easy, set-ops/nesting ⇒ (Extra) Hard).

use crate::query::{SetQuery, VisQuery};
use serde::{Deserialize, Serialize};

/// The four difficulty levels of nvBench tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Hardness {
    Easy,
    Medium,
    Hard,
    ExtraHard,
}

impl Hardness {
    pub const ALL: [Hardness; 4] =
        [Hardness::Easy, Hardness::Medium, Hardness::Hard, Hardness::ExtraHard];

    pub fn name(self) -> &'static str {
        match self {
            Hardness::Easy => "Easy",
            Hardness::Medium => "Medium",
            Hardness::Hard => "Hard",
            Hardness::ExtraHard => "Extra Hard",
        }
    }

    /// Classify a tree with the default (component-score) classifier.
    pub fn of(q: &VisQuery) -> Hardness {
        score_hardness(q)
    }
}

impl std::fmt::Display for Hardness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural facts about a tree that both classifiers consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeFacts {
    /// Number of distinct S1 clause kinds present (Select counts when
    /// non-empty, so ≥ 1 for any well-formed tree).
    pub s1_count: usize,
    /// #A-subtrees in the primary select.
    pub n_attrs: usize,
    /// #Filter leaf conditions (across bodies).
    pub n_filters: usize,
    /// #Group keys (group-by columns + bin).
    pub n_groups: usize,
    /// Whether an intersect/union/except keyword is present.
    pub has_set_op: bool,
    /// Whether any filter nests a subquery.
    pub has_subquery: bool,
    /// Whether the query joins two or more tables.
    pub has_join: bool,
}

impl TreeFacts {
    pub fn collect(q: &VisQuery) -> TreeFacts {
        let primary = q.query.primary();
        let n_attrs = primary.select.len();
        let n_filters: usize = q
            .query
            .bodies()
            .iter()
            .map(|b| b.filter.as_ref().map_or(0, |p| p.leaf_count()))
            .sum();
        let n_groups = primary.group.as_ref().map_or(0, |g| g.key_count());
        let mut s1 = 0usize;
        if !primary.select.is_empty() {
            s1 += 1;
        }
        if primary.order.is_some() {
            s1 += 1;
        }
        if n_groups > 0 {
            s1 += 1;
        }
        if n_filters > 0 {
            s1 += 1;
        }
        if primary.superlative.is_some() {
            s1 += 1;
        }
        TreeFacts {
            s1_count: s1,
            n_attrs,
            n_filters,
            n_groups,
            has_set_op: matches!(q.query, SetQuery::Compound { .. }),
            has_subquery: q.query.has_subquery(),
            has_join: q.query.bodies().iter().any(|b| b.has_join()),
        }
    }

    /// How many of the three S2 smallness conditions hold.
    pub fn s2_true(&self) -> usize {
        usize::from(self.n_attrs <= 2)
            + usize::from(self.n_filters <= 2)
            + usize::from(self.n_groups <= 2)
    }
}

/// The literal reading of the paper's R1–R5 rules.
///
/// Checked in order: Easy, Medium (R1 or R2), Hard (R3, R4 or R5), otherwise
/// Extra Hard. See the module docs for why this is kept alongside the
/// default classifier.
pub fn hardness_paper_rules(q: &VisQuery) -> Hardness {
    let f = TreeFacts::collect(q);
    let s2 = f.s2_true();
    // Easy: no more than one S1 subtree and at most two A-subtrees.
    if f.s1_count <= 1 && f.n_attrs <= 2 && !f.has_set_op {
        return Hardness::Easy;
    }
    // R1: satisfies no more than two S2 conditions.
    // R2: exactly two S1 subtrees and at most one S2 condition.
    if (s2 <= 2 || (f.s1_count == 2 && s2 <= 1)) && !f.has_set_op {
        return Hardness::Medium;
    }
    // R3: all three S2 conditions, fewer than three S1 subtrees, no set op.
    // R4: three S1 subtrees, fewer than three S2 conditions, no set op.
    // R5: at most one S1 subtree, no S2 condition, exactly one set op.
    let r3 = s2 >= 3 && f.s1_count < 3 && !f.has_set_op;
    let r4 = f.s1_count == 3 && s2 < 3 && !f.has_set_op;
    let r5 = f.s1_count <= 1 && s2 == 0 && f.has_set_op;
    if r3 || r4 || r5 {
        return Hardness::Hard;
    }
    Hardness::ExtraHard
}

/// Default classifier: Spider-style additive component score.
///
/// Scores each complexity-bearing construct and thresholds the sum. The
/// thresholds were chosen so that the synthesized corpus reproduces the
/// Figure-10 distribution (Medium plurality, Extra-Hard tail).
pub(crate) fn score_hardness(q: &VisQuery) -> Hardness {
    let f = TreeFacts::collect(q);
    let mut score = 0usize;
    score += f.n_attrs.saturating_sub(1);
    if f.n_filters > 0 {
        score += 1;
    }
    score += f.n_filters.saturating_sub(1);
    if f.n_groups > 0 {
        score += 1;
    }
    score += f.n_groups.saturating_sub(1);
    if q.query.primary().order.is_some() {
        score += 1;
    }
    if q.query.primary().superlative.is_some() {
        score += 1;
    }
    if f.has_join {
        score += 2;
    }
    if f.has_set_op {
        score += 4;
    }
    if f.has_subquery {
        score += 4;
    }
    match score {
        0..=1 => Hardness::Easy,
        2..=3 => Hardness::Medium,
        4..=6 => Hardness::Hard,
        _ => Hardness::ExtraHard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::*;
    use crate::tokens::parse_vql_str;

    fn h(vql: &str) -> Hardness {
        Hardness::of(&parse_vql_str(vql).unwrap())
    }

    #[test]
    fn single_select_is_easy() {
        assert_eq!(h("visualize pie select t.a , count ( t.* ) from t"), Hardness::Easy);
        assert_eq!(h("select t.a from t"), Hardness::Easy);
    }

    #[test]
    fn group_plus_order_is_medium() {
        assert_eq!(
            h("visualize bar select t.a , count ( t.* ) from t \
               group by t.a order by count ( t.* ) desc"),
            Hardness::Medium
        );
    }

    #[test]
    fn join_filter_group_is_hard() {
        assert_eq!(
            h("visualize bar select t.a , count ( t.* ) from t \
               join u on t.uid = u.id where u.age > 30 group by t.a"),
            Hardness::Hard
        );
    }

    #[test]
    fn set_op_with_extras_is_extra_hard() {
        assert_eq!(
            h("select t.a , count ( t.* ) from t where t.x > 3 group by t.a \
               union select t.a , count ( t.* ) from t where t.y < 2 group by t.a"),
            Hardness::ExtraHard
        );
    }

    #[test]
    fn subquery_is_at_least_hard() {
        let hd = h("select t.a from t where t.id in ( select u.id from u )");
        assert!(hd >= Hardness::Hard, "got {hd}");
    }

    #[test]
    fn monotone_in_added_clauses() {
        let base = h("select t.a from t");
        let plus = h("select t.a , t.b from t where t.x > 1 group by t.a \
                      order by t.a asc");
        assert!(plus >= base);
    }

    #[test]
    fn facts_collection() {
        let q = parse_vql_str(
            "visualize bar select t.a , count ( t.* ) from t join u on t.uid = u.id \
             where ( t.x > 1 and t.y < 2 ) group by t.a bin t.d by year \
             order by count ( t.* ) desc",
        )
        .unwrap();
        let f = TreeFacts::collect(&q);
        assert_eq!(f.n_attrs, 2);
        assert_eq!(f.n_filters, 2);
        assert_eq!(f.n_groups, 2);
        assert_eq!(f.s1_count, 4); // select, filter, group, order
        assert!(f.has_join);
        assert!(!f.has_set_op);
        assert!(!f.has_subquery);
        assert_eq!(f.s2_true(), 3);
    }

    #[test]
    fn paper_rules_cover_all_levels() {
        assert_eq!(
            hardness_paper_rules(&parse_vql_str("select t.a from t").unwrap()),
            Hardness::Easy
        );
        // Two S1 subtrees (select + filter) with all-small counts: R1 fails
        // (s2 == 3 > 2) and R2 fails (s2 > 1), but R3 fires (s2 == 3, s1 < 3,
        // no set op) → Hard under the literal rules.
        let q = parse_vql_str("select t.a from t where t.x > 1").unwrap();
        assert_eq!(hardness_paper_rules(&q), Hardness::Hard);
        // Three S1 subtrees with all-small counts match *none* of R1–R5 — the
        // documented anomaly in the printed rules — and fall to Extra Hard.
        let q = parse_vql_str("select t.a from t where t.x > 1 group by t.a").unwrap();
        assert_eq!(hardness_paper_rules(&q), Hardness::ExtraHard);
    }

    #[test]
    fn paper_rules_set_op() {
        let q = parse_vql_str(
            "select t.a from t union select t.b from t",
        )
        .unwrap();
        // s1 == 1 (select only), s2 == 3 → R5 needs s2 == 0 → Extra Hard.
        assert_eq!(hardness_paper_rules(&q), Hardness::ExtraHard);
    }

    #[test]
    fn distribution_sanity_easy_lt_extrahard_complexity() {
        // A tiny ladder: each step should never decrease hardness.
        let ladder = [
            "select t.a from t",
            "visualize bar select t.a , count ( t.* ) from t group by t.a",
            "visualize bar select t.a , count ( t.* ) from t where t.x > 1 \
             group by t.a order by count ( t.* ) desc",
            "visualize bar select t.a , count ( t.* ) from t join u on t.uid = u.id \
             where t.x > 1 group by t.a order by count ( t.* ) desc",
            "select t.a , count ( t.* ) from t join u on t.uid = u.id \
             where t.x > 1 group by t.a \
             except select t.a , count ( t.* ) from t group by t.a",
        ];
        let mut prev = Hardness::Easy;
        for vql in ladder {
            let cur = h(vql);
            assert!(cur >= prev, "{vql} went from {prev} to {cur}");
            prev = cur;
        }
        assert_eq!(prev, Hardness::ExtraHard);
    }
}
