//! Canonical VQL linearization of the unified AST, and its inverse parser.
//!
//! The linear form is what the `seq2vis` neural translator consumes and
//! produces (paper Figure 15 shows the output sequence
//! `[Visualize, pie, Select, …]`). The encoding here is designed so that
//!
//! * every AST serializes to a unique token sequence ([`VisQuery::to_tokens`]),
//! * the sequence parses back to an identical AST ([`parse_vql`]) — the
//!   round-trip property is enforced by unit + property tests, and
//! * multi-word concepts are single tokens (`stacked_bar`, `flight.price`,
//!   `'New York'`), keeping the output vocabulary small and unambiguous.
//!
//! Grammar of the linear form (lowercase words are literal keywords):
//!
//! ```text
//! vql    := [ "visualize" chart ] body [ setop body ]
//! body   := "select" attr ( "," attr )*
//!           "from" table ( "join" table "on" col "=" col )*
//!           [ "where" pred ]
//!           [ "group" "by" col ( "," col )* ]
//!           [ "bin" col "by" unit ]
//!           [ "order" "by" attr dir ]
//!           [ ( "top" | "bottom" ) k "by" attr ]
//! attr   := col | agg "(" [ "distinct" ] col ")"
//! pred   := cond | "(" pred ( "and" | "or" ) pred ")"
//! cond   := attr cmp operand
//!         | attr "between" literal "and" literal
//!         | attr [ "not" ] "like" literal
//!         | attr [ "not" ] "in" operand
//! operand:= literal | "(" literal ( "," literal )* ")" | "(" vql ")"
//! ```

use crate::query::*;

impl VisQuery {
    /// Linearize to the canonical VQL token sequence.
    pub fn to_tokens(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(24);
        if let Some(chart) = self.chart {
            out.push("visualize".into());
            out.push(chart.keyword().into());
        }
        push_set_query(&self.query, &mut out);
        out
    }

    /// The token sequence joined with single spaces — a stable textual key.
    pub fn to_vql(&self) -> String {
        self.to_tokens().join(" ")
    }
}

fn push_set_query(q: &SetQuery, out: &mut Vec<String>) {
    match q {
        SetQuery::Simple(b) => push_body(b, out),
        SetQuery::Compound { op, left, right } => {
            push_body(left, out);
            out.push(op.keyword().into());
            push_body(right, out);
        }
    }
}

fn push_body(b: &QueryBody, out: &mut Vec<String>) {
    out.push("select".into());
    for (i, a) in b.select.iter().enumerate() {
        if i > 0 {
            out.push(",".into());
        }
        push_attr(a, out);
    }
    out.push("from".into());
    out.push(b.from.first().cloned().unwrap_or_default());
    for j in &b.joins {
        // The joined table is the side not yet introduced; serialize the
        // right table of the condition (the SQL lowering orients joins so
        // that `right` references the newly joined table).
        out.push("join".into());
        out.push(j.right.table.clone());
        out.push("on".into());
        out.push(j.left.to_token());
        out.push("=".into());
        out.push(j.right.to_token());
    }
    if let Some(p) = &b.filter {
        out.push("where".into());
        push_pred(p, out);
    }
    if let Some(g) = &b.group {
        if !g.group_by.is_empty() {
            out.push("group".into());
            out.push("by".into());
            for (i, c) in g.group_by.iter().enumerate() {
                if i > 0 {
                    out.push(",".into());
                }
                out.push(c.to_token());
            }
        }
        if let Some(bin) = &g.bin {
            out.push("bin".into());
            out.push(bin.col.to_token());
            out.push("by".into());
            out.push(bin.unit.keyword());
        }
    }
    if let Some(o) = &b.order {
        out.push("order".into());
        out.push("by".into());
        push_attr(&o.attr, out);
        out.push(o.dir.keyword().into());
    }
    if let Some(s) = &b.superlative {
        out.push(match s.dir {
            SuperDir::Most => "top".into(),
            SuperDir::Least => "bottom".into(),
        });
        out.push(s.k.to_string());
        out.push("by".into());
        push_attr(&s.attr, out);
    }
}

fn push_attr(a: &Attr, out: &mut Vec<String>) {
    if a.agg == AggFunc::None {
        out.push(a.col.to_token());
    } else {
        out.push(a.agg.keyword().into());
        out.push("(".into());
        if a.distinct {
            out.push("distinct".into());
        }
        out.push(a.col.to_token());
        out.push(")".into());
    }
}

fn push_pred(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::And(l, r) | Predicate::Or(l, r) => {
            out.push("(".into());
            push_pred(l, out);
            out.push(if matches!(p, Predicate::And(..)) { "and" } else { "or" }.into());
            push_pred(r, out);
            out.push(")".into());
        }
        Predicate::Cmp { op, attr, rhs } => {
            push_attr(attr, out);
            out.push(op.symbol().into());
            push_operand(rhs, out);
        }
        Predicate::Between { attr, low, high } => {
            push_attr(attr, out);
            out.push("between".into());
            push_operand(low, out);
            out.push("and".into());
            push_operand(high, out);
        }
        Predicate::Like { attr, pattern, negated } => {
            push_attr(attr, out);
            if *negated {
                out.push("not".into());
            }
            out.push("like".into());
            out.push(Literal::Text(pattern.clone()).to_token());
        }
        Predicate::In { attr, rhs, negated } => {
            push_attr(attr, out);
            if *negated {
                out.push("not".into());
            }
            out.push("in".into());
            push_operand(rhs, out);
        }
    }
}

fn push_operand(o: &Operand, out: &mut Vec<String>) {
    match o {
        Operand::Lit(l) => out.push(l.to_token()),
        Operand::List(ls) => {
            out.push("(".into());
            for (i, l) in ls.iter().enumerate() {
                if i > 0 {
                    out.push(",".into());
                }
                out.push(l.to_token());
            }
            out.push(")".into());
        }
        Operand::Subquery(q) => {
            out.push("(".into());
            push_set_query(q, out);
            out.push(")".into());
        }
    }
}

/// Split a VQL string into tokens, keeping single-quoted text (which may
/// contain spaces) as one token.
pub fn tokenize_vql(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\'' {
            // Quoted literal: consume through the closing quote, honoring
            // doubled-quote escapes.
            cur.push('\'');
            while let Some(&n) = chars.peek() {
                chars.next();
                cur.push(n);
                if n == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next();
                        cur.push('\'');
                    } else {
                        break;
                    }
                }
            }
        } else if c.is_whitespace() {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Error produced when a token sequence is not valid VQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token (== token count if input ended early).
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VQL parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a VQL token sequence back into a [`VisQuery`].
///
/// Accepts anything [`VisQuery::to_tokens`] produces; used both to decode
/// neural-model output and to round-trip stored benchmarks.
pub fn parse_vql<S: AsRef<str>>(tokens: &[S]) -> Result<VisQuery, ParseError> {
    let toks: Vec<&str> = tokens.iter().map(|s| s.as_ref()).collect();
    let mut p = Parser { toks: &toks, pos: 0 };
    let q = p.parse_root()?;
    if p.pos != p.toks.len() {
        return Err(p.err(format!("trailing tokens starting with '{}'", p.toks[p.pos])));
    }
    Ok(q)
}

/// Parse a VQL string (convenience wrapper over [`tokenize_vql`] +
/// [`parse_vql`]).
pub fn parse_vql_str(s: &str) -> Result<VisQuery, ParseError> {
    parse_vql(&tokenize_vql(s))
}

struct Parser<'a> {
    toks: &'a [&'a str],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<&'a str> {
        self.toks.get(self.pos + off).copied()
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        let t = self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, kw: &str) -> Result<(), ParseError> {
        let t = self.next()?;
        if t == kw {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected '{kw}', found '{t}'")))
        }
    }

    fn eat(&mut self, kw: &str) -> bool {
        if self.peek() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_root(&mut self) -> Result<VisQuery, ParseError> {
        let chart = if self.eat("visualize") {
            let t = self.next()?;
            Some(
                ChartType::from_keyword(t)
                    .ok_or_else(|| self.err(format!("unknown chart type '{t}'")))?,
            )
        } else {
            None
        };
        let query = self.parse_set_query()?;
        Ok(VisQuery { chart, query })
    }

    fn parse_set_query(&mut self) -> Result<SetQuery, ParseError> {
        let left = self.parse_body()?;
        let op = match self.peek() {
            Some("intersect") => Some(SetOp::Intersect),
            Some("union") => Some(SetOp::Union),
            Some("except") => Some(SetOp::Except),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_body()?;
            Ok(SetQuery::Compound { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(SetQuery::Simple(Box::new(left)))
        }
    }

    fn parse_body(&mut self) -> Result<QueryBody, ParseError> {
        self.expect("select")?;
        let mut select = vec![self.parse_attr()?];
        while self.eat(",") {
            select.push(self.parse_attr()?);
        }
        self.expect("from")?;
        let first = self.next()?.to_string();
        let mut from = vec![first];
        let mut joins = Vec::new();
        while self.eat("join") {
            let table = self.next()?.to_string();
            self.expect("on")?;
            let left = self.parse_colref()?;
            self.expect("=")?;
            let right = self.parse_colref()?;
            from.push(table);
            joins.push(JoinCond { left, right });
        }
        let filter = if self.eat("where") { Some(self.parse_pred()?) } else { None };
        let mut group: Option<GroupSpec> = None;
        if self.peek() == Some("group") && self.peek_at(1) == Some("by") {
            self.pos += 2;
            let mut cols = vec![self.parse_colref()?];
            while self.eat(",") {
                cols.push(self.parse_colref()?);
            }
            group = Some(GroupSpec { group_by: cols, bin: None });
        }
        if self.eat("bin") {
            let col = self.parse_colref()?;
            self.expect("by")?;
            let t = self.next()?;
            let unit = BinUnit::from_keyword(t)
                .ok_or_else(|| self.err(format!("unknown bin unit '{t}'")))?;
            group
                .get_or_insert_with(GroupSpec::default)
                .bin = Some(BinSpec { col, unit });
        }
        let order = if self.peek() == Some("order") && self.peek_at(1) == Some("by") {
            self.pos += 2;
            let attr = self.parse_attr()?;
            let dir = match self.next()? {
                "asc" => OrderDir::Asc,
                "desc" => OrderDir::Desc,
                t => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected asc/desc, found '{t}'")));
                }
            };
            Some(OrderSpec { attr, dir })
        } else {
            None
        };
        let superlative = match self.peek() {
            Some(d @ ("top" | "bottom")) => {
                let dir = if d == "top" { SuperDir::Most } else { SuperDir::Least };
                self.pos += 1;
                let kt = self.next()?;
                let k = kt
                    .parse::<u64>()
                    .map_err(|_| self.err(format!("expected LIMIT count, found '{kt}'")))?;
                self.expect("by")?;
                let attr = self.parse_attr()?;
                Some(Superlative { dir, k, attr })
            }
            _ => None,
        };
        Ok(QueryBody { select, from, joins, filter, group, order, superlative })
    }

    fn parse_colref(&mut self) -> Result<ColumnRef, ParseError> {
        let t = self.next()?;
        let (table, column) = t
            .split_once('.')
            .ok_or_else(|| self.err(format!("expected table.column, found '{t}'")))?;
        if table.is_empty() || column.is_empty() {
            return Err(self.err(format!("malformed column reference '{t}'")));
        }
        Ok(ColumnRef::new(table, column))
    }

    fn parse_attr(&mut self) -> Result<Attr, ParseError> {
        if let Some(t) = self.peek() {
            if let Some(agg) = AggFunc::from_keyword(t) {
                if self.peek_at(1) == Some("(") {
                    self.pos += 2;
                    let distinct = self.eat("distinct");
                    let col = self.parse_colref()?;
                    self.expect(")")?;
                    return Ok(Attr { agg, col, distinct });
                }
            }
        }
        let col = self.parse_colref()?;
        Ok(Attr { agg: AggFunc::None, col, distinct: false })
    }

    fn parse_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat("(") {
            let left = self.parse_pred()?;
            let op = self.next()?;
            let is_and = match op {
                "and" => true,
                "or" => false,
                t => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected and/or, found '{t}'")));
                }
            };
            let right = self.parse_pred()?;
            self.expect(")")?;
            Ok(if is_and {
                Predicate::And(Box::new(left), Box::new(right))
            } else {
                Predicate::Or(Box::new(left), Box::new(right))
            })
        } else {
            self.parse_cond()
        }
    }

    fn parse_cond(&mut self) -> Result<Predicate, ParseError> {
        let attr = self.parse_attr()?;
        let negated = self.eat("not");
        let t = self.next()?;
        if let Some(op) = CmpOp::from_symbol(t) {
            if negated {
                self.pos -= 1;
                return Err(self.err("'not' is only valid before like/in"));
            }
            let rhs = self.parse_operand()?;
            return Ok(Predicate::Cmp { op, attr, rhs });
        }
        match t {
            "between" => {
                if negated {
                    self.pos -= 1;
                    return Err(self.err("'not between' is not supported"));
                }
                let low = self.parse_operand()?;
                self.expect("and")?;
                let high = self.parse_operand()?;
                Ok(Predicate::Between { attr, low, high })
            }
            "like" => {
                let lt = self.next()?;
                match parse_literal(lt) {
                    Some(Literal::Text(pattern)) => Ok(Predicate::Like { attr, pattern, negated }),
                    _ => {
                        self.pos -= 1;
                        Err(self.err(format!("expected quoted LIKE pattern, found '{lt}'")))
                    }
                }
            }
            "in" => {
                let rhs = self.parse_operand()?;
                Ok(Predicate::In { attr, rhs, negated })
            }
            _ => {
                self.pos -= 1;
                Err(self.err(format!("expected comparison operator, found '{t}'")))
            }
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        if self.eat("(") {
            if self.peek() == Some("select") {
                let q = self.parse_set_query()?;
                self.expect(")")?;
                return Ok(Operand::Subquery(Box::new(q)));
            }
            let mut lits = Vec::new();
            loop {
                let t = self.next()?;
                let lit = parse_literal(t).ok_or_else(|| {
                    ParseError { at: self.pos - 1, message: format!("expected literal, found '{t}'") }
                })?;
                lits.push(lit);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
            return Ok(Operand::List(lits));
        }
        let t = self.next()?;
        parse_literal(t)
            .map(Operand::Lit)
            .ok_or_else(|| ParseError { at: self.pos - 1, message: format!("expected literal, found '{t}'") })
    }
}

/// Parse one token as a literal value, if it is one.
pub fn parse_literal(t: &str) -> Option<Literal> {
    if t == "null" {
        return Some(Literal::Null);
    }
    if t == "true" {
        return Some(Literal::Bool(true));
    }
    if t == "false" {
        return Some(Literal::Bool(false));
    }
    if let Some(inner) = t.strip_prefix('\'') {
        let inner = inner.strip_suffix('\'')?;
        return Some(Literal::Text(inner.replace("''", "'")));
    }
    if t.contains('.') || t.contains('e') || t.contains('E') {
        if let Ok(f) = t.parse::<f64>() {
            return Some(Literal::Float(f));
        }
    }
    if let Ok(i) = t.parse::<i64>() {
        return Some(Literal::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Some(Literal::Float(f));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight_body() -> QueryBody {
        QueryBody {
            select: vec![
                Attr::col("flight", "destination"),
                Attr::agg(AggFunc::Count, "flight", "*"),
            ],
            from: vec!["flight".into()],
            joins: vec![],
            filter: None,
            group: Some(GroupSpec::by(ColumnRef::new("flight", "destination"))),
            order: None,
            superlative: None,
        }
    }

    #[test]
    fn serialize_simple_vis() {
        let q = VisQuery::vis(ChartType::Pie, SetQuery::simple(flight_body()));
        assert_eq!(
            q.to_vql(),
            "visualize pie select flight.destination , count ( flight.* ) \
             from flight group by flight.destination"
        );
    }

    #[test]
    fn round_trip_simple() {
        let q = VisQuery::vis(ChartType::Pie, SetQuery::simple(flight_body()));
        let back = parse_vql(&q.to_tokens()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn round_trip_full_clauses() {
        let mut b = flight_body();
        b.from.push("airport".into());
        b.joins.push(JoinCond {
            left: ColumnRef::new("flight", "src"),
            right: ColumnRef::new("airport", "id"),
        });
        b.filter = Some(Predicate::And(
            Box::new(Predicate::Cmp {
                op: CmpOp::Gt,
                attr: Attr::col("flight", "price"),
                rhs: Operand::int(500),
            }),
            Box::new(Predicate::Or(
                Box::new(Predicate::Like {
                    attr: Attr::col("airport", "name"),
                    pattern: "Inter%".into(),
                    negated: true,
                }),
                Box::new(Predicate::Between {
                    attr: Attr::col("flight", "distance"),
                    low: Operand::int(100),
                    high: Operand::int(2000),
                }),
            )),
        ));
        b.group = Some(GroupSpec {
            group_by: vec![ColumnRef::new("flight", "destination")],
            bin: Some(BinSpec { col: ColumnRef::new("flight", "departure"), unit: BinUnit::Year }),
        });
        b.order = Some(OrderSpec {
            attr: Attr::agg(AggFunc::Count, "flight", "*"),
            dir: OrderDir::Desc,
        });
        b.superlative = Some(Superlative {
            dir: SuperDir::Most,
            k: 5,
            attr: Attr::agg(AggFunc::Count, "flight", "*"),
        });
        let q = VisQuery::vis(ChartType::Bar, SetQuery::simple(b));
        let toks = q.to_tokens();
        let back = parse_vql(&toks).unwrap();
        assert_eq!(back, q, "vql was: {}", q.to_vql());
    }

    #[test]
    fn round_trip_set_op_and_subquery() {
        let sub = SetQuery::simple(QueryBody::simple(
            "airport",
            vec![Attr::col("airport", "id")],
        ));
        let mut left = flight_body();
        left.filter = Some(Predicate::In {
            attr: Attr::col("flight", "src"),
            rhs: Operand::Subquery(Box::new(sub)),
            negated: false,
        });
        let right = flight_body();
        let q = VisQuery::sql(SetQuery::Compound {
            op: SetOp::Except,
            left: Box::new(left),
            right: Box::new(right),
        });
        let back = parse_vql(&q.to_tokens()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn round_trip_in_list_and_distinct() {
        let mut b = flight_body();
        b.select[1].distinct = true;
        b.select[1].col = ColumnRef::new("flight", "carrier");
        b.filter = Some(Predicate::In {
            attr: Attr::col("flight", "destination"),
            rhs: Operand::List(vec![
                Literal::Text("New York".into()),
                Literal::Text("LA".into()),
            ]),
            negated: true,
        });
        let q = VisQuery::sql(SetQuery::simple(b));
        let back = parse_vql(&q.to_tokens()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn tokenize_respects_quotes() {
        let toks = tokenize_vql("where t.city = 'New  York' and x");
        assert_eq!(toks, vec!["where", "t.city", "=", "'New  York'", "and", "x"]);
        let toks = tokenize_vql("t.name like 'O''Hare'");
        assert_eq!(toks[2], "'O''Hare'");
    }

    #[test]
    fn parse_str_convenience() {
        let q = parse_vql_str(
            "visualize bar select t.a , count ( t.* ) from t \
             where t.city = 'New York' group by t.a",
        )
        .unwrap();
        assert_eq!(q.chart, Some(ChartType::Bar));
        match q.query.primary().filter.as_ref().unwrap() {
            Predicate::Cmp { rhs: Operand::Lit(Literal::Text(s)), .. } => {
                assert_eq!(s, "New York")
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_positioned() {
        let e = parse_vql(&["select"]).unwrap_err();
        assert_eq!(e.at, 1);
        let e = parse_vql(&["visualize", "heatmap"]).unwrap_err();
        assert!(e.message.contains("heatmap"));
        let e = parse_vql(&["select", "t.a", "from", "t", "zzz"]).unwrap_err();
        assert!(e.message.contains("trailing"));
        assert!(parse_vql(&["select", "noDot", "from", "t"]).is_err());
        assert!(e.to_string().contains("token"));
    }

    #[test]
    fn parse_literal_kinds() {
        assert_eq!(parse_literal("42"), Some(Literal::Int(42)));
        assert_eq!(parse_literal("-3"), Some(Literal::Int(-3)));
        assert_eq!(parse_literal("2.5"), Some(Literal::Float(2.5)));
        assert_eq!(parse_literal("1e3"), Some(Literal::Float(1000.0)));
        assert_eq!(parse_literal("'x'"), Some(Literal::Text("x".into())));
        assert_eq!(parse_literal("null"), Some(Literal::Null));
        assert_eq!(parse_literal("false"), Some(Literal::Bool(false)));
        assert_eq!(parse_literal("t.c"), None);
        assert_eq!(parse_literal("'unterminated"), None);
    }

    #[test]
    fn superlative_directions() {
        for (kw, dir) in [("top", SuperDir::Most), ("bottom", SuperDir::Least)] {
            let s = format!("select t.a from t {kw} 3 by t.a");
            let q = parse_vql_str(&s).unwrap();
            let sup = q.query.primary().superlative.clone().unwrap();
            assert_eq!(sup.dir, dir);
            assert_eq!(sup.k, 3);
        }
    }
}
